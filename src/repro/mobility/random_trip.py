"""The generic random trip model over a square region.

In the random trip model of Le Boudec and Vojnović [24] every agent
repeatedly samples a *trip* (a trajectory through the mobility space together
with the speed profile along it), travels that trip to its end, then samples
the next trip, independently of all other agents.  The random waypoint and
the Manhattan waypoint are instances obtained by restricting the family of
feasible trips.

The implementation discretises time (one position per time step — the same
discretisation Section 4.1 of the paper uses to turn these continuous models
into node-MEGs): a concrete model supplies :meth:`TrajectorySampler.sample_leg`,
which returns the sequence of positions occupied on one trip.
"""

from __future__ import annotations

import abc
from typing import Iterator, Optional

import numpy as np

from repro.meg.base import DynamicGraph
from repro.mobility.connection import UnitDiskConnection
from repro.mobility.geometry import SquareRegion
from repro.util.rng import RNGLike, ensure_rng
from repro.util.validation import require_node_count, require_positive


class TrajectorySampler(abc.ABC):
    """Strategy object that samples one trip (leg) of a random trip model."""

    @abc.abstractmethod
    def sample_leg(
        self, position: np.ndarray, region: SquareRegion, rng: np.random.Generator
    ) -> np.ndarray:
        """Return the positions visited on the next trip, one row per time step.

        The returned array must have shape ``(k, 2)`` with ``k >= 1``; the
        first row is the position after the first step of the trip (not the
        current position).
        """


class RandomTrip(DynamicGraph):
    """A geometric random trip mobility model over a square.

    Parameters
    ----------
    num_nodes:
        Number of agents.
    side:
        Side length ``L`` of the square mobility region.
    radius:
        Transmission radius ``r``; two agents are connected when their
        Euclidean distance is at most ``r``.
    sampler:
        The trip sampler defining the model (waypoint legs, Manhattan legs…).
    warmup_steps:
        Number of steps run inside :meth:`reset` before time 0, to bring the
        process close to its stationary regime (the paper analyses stationary
        models).  A value around the mixing time ``L / v`` is appropriate.
    snap_resolution:
        Optional grid resolution ``m``.  When set, agent positions are snapped
        to the nearest point of the ``m x m`` discretisation grid after every
        move — the node-MEG discretisation of Section 4.1.  Footnote 3 of the
        paper states the resolution does not affect the flooding bound as long
        as it is fine enough; the resolution-ablation benchmark verifies this
        by sweeping ``snap_resolution``.
    """

    def __init__(
        self,
        num_nodes: int,
        side: float,
        radius: float,
        sampler: TrajectorySampler,
        warmup_steps: int = 0,
        snap_resolution: Optional[int] = None,
    ) -> None:
        self._num_nodes = require_node_count(num_nodes)
        self._region = SquareRegion(side)
        require_positive(radius, "radius", strict=False)
        if warmup_steps < 0:
            raise ValueError(f"warmup_steps must be >= 0, got {warmup_steps}")
        if snap_resolution is not None and snap_resolution < 1:
            raise ValueError(
                f"snap_resolution must be >= 1 when given, got {snap_resolution}"
            )
        self._connection = UnitDiskConnection(radius)
        self._sampler = sampler
        self._warmup_steps = warmup_steps
        self._snap_resolution = snap_resolution
        self._positions: Optional[np.ndarray] = None
        self._legs: list[list[np.ndarray]] = []
        self._rng: Optional[np.random.Generator] = None
        self._edges_cache: Optional[list[tuple[int, int]]] = None
        self._time = 0

    # ------------------------------------------------------------------ #
    # model parameters
    # ------------------------------------------------------------------ #
    @property
    def region(self) -> SquareRegion:
        """The square mobility region."""
        return self._region

    @property
    def radius(self) -> float:
        """The transmission radius ``r``."""
        return self._connection.radius

    @property
    def sampler(self) -> TrajectorySampler:
        """The trip sampler that defines the model."""
        return self._sampler

    @property
    def snap_resolution(self) -> Optional[int]:
        """Grid resolution used to discretise positions (``None`` = continuous)."""
        return self._snap_resolution

    # ------------------------------------------------------------------ #
    # process
    # ------------------------------------------------------------------ #
    def reset(self, rng: RNGLike = None) -> None:
        self._rng = ensure_rng(rng)
        self._time = 0
        self._positions = self._region.sample_uniform(self._rng, self._num_nodes)
        self._legs = [[] for _ in range(self._num_nodes)]
        self._edges_cache = None
        for _ in range(self._warmup_steps):
            self._advance()
        self._time = 0

    def step(self) -> None:
        if self._positions is None:
            raise RuntimeError("call reset() before step()")
        self._advance()
        self._time += 1

    def _advance(self) -> None:
        assert self._positions is not None and self._rng is not None
        for node in range(self._num_nodes):
            if not self._legs[node]:
                leg = self._sampler.sample_leg(
                    self._positions[node], self._region, self._rng
                )
                leg = np.asarray(leg, dtype=float)
                if leg.ndim != 2 or leg.shape[1] != 2 or leg.shape[0] < 1:
                    raise ValueError(
                        "sample_leg must return an array of shape (k, 2) with k >= 1"
                    )
                self._legs[node] = [self._region.clamp(row) for row in leg]
            self._positions[node] = self._legs[node].pop(0)
        if self._snap_resolution is not None:
            self._positions = self._snap(self._positions)
        self._edges_cache = None

    def _snap(self, positions: np.ndarray) -> np.ndarray:
        """Snap positions to the centres of the ``m x m`` discretisation cells."""
        m = self._snap_resolution
        assert m is not None
        spacing = self._region.side / m
        cells = np.clip(np.floor(positions / spacing), 0, m - 1)
        return (cells + 0.5) * spacing

    def positions(self) -> np.ndarray:
        """Current positions of all agents, shape ``(n, 2)``."""
        if self._positions is None:
            raise RuntimeError("call reset() before querying positions")
        return self._positions.copy()

    def current_edges(self) -> Iterator[tuple[int, int]]:
        if self._positions is None:
            raise RuntimeError("call reset() before querying the snapshot")
        if self._edges_cache is None:
            self._edges_cache = self._connection.edges(self._positions)
        return iter(self._edges_cache)

    def neighbors_of_set(self, nodes) -> set[int]:
        if self._positions is None:
            raise RuntimeError("call reset() before querying the snapshot")
        if not nodes:
            return set()
        return self._connection.neighbors_of_set(self._positions, nodes)

    def edge_count(self) -> int:
        if self._positions is None:
            raise RuntimeError("call reset() before querying the snapshot")
        if self._edges_cache is None:
            self._edges_cache = self._connection.edges(self._positions)
        return len(self._edges_cache)


def straight_leg(
    start: np.ndarray, destination: np.ndarray, speed: float
) -> np.ndarray:
    """Positions along the straight segment ``start -> destination``.

    The agent covers ``speed`` distance units per time step and the final
    position is exactly the destination (the last step may be shorter).
    """
    require_positive(speed, "speed")
    start = np.asarray(start, dtype=float)
    destination = np.asarray(destination, dtype=float)
    displacement = destination - start
    distance = float(np.linalg.norm(displacement))
    if distance == 0.0:
        return destination[None, :].copy()
    steps = int(np.ceil(distance / speed))
    fractions = np.minimum(np.arange(1, steps + 1) * speed / distance, 1.0)
    return start[None, :] + fractions[:, None] * displacement[None, :]
