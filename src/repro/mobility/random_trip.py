"""The generic random trip model over a square region.

In the random trip model of Le Boudec and Vojnović [24] every agent
repeatedly samples a *trip* (a trajectory through the mobility space together
with the speed profile along it), travels that trip to its end, then samples
the next trip, independently of all other agents.  The random waypoint and
the Manhattan waypoint are instances obtained by restricting the family of
feasible trips.

The implementation discretises time (one position per time step — the same
discretisation Section 4.1 of the paper uses to turn these continuous models
into node-MEGs): a concrete model supplies :meth:`TrajectorySampler.sample_leg`,
which returns the sequence of positions occupied on one trip.
"""

from __future__ import annotations

import abc
from typing import Iterator, Optional

import numpy as np
try:
    from scipy.spatial import cKDTree
except ImportError:  # pragma: no cover - exercised only without scipy
    cKDTree = None

from repro.meg.base import (
    DynamicGraph,
    dense_adjacency_from_pairs,
    sparse_adjacency_from_pairs,
)
from repro.mobility.connection import UnitDiskConnection
from repro.mobility.geometry import SquareRegion
from repro.util.rng import RNGLike, ensure_rng
from repro.util.validation import require_node_count, require_positive


class TrajectorySampler(abc.ABC):
    """Strategy object that samples one trip (leg) of a random trip model."""

    @abc.abstractmethod
    def sample_leg(
        self, position: np.ndarray, region: SquareRegion, rng: np.random.Generator
    ) -> np.ndarray:
        """Return the positions visited on the next trip, one row per time step.

        The returned array must have shape ``(k, 2)`` with ``k >= 1``; the
        first row is the position after the first step of the trip (not the
        current position).
        """


class RandomTrip(DynamicGraph):
    """A geometric random trip mobility model over a square.

    Parameters
    ----------
    num_nodes:
        Number of agents.
    side:
        Side length ``L`` of the square mobility region.
    radius:
        Transmission radius ``r``; two agents are connected when their
        Euclidean distance is at most ``r``.
    sampler:
        The trip sampler defining the model (waypoint legs, Manhattan legs…).
    warmup_steps:
        Number of steps run inside :meth:`reset` before time 0, to bring the
        process close to its stationary regime (the paper analyses stationary
        models).  A value around the mixing time ``L / v`` is appropriate.
    snap_resolution:
        Optional grid resolution ``m``.  When set, agent positions are snapped
        to the nearest point of the ``m x m`` discretisation grid after every
        move — the node-MEG discretisation of Section 4.1.  Footnote 3 of the
        paper states the resolution does not affect the flooding bound as long
        as it is fine enough; the resolution-ablation benchmark verifies this
        by sweeping ``snap_resolution``.
    neighbor_search:
        Neighbor-search method for snapshot edges: ``"auto"`` (default,
        k-d tree when SciPy is available), ``"kdtree"`` or ``"grid"`` (the
        cell-list search; identical edge sets, no SciPy dependency).
    """

    def __init__(
        self,
        num_nodes: int,
        side: float,
        radius: float,
        sampler: TrajectorySampler,
        warmup_steps: int = 0,
        snap_resolution: Optional[int] = None,
        neighbor_search: str = "auto",
    ) -> None:
        self._num_nodes = require_node_count(num_nodes)
        self._region = SquareRegion(side)
        require_positive(radius, "radius", strict=False)
        if warmup_steps < 0:
            raise ValueError(f"warmup_steps must be >= 0, got {warmup_steps}")
        if snap_resolution is not None and snap_resolution < 1:
            raise ValueError(
                f"snap_resolution must be >= 1 when given, got {snap_resolution}"
            )
        self._connection = UnitDiskConnection(radius, method=neighbor_search)
        self._sampler = sampler
        self._warmup_steps = warmup_steps
        self._snap_resolution = snap_resolution
        self._positions: Optional[np.ndarray] = None
        # Remaining trip of every agent, stored as one padded array so the
        # per-step position update is a single NumPy gather: row ``node``
        # holds that agent's current leg, ``_leg_cursor[node]`` the index of
        # its next position, ``_leg_lengths[node]`` the leg's true length.
        self._leg_buffer: Optional[np.ndarray] = None
        self._leg_lengths: Optional[np.ndarray] = None
        self._leg_cursor: Optional[np.ndarray] = None
        self._rng: Optional[np.random.Generator] = None
        self._edges_cache: Optional[list[tuple[int, int]]] = None
        self._pairs_cache: Optional[np.ndarray] = None
        self._tree_cache: Optional[cKDTree] = None
        self._time = 0

    # ------------------------------------------------------------------ #
    # model parameters
    # ------------------------------------------------------------------ #
    @property
    def region(self) -> SquareRegion:
        """The square mobility region."""
        return self._region

    @property
    def radius(self) -> float:
        """The transmission radius ``r``."""
        return self._connection.radius

    @property
    def sampler(self) -> TrajectorySampler:
        """The trip sampler that defines the model."""
        return self._sampler

    @property
    def snap_resolution(self) -> Optional[int]:
        """Grid resolution used to discretise positions (``None`` = continuous)."""
        return self._snap_resolution

    # ------------------------------------------------------------------ #
    # process
    # ------------------------------------------------------------------ #
    def reset(self, rng: RNGLike = None) -> None:
        self._rng = ensure_rng(rng)
        self._time = 0
        self._positions = self._region.sample_uniform(self._rng, self._num_nodes)
        self._leg_buffer = np.zeros((self._num_nodes, 1, 2))
        self._leg_lengths = np.zeros(self._num_nodes, dtype=np.intp)
        self._leg_cursor = np.zeros(self._num_nodes, dtype=np.intp)
        self._invalidate_snapshot()
        for _ in range(self._warmup_steps):
            self._advance()
        self._time = 0

    def step(self) -> None:
        if self._positions is None:
            raise RuntimeError("call reset() before step()")
        self._advance()
        self._time += 1

    def _advance(self) -> None:
        assert self._positions is not None and self._rng is not None
        buffer = self._leg_buffer
        lengths = self._leg_lengths
        cursor = self._leg_cursor
        assert buffer is not None and lengths is not None and cursor is not None
        # Refill exhausted legs in node order, so the random stream is
        # consumed exactly as the per-node loop used to consume it.
        for node in np.nonzero(cursor >= lengths)[0]:
            leg = self._sampler.sample_leg(
                self._positions[node], self._region, self._rng
            )
            leg = np.asarray(leg, dtype=float)
            if leg.ndim != 2 or leg.shape[1] != 2 or leg.shape[0] < 1:
                raise ValueError(
                    "sample_leg must return an array of shape (k, 2) with k >= 1"
                )
            steps = leg.shape[0]
            if steps > buffer.shape[1]:
                grown = np.zeros((self._num_nodes, steps, 2))
                grown[:, : buffer.shape[1]] = buffer
                buffer = self._leg_buffer = grown
            buffer[node, :steps] = np.clip(leg, 0.0, self._region.side)
            lengths[node] = steps
            cursor[node] = 0
        # The whole population advances in one gather.
        self._positions = buffer[np.arange(self._num_nodes), cursor]
        cursor += 1
        if self._snap_resolution is not None:
            self._positions = self._snap(self._positions)
        self._invalidate_snapshot()

    def _invalidate_snapshot(self) -> None:
        self._edges_cache = None
        self._pairs_cache = None
        self._tree_cache = None

    def _snap(self, positions: np.ndarray) -> np.ndarray:
        """Snap positions to the centres of the ``m x m`` discretisation cells."""
        m = self._snap_resolution
        assert m is not None
        spacing = self._region.side / m
        cells = np.clip(np.floor(positions / spacing), 0, m - 1)
        return (cells + 0.5) * spacing

    def positions(self) -> np.ndarray:
        """Current positions of all agents, shape ``(n, 2)``."""
        if self._positions is None:
            raise RuntimeError("call reset() before querying positions")
        return self._positions.copy()

    def snapshot_tree(self) -> cKDTree:
        """k-d tree over the current positions, built once per time step.

        Every neighborhood query, edge enumeration and adjacency build of a
        flooding round reuses this tree instead of rebuilding it per call.
        """
        if self._positions is None:
            raise RuntimeError("call reset() before querying the snapshot")
        if self._tree_cache is None:
            self._tree_cache = cKDTree(self._positions)
        return self._tree_cache

    def _cached_tree(self) -> Optional[cKDTree]:
        """The cached snapshot tree, or ``None`` under the grid search."""
        if self._connection.resolved_method() != "kdtree":
            return None
        return self.snapshot_tree()

    def edge_pairs(self) -> np.ndarray:
        """Current snapshot edges as an ``(m, 2)`` index array (cached)."""
        if self._pairs_cache is None:
            self._pairs_cache = self._connection.edge_pairs(
                self._positions, tree=self._cached_tree()
            )
        return self._pairs_cache

    def current_edges(self) -> Iterator[tuple[int, int]]:
        if self._positions is None:
            raise RuntimeError("call reset() before querying the snapshot")
        if self._edges_cache is None:
            self._edges_cache = [(int(i), int(j)) for i, j in self.edge_pairs()]
        return iter(self._edges_cache)

    def neighbors_of_set(self, nodes) -> set[int]:
        if self._positions is None:
            raise RuntimeError("call reset() before querying the snapshot")
        if not nodes:
            return set()
        return self._connection.neighbors_of_set(
            self._positions, nodes, tree=self._cached_tree()
        )

    def adjacency_matrix(self) -> np.ndarray:
        """Dense boolean adjacency scattered from the k-d tree's edge pairs."""
        if self._positions is None:
            raise RuntimeError("call reset() before querying the snapshot")
        return dense_adjacency_from_pairs(self._num_nodes, self.edge_pairs())

    def sparse_adjacency(self):
        if self._positions is None:
            raise RuntimeError("call reset() before querying the snapshot")
        return sparse_adjacency_from_pairs(self._num_nodes, self.edge_pairs())

    def edge_count(self) -> int:
        if self._positions is None:
            raise RuntimeError("call reset() before querying the snapshot")
        return int(self.edge_pairs().shape[0])

    def expected_degree_estimate(self) -> float:
        """Rough stationary expected degree ``(n - 1) * pi r^2 / L^2``.

        Ignores boundary effects and any non-uniformity of the stationary
        positional density, but gives the right order of magnitude — enough
        to decide whether a configuration is in the sparse or dense regime
        (the engine's ``backend="auto"`` heuristic consumes it).
        """
        area = self._region.volume()
        return (self._num_nodes - 1) * np.pi * self.radius**2 / area


def straight_leg(
    start: np.ndarray, destination: np.ndarray, speed: float
) -> np.ndarray:
    """Positions along the straight segment ``start -> destination``.

    The agent covers ``speed`` distance units per time step and the final
    position is exactly the destination (the last step may be shorter).
    """
    require_positive(speed, "speed")
    start = np.asarray(start, dtype=float)
    destination = np.asarray(destination, dtype=float)
    displacement = destination - start
    distance = float(np.linalg.norm(displacement))
    if distance == 0.0:
        return destination[None, :].copy()
    steps = int(np.ceil(distance / speed))
    fractions = np.minimum(np.arange(1, steps + 1) * speed / distance, 1.0)
    return start[None, :] + fractions[:, None] * displacement[None, :]
