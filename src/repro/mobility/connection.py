"""Geometric connection rules (unit-disk / transmission-radius graphs).

At every time step of a geometric mobility model, two agents are connected
exactly when their Euclidean distance is at most the transmission radius
``r``.  These helpers turn an array of agent positions into the corresponding
snapshot edge set efficiently (k-d tree for large populations, brute force
for tiny ones).

Every query accepts an optional prebuilt :class:`~scipy.spatial.cKDTree` so
a model that caches the tree of its current snapshot can serve every
neighborhood query, edge enumeration and adjacency build of a flooding round
from one tree instead of rebuilding it per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Set

import numpy as np
from scipy.spatial import cKDTree

from repro.util.validation import require_positive


def radius_pairs(
    positions: np.ndarray, radius: float, tree: Optional[cKDTree] = None
) -> np.ndarray:
    """``(m, 2)`` array of pairs ``i < j`` with ``||pos_i - pos_j|| <= radius``.

    ``radius == 0`` still connects exactly coincident points.  Pass ``tree``
    (a ``cKDTree`` built over ``positions``) to reuse a cached tree.
    """
    require_positive(radius, "radius", strict=False)
    pts = np.asarray(positions, dtype=float)
    if pts.ndim != 2:
        raise ValueError(f"positions must be a 2-D array, got shape {pts.shape}")
    if pts.shape[0] < 2:
        return np.empty((0, 2), dtype=np.intp)
    if tree is None:
        tree = cKDTree(pts)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    return pairs.astype(np.intp, copy=False)


def radius_edges(
    positions: np.ndarray, radius: float, tree: Optional[cKDTree] = None
) -> list[tuple[int, int]]:
    """All pairs ``(i, j)``, ``i < j``, with ``||pos_i - pos_j|| <= radius``."""
    pairs = radius_pairs(positions, radius, tree=tree)
    return [(int(i), int(j)) for i, j in pairs]


def neighbors_within_radius(
    positions: np.ndarray,
    sources: Iterable[int],
    radius: float,
    tree: Optional[cKDTree] = None,
) -> Set[int]:
    """Indices of all agents within ``radius`` of at least one source agent.

    The result excludes the source indices themselves unless another source
    happens to be within range of a source.
    """
    require_positive(radius, "radius", strict=False)
    pts = np.asarray(positions, dtype=float)
    source_list = sorted(set(int(s) for s in sources))
    if not source_list:
        return set()
    source_array = np.asarray(source_list, dtype=int)
    if source_array.min() < 0 or source_array.max() >= pts.shape[0]:
        bad = source_array[(source_array < 0) | (source_array >= pts.shape[0])][0]
        raise ValueError(f"source index {bad} out of range")
    if tree is None:
        tree = cKDTree(pts)
    reached: set[int] = set()
    neighbor_lists = tree.query_ball_point(pts[source_array], r=radius)
    for neighbors in neighbor_lists:
        reached.update(int(v) for v in neighbors)
    return reached - set(source_list)


@dataclass(frozen=True)
class UnitDiskConnection:
    """The standard geometric connection rule: connected iff distance <= radius."""

    radius: float

    def __post_init__(self) -> None:
        require_positive(self.radius, "radius", strict=False)

    def edges(
        self, positions: np.ndarray, tree: Optional[cKDTree] = None
    ) -> list[tuple[int, int]]:
        """Snapshot edge set induced by agent positions."""
        return radius_edges(positions, self.radius, tree=tree)

    def edge_pairs(
        self, positions: np.ndarray, tree: Optional[cKDTree] = None
    ) -> np.ndarray:
        """Snapshot edge set as an ``(m, 2)`` index array."""
        return radius_pairs(positions, self.radius, tree=tree)

    def are_connected(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Whether two individual positions are within the radius."""
        return float(np.linalg.norm(np.asarray(a) - np.asarray(b))) <= self.radius

    def neighbors_of_set(
        self,
        positions: np.ndarray,
        sources: Iterable[int],
        tree: Optional[cKDTree] = None,
    ) -> Set[int]:
        """Agents within the radius of at least one source agent."""
        return neighbors_within_radius(positions, sources, self.radius, tree=tree)
