"""Geometric connection rules (unit-disk / transmission-radius graphs).

At every time step of a geometric mobility model, two agents are connected
exactly when their Euclidean distance is at most the transmission radius
``r``.  These helpers turn an array of agent positions into the corresponding
snapshot edge set efficiently, through one of two interchangeable searches:

* ``"kdtree"`` — :class:`scipy.spatial.cKDTree` ``query_pairs``.  Every query
  accepts an optional prebuilt tree so a model that caches the tree of its
  current snapshot can serve every neighborhood query, edge enumeration and
  adjacency build of a flooding round from one tree instead of rebuilding it
  per call.
* ``"grid"`` — a vectorized cell list (:func:`radius_pairs_grid`): positions
  are bucketed into cells of side ``r`` and only the 3x3 cell neighbourhood
  of each bucket is searched.  Exact (inclusive ``<= r``, matching the tree
  down to points lying precisely on the radius) and free of the SciPy
  dependency, but measured *slower* than the C-implemented tree at every
  population size we bench (~2.5-3x), so it is not the default — it is the
  escape hatch when SciPy is unavailable and the seed for a future JIT
  implementation.

``method="auto"`` therefore resolves to the tree whenever SciPy is importable
and to the grid otherwise.  Both searches return identical edge sets, so the
choice never changes simulation results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Set

import numpy as np

from repro.util.validation import require_positive

try:
    from scipy.spatial import cKDTree
except ImportError:  # pragma: no cover - exercised only without scipy
    cKDTree = None

CONNECTION_METHODS = ("auto", "kdtree", "grid")


def resolve_connection_method(method: str) -> str:
    """Concrete search choice (``"kdtree"`` or ``"grid"``) for ``method``."""
    if method == "auto":
        return "kdtree" if cKDTree is not None else "grid"
    if method == "kdtree":
        if cKDTree is None:  # pragma: no cover - exercised only without scipy
            raise ImportError(
                "method='kdtree' requires scipy; install it or use method='grid'"
            )
        return "kdtree"
    if method == "grid":
        return "grid"
    raise ValueError(f"method must be one of {CONNECTION_METHODS}, got {method!r}")


def radius_pairs_grid(positions: np.ndarray, radius: float) -> np.ndarray:
    """Cell-list equivalent of :func:`radius_pairs` (pure NumPy, no tree).

    Buckets the points into square cells of side ``radius``, then enumerates
    candidate pairs only inside each cell and across the four half-stencil
    neighbour offsets (every unordered cell pair at Chebyshev distance <= 1
    is visited exactly once), and keeps the candidates with ``d^2 <= r^2``.
    The result holds exactly the k-d tree query's pairs — same inclusive
    boundary, same ``i < j`` orientation — in lexicographic order (the
    tree's output order is arbitrary; downstream consumers build sets or
    scatter into adjacency, so ordering never affects results).
    """
    require_positive(radius, "radius", strict=False)
    pts = np.asarray(positions, dtype=float)
    if pts.ndim != 2:
        raise ValueError(f"positions must be a 2-D array, got shape {pts.shape}")
    n = pts.shape[0]
    if n < 2:
        return np.empty((0, 2), dtype=np.intp)
    # Cells a hair wider than the radius: the distance filter below uses the
    # same rounded ``d^2 <= r^2`` test as the tree, which can admit pairs an
    # ulp beyond the exact radius — the margin keeps every such pair within
    # one cell per axis even when a coordinate sits on a cell boundary (a
    # point at -1e-300 floors into cell -1 while its partner at +r tops cell
    # +1; without the margin those cells are two apart and never compared).
    width = radius * (1.0 + 1e-9) if radius > 0 else 1.0
    cells = np.floor(pts / width).astype(np.int64)
    cells -= cells.min(axis=0)
    # Row-major cell keys; stride M leaves headroom so the +1/-1 column
    # offsets of the stencil never collide across rows.
    stride = int(cells[:, 1].max()) + 2
    keys = cells[:, 0] * stride + cells[:, 1]
    order = np.argsort(keys, kind="stable")
    unique_keys, starts, counts = np.unique(
        keys[order], return_index=True, return_counts=True
    )

    # Occupied-cell pairs to scan: every cell against itself, plus the four
    # "forward" neighbour offsets (E, NW, N, NE) — the half stencil that
    # covers each neighbouring cell pair exactly once.
    cell_left = [np.arange(unique_keys.size)]
    cell_right = [np.arange(unique_keys.size)]
    for delta in (1, stride - 1, stride, stride + 1):
        position = np.searchsorted(unique_keys, unique_keys + delta)
        position = np.clip(position, 0, unique_keys.size - 1)
        hit = unique_keys[position] == unique_keys + delta
        cell_left.append(np.nonzero(hit)[0])
        cell_right.append(position[hit])
    left_cells = np.concatenate(cell_left)
    right_cells = np.concatenate(cell_right)
    num_same = unique_keys.size

    # One concatenated cross product over all cell pairs: pair p contributes
    # the ``counts[left] * counts[right]`` combinations of its two buckets,
    # decoded from a flat index without any Python-level loop.
    left_counts = counts[left_cells]
    right_counts = counts[right_cells]
    sizes = left_counts * right_counts
    total = int(sizes.sum())
    if total == 0:
        return np.empty((0, 2), dtype=np.intp)
    pair_of = np.repeat(np.arange(left_cells.size), sizes)
    offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
    local = np.arange(total) - offsets[pair_of]
    in_left = local // right_counts[pair_of]
    in_right = local - in_left * right_counts[pair_of]
    candidate_i = order[starts[left_cells][pair_of] + in_left]
    candidate_j = order[starts[right_cells][pair_of] + in_right]
    # Same-cell blocks enumerate ordered pairs incl. (i, i); keep i < j there.
    keep = (pair_of >= num_same) | (candidate_i < candidate_j)
    candidate_i, candidate_j = candidate_i[keep], candidate_j[keep]

    difference = pts[candidate_i] - pts[candidate_j]
    within = (difference * difference).sum(axis=1) <= radius * radius
    candidate_i, candidate_j = candidate_i[within], candidate_j[within]
    low = np.minimum(candidate_i, candidate_j)
    high = np.maximum(candidate_i, candidate_j)
    ranking = np.lexsort((high, low))
    return np.column_stack([low[ranking], high[ranking]]).astype(np.intp)


def radius_pairs(
    positions: np.ndarray,
    radius: float,
    tree: Optional["cKDTree"] = None,
    method: str = "auto",
) -> np.ndarray:
    """``(m, 2)`` array of pairs ``i < j`` with ``||pos_i - pos_j|| <= radius``.

    ``radius == 0`` still connects exactly coincident points.  Pass ``tree``
    (a ``cKDTree`` built over ``positions``) to reuse a cached tree; a given
    tree always wins over ``method``.
    """
    require_positive(radius, "radius", strict=False)
    pts = np.asarray(positions, dtype=float)
    if pts.ndim != 2:
        raise ValueError(f"positions must be a 2-D array, got shape {pts.shape}")
    if pts.shape[0] < 2:
        return np.empty((0, 2), dtype=np.intp)
    if tree is None and resolve_connection_method(method) == "grid":
        return radius_pairs_grid(pts, radius)
    if tree is None:
        tree = cKDTree(pts)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    return pairs.astype(np.intp, copy=False)


def radius_edges(
    positions: np.ndarray,
    radius: float,
    tree: Optional["cKDTree"] = None,
    method: str = "auto",
) -> list[tuple[int, int]]:
    """All pairs ``(i, j)``, ``i < j``, with ``||pos_i - pos_j|| <= radius``."""
    pairs = radius_pairs(positions, radius, tree=tree, method=method)
    return [(int(i), int(j)) for i, j in pairs]


def neighbors_within_radius(
    positions: np.ndarray,
    sources: Iterable[int],
    radius: float,
    tree: Optional["cKDTree"] = None,
    method: str = "auto",
) -> Set[int]:
    """Indices of all agents within ``radius`` of at least one source agent.

    The result excludes the source indices themselves unless another source
    happens to be within range of a source.
    """
    require_positive(radius, "radius", strict=False)
    pts = np.asarray(positions, dtype=float)
    source_list = sorted(set(int(s) for s in sources))
    if not source_list:
        return set()
    source_array = np.asarray(source_list, dtype=int)
    if source_array.min() < 0 or source_array.max() >= pts.shape[0]:
        bad = source_array[(source_array < 0) | (source_array >= pts.shape[0])][0]
        raise ValueError(f"source index {bad} out of range")
    if tree is None and resolve_connection_method(method) == "grid":
        pairs = radius_pairs_grid(pts, radius)
        is_source = np.zeros(pts.shape[0], dtype=bool)
        is_source[source_array] = True
        touches = is_source[pairs[:, 0]] | is_source[pairs[:, 1]]
        reached = set(np.unique(pairs[touches]).tolist())
        return reached - set(source_list)
    if tree is None:
        tree = cKDTree(pts)
    reached = set()
    neighbor_lists = tree.query_ball_point(pts[source_array], r=radius)
    for neighbors in neighbor_lists:
        reached.update(int(v) for v in neighbors)
    return reached - set(source_list)


@dataclass(frozen=True)
class UnitDiskConnection:
    """The standard geometric connection rule: connected iff distance <= radius.

    ``method`` selects the neighbor search (``"auto"``, ``"kdtree"`` or
    ``"grid"``); both searches return identical edge sets.
    """

    radius: float
    method: str = "auto"

    def __post_init__(self) -> None:
        require_positive(self.radius, "radius", strict=False)
        if self.method not in CONNECTION_METHODS:
            raise ValueError(
                f"method must be one of {CONNECTION_METHODS}, got {self.method!r}"
            )

    def resolved_method(self) -> str:
        """The concrete search (``"kdtree"`` or ``"grid"``) this rule uses."""
        return resolve_connection_method(self.method)

    def edges(
        self, positions: np.ndarray, tree: Optional["cKDTree"] = None
    ) -> list[tuple[int, int]]:
        """Snapshot edge set induced by agent positions."""
        return radius_edges(positions, self.radius, tree=tree, method=self.method)

    def edge_pairs(
        self, positions: np.ndarray, tree: Optional["cKDTree"] = None
    ) -> np.ndarray:
        """Snapshot edge set as an ``(m, 2)`` index array."""
        return radius_pairs(positions, self.radius, tree=tree, method=self.method)

    def are_connected(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Whether two individual positions are within the radius."""
        return float(np.linalg.norm(np.asarray(a) - np.asarray(b))) <= self.radius

    def neighbors_of_set(
        self,
        positions: np.ndarray,
        sources: Iterable[int],
        tree: Optional["cKDTree"] = None,
    ) -> Set[int]:
        """Agents within the radius of at least one source agent."""
        return neighbors_within_radius(
            positions, sources, self.radius, tree=tree, method=self.method
        )
