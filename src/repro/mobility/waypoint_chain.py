"""The explicit node-MEG discretisation of the random waypoint (Section 4.1).

Section 4.1 sketches how the continuous random waypoint becomes a node-MEG
``NM(n, M, C)``: discretise the square with an ``m x m`` grid; a state of the
per-node chain encodes the current grid cell and the destination cell (and,
in general, the speed); transitions are deterministic along the straight
path towards the destination and, on arrival, jump to a uniformly random new
destination; the connection map links two nodes whenever their cells are
within the transmission radius.

This module builds that chain *explicitly* for moderate resolutions, so the
quantities Theorem 3 consumes — the exact mixing time, ``P_NM``, ``P_NM2``
and ``eta`` — can be computed rather than estimated, and the resulting
:class:`repro.meg.node_meg.NodeMEG` can be simulated next to the continuous
model for cross-validation.

The state space has ``m**2 * m**2`` states (current cell x destination
cell), so resolutions up to ``m ~ 8`` (4096 states) stay comfortable on a
laptop; that is enough to verify the ``Theta(L / v)`` mixing-time scaling and
the uniformity constants of Corollary 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.markov.chain import MarkovChain
from repro.meg.node_meg import NodeMEG
from repro.util.validation import require_positive


@dataclass(frozen=True)
class WaypointChainModel:
    """The discretised waypoint chain together with its geometric metadata.

    Attributes
    ----------
    chain:
        The per-node Markov chain; state labels are ``(current, destination)``
        pairs of cell indices in ``0 .. m**2 - 1``.
    connection:
        Symmetric boolean matrix over states: 1 when the two current cells are
        within the transmission radius.
    resolution:
        Grid resolution ``m``.
    side:
        Side length ``L`` of the square.
    radius:
        Transmission radius ``r``.
    cells_per_step:
        How many cells an agent traverses per time step (the discretised
        speed).
    """

    chain: MarkovChain
    connection: np.ndarray
    resolution: int
    side: float
    radius: float
    cells_per_step: int

    @property
    def num_cells(self) -> int:
        """Number of grid cells ``m**2``."""
        return self.resolution**2

    def cell_center(self, cell: int) -> tuple[float, float]:
        """Euclidean coordinates of a cell centre."""
        if not 0 <= cell < self.num_cells:
            raise ValueError(f"cell {cell} out of range")
        spacing = self.side / self.resolution
        row, col = divmod(cell, self.resolution)
        return ((row + 0.5) * spacing, (col + 0.5) * spacing)

    def to_node_meg(self, num_nodes: int) -> NodeMEG:
        """Instantiate the node-MEG ``NM(n, M, C)`` for ``num_nodes`` agents."""
        return NodeMEG(num_nodes, self.chain, self.connection)

    def positional_distribution(self) -> np.ndarray:
        """Stationary probability that an agent occupies each cell.

        This is the discrete analogue of the waypoint positional density
        ``F_wp``; it is biased towards the centre of the square, which is the
        qualitative fact Corollary 4's conditions rest on.
        """
        pi = self.chain.stationary_distribution()
        occupancy = np.zeros(self.num_cells)
        for probability, (current, _destination) in zip(pi, self.chain.states):
            occupancy[current] += probability
        return occupancy


def _cell_path(start: int, destination: int, resolution: int) -> list[int]:
    """Cells visited moving from ``start`` to ``destination`` along the straight segment.

    The path is produced by sampling the segment at half-cell granularity and
    recording the sequence of distinct cells; it always ends at the
    destination cell and never repeats a cell consecutively.
    """
    if start == destination:
        return [destination]
    r0, c0 = divmod(start, resolution)
    r1, c1 = divmod(destination, resolution)
    begin = np.array([r0 + 0.5, c0 + 0.5])
    end = np.array([r1 + 0.5, c1 + 0.5])
    distance = float(np.linalg.norm(end - begin))
    samples = max(2, int(math.ceil(distance * 2)) + 1)
    cells: list[int] = []
    for fraction in np.linspace(0.0, 1.0, samples):
        point = begin + fraction * (end - begin)
        row = min(int(point[0]), resolution - 1)
        col = min(int(point[1]), resolution - 1)
        cell = row * resolution + col
        if not cells or cells[-1] != cell:
            cells.append(cell)
    if cells[0] == start:
        cells = cells[1:]
    if not cells or cells[-1] != destination:
        cells.append(destination)
    return cells


def build_waypoint_chain(
    resolution: int,
    side: float,
    radius: float,
    cells_per_step: int = 1,
) -> WaypointChainModel:
    """Build the explicit waypoint chain of Section 4.1.

    Parameters
    ----------
    resolution:
        Grid resolution ``m`` (the chain has ``m**4`` states, keep ``m <= 8``
        or so).
    side:
        Side length ``L`` of the square region.
    radius:
        Transmission radius ``r`` (in the same units as ``side``).
    cells_per_step:
        Discretised speed: how many cells of the straight path are traversed
        per time step.  With cell size ``L / m`` this corresponds to a
        physical speed of ``cells_per_step * L / m`` per step.
    """
    if resolution < 2:
        raise ValueError(f"resolution must be >= 2, got {resolution}")
    if resolution > 12:
        raise ValueError(
            "resolution > 12 would create more than ~20k states; "
            "use the continuous RandomWaypoint simulator instead"
        )
    require_positive(side, "side")
    require_positive(radius, "radius", strict=False)
    if cells_per_step < 1:
        raise ValueError(f"cells_per_step must be >= 1, got {cells_per_step}")

    num_cells = resolution**2
    # Precompute, for every (current, destination) pair, the remaining cell path.
    paths: dict[tuple[int, int], list[int]] = {}
    for start in range(num_cells):
        for destination in range(num_cells):
            paths[(start, destination)] = _cell_path(start, destination, resolution)

    states = [(current, destination) for current in range(num_cells) for destination in range(num_cells)]
    index = {state: i for i, state in enumerate(states)}
    matrix = np.zeros((len(states), len(states)))

    for (current, destination), row_index in index.items():
        if current == destination:
            # Arrived: pick a fresh uniform destination (possibly the same cell,
            # in which case the agent pauses for a step — the standard
            # zero-pause discretisation artefact of one cell).
            share = 1.0 / num_cells
            for new_destination in range(num_cells):
                matrix[row_index, index[(current, new_destination)]] += share
            continue
        remaining = paths[(current, destination)]
        advance = min(cells_per_step, len(remaining))
        next_cell = remaining[advance - 1]
        matrix[row_index, index[(next_cell, destination)]] += 1.0

    chain = MarkovChain(matrix, states=states)

    # Connection map: two states are connected when their *current* cells are
    # within Euclidean distance `radius`.
    spacing = side / resolution
    centers = np.array(
        [((cell // resolution + 0.5) * spacing, (cell % resolution + 0.5) * spacing) for cell in range(num_cells)]
    )
    cell_distances = np.linalg.norm(centers[:, None, :] - centers[None, :, :], axis=2)
    cell_connected = cell_distances <= radius + 1e-12
    current_of_state = np.array([current for current, _ in states])
    connection = cell_connected[np.ix_(current_of_state, current_of_state)]

    return WaypointChainModel(
        chain=chain,
        connection=connection,
        resolution=resolution,
        side=side,
        radius=radius,
        cells_per_step=cells_per_step,
    )


def waypoint_chain_mixing_time(model: WaypointChainModel, epsilon: float = 0.25) -> int:
    """Exact mixing time of the discretised waypoint chain.

    The paper quotes ``Theta(L / v_max)`` for the continuous model; for the
    discretised chain with speed ``cells_per_step`` cells per step this
    corresponds to ``Theta(m / cells_per_step)`` steps, which this function
    verifies exactly for small resolutions.
    """
    from repro.markov.mixing import mixing_time

    max_steps = 64 * model.resolution * model.num_cells
    return mixing_time(model.chain, epsilon=epsilon, max_steps=max_steps)
