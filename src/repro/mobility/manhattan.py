"""The Manhattan-waypoint variant of the random waypoint model.

Clementi, Monti and Silvestri [13] analysed a variant of the random waypoint
in which agents travel to the chosen destination along *Manhattan paths*
(first horizontally, then vertically, or the other way round) instead of the
straight segment.  The paper cites it as the only prior waypoint-style model
with a flooding bound, obtained through an ad-hoc analysis.  Implementing it
lets the experiments compare the straight-line and Manhattan versions under
the same harness.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mobility.geometry import SquareRegion
from repro.mobility.random_trip import RandomTrip, TrajectorySampler, straight_leg
from repro.util.validation import require_positive


class ManhattanSampler(TrajectorySampler):
    """Trip sampler with L-shaped (axis-aligned) legs to a uniform destination."""

    def __init__(self, speed: float) -> None:
        require_positive(speed, "speed")
        self._speed = speed

    @property
    def speed(self) -> float:
        """Constant agent speed."""
        return self._speed

    def sample_leg(
        self, position: np.ndarray, region: SquareRegion, rng: np.random.Generator
    ) -> np.ndarray:
        destination = region.sample_uniform(rng, 1)[0]
        # Travel one axis first (chosen at random), then the other.
        if rng.random() < 0.5:
            corner = np.array([destination[0], position[1]])
        else:
            corner = np.array([position[0], destination[1]])
        first = straight_leg(position, corner, self._speed)
        second = straight_leg(corner, destination, self._speed)
        # Avoid duplicating the corner when the first sub-leg already ends there.
        if np.allclose(first[-1], second[0]) and second.shape[0] > 1:
            second = second[1:]
        elif np.allclose(first[-1], second[0]) and second.shape[0] == 1:
            return first
        return np.vstack([first, second])


class ManhattanWaypoint(RandomTrip):
    """Random waypoint with Manhattan trajectories ([13]'s model)."""

    def __init__(
        self,
        num_nodes: int,
        side: float,
        radius: float,
        speed: float,
        warmup_steps: int | None = None,
    ) -> None:
        sampler = ManhattanSampler(speed)
        if warmup_steps is None:
            warmup_steps = 2 * int(math.ceil(2.0 * side / speed)) + 2
        super().__init__(num_nodes, side, radius, sampler, warmup_steps=warmup_steps)

    @property
    def speed(self) -> float:
        """Constant agent speed."""
        return self.sampler.speed  # type: ignore[attr-defined]

    def mixing_time_estimate(self) -> float:
        """Mixing-time estimate ``Theta(L / v)`` (Manhattan legs are <= 2L long)."""
        return 2.0 * self.region.side / self.speed
