"""The random walk mobility model on an ``m x m`` grid.

The representative geometric model of the paper's introduction: ``n`` agents
live on the points of an ``m x m`` grid; at every time step each agent
independently moves to a point chosen uniformly at random among the grid
neighbours of its current point (optionally staying put with a holding
probability — the lazy walk — which keeps the per-agent chain aperiodic).
Two agents are connected when their Euclidean distance is at most the
transmission radius ``r``.

Prior work obtained almost tight flooding bounds for this model with ad-hoc
techniques relying on the near-uniform stationary positional distribution;
here it serves both as a well-understood sanity check of the simulator and as
the ``rho = 1`` special case of the graph random walk of Corollary 6.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np
try:
    from scipy.spatial import cKDTree
except ImportError:  # pragma: no cover - exercised only without scipy
    cKDTree = None

from repro.meg.base import (
    DynamicGraph,
    dense_adjacency_from_pairs,
    sparse_adjacency_from_pairs,
)
from repro.mobility.connection import UnitDiskConnection
from repro.util.rng import RNGLike, ensure_rng
from repro.util.validation import require_node_count, require_positive, require_probability

# Candidate moves of a grid step, in the order the per-node loop historically
# filtered them (right, left, up, down); the vectorized step must keep this
# order to draw the same move indices from the same random stream.
_MOVES = np.array([[1, 0], [-1, 0], [0, 1], [0, -1]])


class RandomWalkMobility(DynamicGraph):
    """Independent lazy random walks of ``n`` agents on an ``m x m`` grid.

    Parameters
    ----------
    num_nodes:
        Number of agents ``n``.
    grid_side:
        Number of grid points per dimension ``m`` (the grid has ``m**2``
        points).
    radius:
        Transmission radius ``r`` in the same units as ``spacing``.
    spacing:
        Physical distance between adjacent grid points; the physical side of
        the region is ``(m - 1) * spacing``.  Defaults to 1.
    holding_probability:
        Probability of staying put at each step (lazy walk); 0 recovers the
        plain walk of the paper's description.
    stationary_start:
        When true (default) the initial positions are sampled from the
        stationary distribution of the lazy walk, which is proportional to
        the degree of the grid point (4 in the interior, 3 on edges, 2 at
        corners); when false they are uniform over grid points.
    neighbor_search:
        Neighbor-search method for snapshot edges: ``"auto"`` (default,
        k-d tree when SciPy is available), ``"kdtree"`` or ``"grid"`` (the
        cell-list search; identical edge sets, no SciPy dependency).
    """

    def __init__(
        self,
        num_nodes: int,
        grid_side: int,
        radius: float,
        spacing: float = 1.0,
        holding_probability: float = 0.0,
        stationary_start: bool = True,
        neighbor_search: str = "auto",
    ) -> None:
        self._num_nodes = require_node_count(num_nodes)
        if grid_side < 2:
            raise ValueError(f"grid_side must be >= 2, got {grid_side}")
        require_positive(radius, "radius", strict=False)
        require_positive(spacing, "spacing")
        require_probability(holding_probability, "holding_probability")
        if holding_probability == 1.0:
            raise ValueError("holding_probability must be < 1 (agents would freeze)")
        self._grid_side = grid_side
        self._spacing = spacing
        self._holding_probability = holding_probability
        self._stationary_start = stationary_start
        self._connection = UnitDiskConnection(radius, method=neighbor_search)
        self._coords: Optional[np.ndarray] = None  # shape (n, 2), integer grid coords
        self._rng: Optional[np.random.Generator] = None
        self._edges_cache: Optional[list[tuple[int, int]]] = None
        self._pairs_cache: Optional[np.ndarray] = None
        self._tree_cache: Optional[cKDTree] = None
        self._positions_cache: Optional[np.ndarray] = None
        self._time = 0

    # ------------------------------------------------------------------ #
    # parameters
    # ------------------------------------------------------------------ #
    @property
    def grid_side(self) -> int:
        """Number of grid points per dimension ``m``."""
        return self._grid_side

    @property
    def radius(self) -> float:
        """Transmission radius ``r``."""
        return self._connection.radius

    @property
    def spacing(self) -> float:
        """Physical distance between adjacent grid points."""
        return self._spacing

    @property
    def side_length(self) -> float:
        """Physical side length of the mobility region."""
        return (self._grid_side - 1) * self._spacing

    def _degree(self, coord: np.ndarray) -> np.ndarray:
        """Grid degree (2, 3 or 4) of each coordinate row."""
        m = self._grid_side
        on_border_x = (coord[:, 0] == 0) | (coord[:, 0] == m - 1)
        on_border_y = (coord[:, 1] == 0) | (coord[:, 1] == m - 1)
        return 4 - on_border_x.astype(int) - on_border_y.astype(int)

    # ------------------------------------------------------------------ #
    # process
    # ------------------------------------------------------------------ #
    def reset(self, rng: RNGLike = None) -> None:
        self._rng = ensure_rng(rng)
        self._time = 0
        m = self._grid_side
        if self._stationary_start:
            # Stationary distribution of a walk on a graph is proportional to
            # the degree; build it over all m*m points once.
            cols, rows = np.meshgrid(np.arange(m), np.arange(m), indexing="ij")
            coords = np.column_stack([cols.ravel(), rows.ravel()])
            degrees = self._degree(coords).astype(float)
            probabilities = degrees / degrees.sum()
            chosen = self._rng.choice(coords.shape[0], size=self._num_nodes, p=probabilities)
            self._coords = coords[chosen].copy()
        else:
            self._coords = self._rng.integers(0, m, size=(self._num_nodes, 2))
        self._invalidate_snapshot()

    def step(self) -> None:
        if self._coords is None or self._rng is None:
            raise RuntimeError("call reset() before step()")
        if self._holding_probability:
            self._step_with_holding()
        else:
            self._step_vectorized()
        self._invalidate_snapshot()
        self._time += 1

    def _step_vectorized(self) -> None:
        # Whole-population step in a handful of array ops.  NumPy draws
        # broadcast bounded integers element by element from the same stream
        # as repeated scalar draws, so the trajectories are bit-identical to
        # the historical per-node loop.
        m = self._grid_side
        coords = self._coords
        valid = np.column_stack(
            [
                coords[:, 0] + 1 < m,
                coords[:, 0] - 1 >= 0,
                coords[:, 1] + 1 < m,
                coords[:, 1] - 1 >= 0,
            ]
        )
        draws = self._rng.integers(0, valid.sum(axis=1))
        # Index of the (draws+1)-th valid move of every row.
        move_index = np.argmax(valid.cumsum(axis=1) > draws[:, None], axis=1)
        self._coords = coords + _MOVES[move_index]

    def _step_with_holding(self) -> None:
        # The lazy walk interleaves one uniform draw (hold or not) with the
        # move draw per node, so a vectorized version would consume the
        # random stream in a different order; keep the loop for exactness.
        m = self._grid_side
        coords = self._coords
        for node in range(self._num_nodes):
            if self._rng.random() < self._holding_probability:
                continue
            candidates = coords[node] + _MOVES
            valid = candidates[
                (candidates[:, 0] >= 0)
                & (candidates[:, 0] < m)
                & (candidates[:, 1] >= 0)
                & (candidates[:, 1] < m)
            ]
            coords[node] = valid[self._rng.integers(valid.shape[0])]

    def _invalidate_snapshot(self) -> None:
        self._edges_cache = None
        self._pairs_cache = None
        self._tree_cache = None
        self._positions_cache = None

    def positions(self) -> np.ndarray:
        """Current physical positions (grid coordinates times spacing)."""
        return self._physical_positions().copy()

    def _physical_positions(self) -> np.ndarray:
        if self._coords is None:
            raise RuntimeError("call reset() before querying positions")
        if self._positions_cache is None:
            self._positions_cache = self._coords.astype(float) * self._spacing
        return self._positions_cache

    def grid_coordinates(self) -> np.ndarray:
        """Current integer grid coordinates of every agent."""
        if self._coords is None:
            raise RuntimeError("call reset() before querying positions")
        return self._coords.copy()

    def snapshot_tree(self) -> cKDTree:
        """k-d tree over the current positions, built once per time step."""
        if self._tree_cache is None:
            self._tree_cache = cKDTree(self._physical_positions())
        return self._tree_cache

    def _cached_tree(self) -> Optional[cKDTree]:
        """The cached snapshot tree, or ``None`` under the grid search."""
        if self._connection.resolved_method() != "kdtree":
            return None
        return self.snapshot_tree()

    def edge_pairs(self) -> np.ndarray:
        """Current snapshot edges as an ``(m, 2)`` index array (cached)."""
        if self._pairs_cache is None:
            self._pairs_cache = self._connection.edge_pairs(
                self._physical_positions(), tree=self._cached_tree()
            )
        return self._pairs_cache

    def current_edges(self) -> Iterator[tuple[int, int]]:
        if self._edges_cache is None:
            self._edges_cache = [(int(i), int(j)) for i, j in self.edge_pairs()]
        return iter(self._edges_cache)

    def neighbors_of_set(self, nodes) -> set[int]:
        if not nodes:
            return set()
        return self._connection.neighbors_of_set(
            self._physical_positions(), nodes, tree=self._cached_tree()
        )

    def adjacency_matrix(self) -> np.ndarray:
        """Dense boolean adjacency scattered from the k-d tree's edge pairs."""
        return dense_adjacency_from_pairs(self._num_nodes, self.edge_pairs())

    def sparse_adjacency(self):
        return sparse_adjacency_from_pairs(self._num_nodes, self.edge_pairs())

    def edge_count(self) -> int:
        return int(self.edge_pairs().shape[0])

    def expected_degree_estimate(self) -> float:
        """Rough stationary expected degree ``(n - 1) * pi r^2 / area``."""
        area = max(self.side_length, self._spacing) ** 2
        return (self._num_nodes - 1) * np.pi * self.radius**2 / area

    def mixing_time_estimate(self) -> float:
        """Order-of-magnitude mixing time ``Theta(m**2)`` of a walk on the grid."""
        return float(self._grid_side**2)
