"""The random direction mobility model (another random trip instance).

In the random direction model (surveyed in [7], covered by the random trip
framework of [24]) an agent picks a uniformly random direction and a travel
duration, moves in a straight line at constant speed, reflecting off the
borders of the square, then repeats.  Unlike the waypoint its stationary
positional distribution is (essentially) uniform, so it sits at the opposite
end of the "uniformity" spectrum that Corollary 4's conditions quantify:
``delta ~ 1`` and ``lambda ~ 1``, giving a smaller correlation parameter
``eta`` than the centre-biased waypoint.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mobility.geometry import SquareRegion
from repro.mobility.random_trip import RandomTrip, TrajectorySampler
from repro.util.validation import require_positive


def _reflect(value: float, side: float) -> float:
    """Reflect a coordinate into [0, side] (billiard reflection)."""
    period = 2.0 * side
    value = value % period
    if value < 0:
        value += period
    return value if value <= side else period - value


class RandomDirectionSampler(TrajectorySampler):
    """Trip sampler: uniform direction, fixed speed, random duration, reflecting walls."""

    def __init__(self, speed: float, mean_leg_steps: float = 10.0) -> None:
        require_positive(speed, "speed")
        require_positive(mean_leg_steps, "mean_leg_steps")
        self._speed = speed
        self._mean_leg_steps = mean_leg_steps

    @property
    def speed(self) -> float:
        """Constant agent speed."""
        return self._speed

    @property
    def mean_leg_steps(self) -> float:
        """Mean number of steps per leg (durations are geometric)."""
        return self._mean_leg_steps

    def sample_leg(
        self, position: np.ndarray, region: SquareRegion, rng: np.random.Generator
    ) -> np.ndarray:
        angle = rng.uniform(0.0, 2.0 * math.pi)
        steps = 1 + rng.geometric(1.0 / self._mean_leg_steps)
        direction = np.array([math.cos(angle), math.sin(angle)]) * self._speed
        leg = np.empty((steps, 2))
        current = np.asarray(position, dtype=float).copy()
        for index in range(steps):
            current = current + direction
            leg[index, 0] = _reflect(current[0], region.side)
            leg[index, 1] = _reflect(current[1], region.side)
            # Keep the unreflected coordinate for the next increment so the
            # trajectory continues past the wall before folding back.
        return leg


class RandomDirection(RandomTrip):
    """Random direction model over a square, as a dynamic graph."""

    def __init__(
        self,
        num_nodes: int,
        side: float,
        radius: float,
        speed: float,
        mean_leg_steps: float = 10.0,
        warmup_steps: int | None = None,
        snap_resolution: int | None = None,
    ) -> None:
        sampler = RandomDirectionSampler(speed, mean_leg_steps)
        if warmup_steps is None:
            warmup_steps = 2 * int(math.ceil(side / speed)) + 2
        super().__init__(
            num_nodes,
            side,
            radius,
            sampler,
            warmup_steps=warmup_steps,
            snap_resolution=snap_resolution,
        )

    @property
    def speed(self) -> float:
        """Constant agent speed."""
        return self.sampler.speed  # type: ignore[attr-defined]

    def mixing_time_estimate(self) -> float:
        """Order-of-magnitude mixing time ``Theta(L / v)`` (same as the waypoint)."""
        return self.region.side / self.speed
