"""Positional stationary distributions of geometric mobility models.

Corollary 4 replaces the pairwise-independence condition of Theorem 3 with
two *uniformity* conditions on the positional density ``F_T`` of a single
agent in the stationary regime:

(a) ``F_T(u) <= delta / vol(R)`` everywhere, and
(b) there is a sub-region ``B`` with ``vol(B_r) >= lambda vol(R)`` on which
    ``F_T(u) >= 1 / (delta vol(R))``.

This module provides the analytical density of the random waypoint on a
square (the product-form approximation of Bettstetter et al. [6] /
Le Boudec [25]), empirical density estimation for any simulated model, and
the extraction of the smallest ``delta`` / largest ``lambda`` satisfying the
two conditions — the quantities fed into the Corollary-4 bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.meg.base import DynamicGraph
from repro.mobility.geometry import SquareRegion
from repro.util.rng import RNGLike
from repro.util.validation import require_positive


def waypoint_density(x: float | np.ndarray, y: float | np.ndarray, side: float):
    """Stationary positional density of the random waypoint on ``[0, L]^2``.

    We use the classical product-form polynomial approximation

    ``F_wp(x, y) ≈ (36 / L^6) * x (L - x) * y (L - y)``,

    introduced by Bettstetter, Resta and Santi [6] and refined by Le Boudec's
    Palm-calculus treatment [25].  It integrates to 1 over the square, peaks
    at the centre with value ``2.25 / L^2`` and vanishes on the border —
    exactly the "biased towards the centre, still bounded by a constant times
    the uniform density" behaviour that Corollary 4's conditions require.
    """
    require_positive(side, "side")
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    inside = (x >= 0) & (x <= side) & (y >= 0) & (y <= side)
    density = 36.0 / side**6 * x * (side - x) * y * (side - y)
    return np.where(inside, density, 0.0)


def waypoint_density_peak(side: float) -> float:
    """Peak value of the waypoint density (at the centre of the square)."""
    return float(waypoint_density(side / 2.0, side / 2.0, side))


@dataclass(frozen=True)
class UniformityParameters:
    """The (delta, lambda) pair of Corollary 4's conditions (a) and (b).

    ``delta`` is the smallest constant with ``F(u) <= delta / vol(R)``
    everywhere; ``lam`` is the volume fraction ``vol(B_r) / vol(R)`` of the
    chosen high-density region ``B``; ``eta = delta**6 / lam**2`` is the
    correlation parameter the Corollary plugs into Theorem 3.
    """

    delta: float
    lam: float

    def eta(self) -> float:
        """The ``eta = delta^6 / lambda^2`` parameter used by Corollary 4."""
        if self.lam <= 0:
            return float("inf")
        return self.delta**6 / self.lam**2


def uniformity_parameters(
    density: Callable[[np.ndarray, np.ndarray], np.ndarray] | np.ndarray,
    region: SquareRegion,
    radius: float,
    resolution: int = 40,
) -> UniformityParameters:
    """Extract Corollary 4's (delta, lambda) from a positional density.

    Parameters
    ----------
    density:
        Either a callable ``density(x, y)`` (vectorised) or a precomputed
        ``resolution x resolution`` array of cell densities (cells are the
        natural discretisation of the square; values are probability *density*
        per unit area, not per-cell mass).
    region:
        The square mobility region.
    radius:
        Transmission radius ``r``; the high-density region ``B`` is chosen as
        the largest-volume set of cells whose density is at least
        ``1 / (delta vol(R))`` and we report ``lambda = vol(B_r) / vol(R)``
        using the concentric-square erosion of ``B``'s bounding square.
    resolution:
        Grid resolution used to scan the density.

    Notes
    -----
    The natural (and paper-intended) choice for the waypoint is ``B`` = the
    central half-side square; to stay model-agnostic we scan density cells,
    take ``B`` to be the axis-aligned bounding square of all cells with
    density at least the threshold, and erode it by ``r``.  For centred,
    unimodal densities (waypoint, Manhattan waypoint) this recovers the
    intended constants.
    """
    if resolution < 2:
        raise ValueError(f"resolution must be >= 2, got {resolution}")
    require_positive(radius, "radius", strict=False)
    points = region.grid_points(resolution)
    if callable(density):
        values = np.asarray(density(points[:, 0], points[:, 1]), dtype=float)
        values = values.reshape(resolution, resolution)
    else:
        values = np.asarray(density, dtype=float)
        if values.shape != (resolution, resolution):
            raise ValueError(
                f"density array must have shape ({resolution}, {resolution}), "
                f"got {values.shape}"
            )
    if np.any(values < 0):
        raise ValueError("densities must be non-negative")
    volume = region.volume()
    uniform_density = 1.0 / volume
    peak = float(values.max())
    if peak <= 0:
        raise ValueError("the density is identically zero on the grid")
    delta = max(peak / uniform_density, 1.0)

    # Condition (b): cells whose density is at least 1 / (delta vol(R)).
    threshold = 1.0 / (delta * volume)
    mask = values >= threshold - 1e-15
    if not mask.any():
        return UniformityParameters(delta=delta, lam=0.0)
    rows, cols = np.nonzero(mask)
    spacing = region.side / resolution
    # Bounding square of the high-density cells (side = max extent).
    row_extent = (rows.max() - rows.min() + 1) * spacing
    col_extent = (cols.max() - cols.min() + 1) * spacing
    b_side = min(row_extent, col_extent)
    eroded_side = b_side - 2.0 * radius
    if eroded_side <= 0:
        lam = 0.0
    else:
        lam = eroded_side**2 / volume
    return UniformityParameters(delta=delta, lam=min(lam, 1.0))


def empirical_positional_distribution(
    model: DynamicGraph,
    region: SquareRegion,
    resolution: int = 20,
    num_snapshots: int = 200,
    spacing: int = 1,
    rng: RNGLike = None,
) -> np.ndarray:
    """Estimate the stationary positional *density* of a geometric model.

    The model must expose a ``positions()`` method returning an ``(n, 2)``
    array (all geometric models in :mod:`repro.mobility` do).  Positions of
    every agent over ``num_snapshots`` snapshots (``spacing`` steps apart) are
    histogrammed over a ``resolution x resolution`` grid and normalised into a
    density (mass per unit area), so the values are directly comparable with
    :func:`waypoint_density`.
    """
    if not hasattr(model, "positions"):
        raise TypeError("the model does not expose positions(); not a geometric model")
    if num_snapshots < 1:
        raise ValueError(f"num_snapshots must be >= 1, got {num_snapshots}")
    if spacing < 1:
        raise ValueError(f"spacing must be >= 1, got {spacing}")
    if resolution < 1:
        raise ValueError(f"resolution must be >= 1, got {resolution}")
    model.reset(rng)
    counts = np.zeros((resolution, resolution))
    edges = np.linspace(0.0, region.side, resolution + 1)
    for index in range(num_snapshots):
        positions = model.positions()
        histogram, _, _ = np.histogram2d(
            positions[:, 0], positions[:, 1], bins=[edges, edges]
        )
        counts += histogram
        if index + 1 < num_snapshots:
            for _ in range(spacing):
                model.step()
    total = counts.sum()
    if total == 0:
        raise ValueError("no positions fell inside the region")
    cell_area = (region.side / resolution) ** 2
    return counts / total / cell_area


def density_total_variation(
    density_a: np.ndarray, density_b: np.ndarray, region: SquareRegion
) -> float:
    """Total-variation distance between two cell-density arrays over the region."""
    a = np.asarray(density_a, dtype=float)
    b = np.asarray(density_b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("density arrays must have the same shape")
    resolution = a.shape[0]
    cell_area = (region.side / resolution) ** 2
    return float(0.5 * np.abs(a - b).sum() * cell_area)
