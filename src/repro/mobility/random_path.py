"""Graph mobility models: random paths and random walks over a mobility graph.

The random-path model ``RP = (H, P)`` of Section 4.1: at every moment an
agent is travelling along a feasible path of the family ``P`` (one edge of
``H`` per time step); on reaching the end point it chooses a new feasible
path uniformly among those starting there.  Two agents are connected at time
``t`` when they occupy the same point (transmission radius ``r = 0`` measured
in hops), or optionally when they are within ``r`` hops of each other.

When ``P`` is the set of single edges of ``H`` the model degenerates to the
plain random walk over ``H`` (``rho = 1``), the setting of Corollary 6; the
dedicated class :class:`GraphRandomWalkMobility` simulates that case directly
(and more cheaply).

Both classes can export the exact per-agent Markov chain
(:meth:`RandomPathModel.to_markov_chain`), whose mixing time is the
``T_mix`` entering Corollaries 5 and 6.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterator, Optional

import networkx as nx
import numpy as np

from repro.graphs.grid import hop_ball_matrix, nodes_within_hops
from repro.graphs.paths import PathFamily, edge_paths
from repro.markov.chain import MarkovChain
from repro.meg.base import DynamicGraph
from repro.util.rng import RNGLike, ensure_rng
from repro.util.validation import require_node_count

Point = Hashable


class RandomPathModel(DynamicGraph):
    """The random-path mobility model ``RP = (H, P)`` as a dynamic graph.

    Parameters
    ----------
    num_nodes:
        Number of agents ``n``.
    family:
        The family of feasible paths (see :class:`repro.graphs.paths.PathFamily`).
    radius_hops:
        Transmission radius measured in hops of ``H``.  The paper's setting is
        ``0`` (agents communicate only when co-located); small positive values
        are supported for experimentation.
    holding_probability:
        Probability that an agent does not advance at a given step (the lazy
        variant of the model).  The paper's model uses 0, but on *bipartite*
        mobility graphs (grids!) the strict one-hop-per-step dynamics create a
        parity invariant: two agents whose grid colours differ can never be
        co-located, so flooding with ``radius_hops = 0`` cannot complete.  A
        positive holding probability (or ``radius_hops >= 1``) breaks the
        parity without changing the stationary distribution of the per-agent
        chain, which is what the bounds consume.
    stationary_start:
        When true (default) agents start from the stationary distribution of
        the per-agent chain; when false each agent starts at the beginning of
        a uniformly random feasible path.
    """

    def __init__(
        self,
        num_nodes: int,
        family: PathFamily,
        radius_hops: int = 0,
        holding_probability: float = 0.0,
        stationary_start: bool = True,
    ) -> None:
        self._num_nodes = require_node_count(num_nodes)
        if radius_hops < 0:
            raise ValueError(f"radius_hops must be >= 0, got {radius_hops}")
        if not 0.0 <= holding_probability < 1.0:
            raise ValueError(
                f"holding_probability must lie in [0, 1), got {holding_probability}"
            )
        self._family = family
        self._radius_hops = radius_hops
        self._holding_probability = holding_probability
        self._stationary_start = stationary_start

        # Enumerate the chain states (path index, position index >= 1), where
        # position index i means the agent currently occupies path[i]
        # (the paper indexes positions 2..len(h); we use 1..len(h)-1 in
        # 0-based indexing).
        self._paths = family.paths
        self._states: list[tuple[int, int]] = []
        for path_index, path in enumerate(self._paths):
            for position in range(1, len(path)):
                self._states.append((path_index, position))
        self._state_index = {state: i for i, state in enumerate(self._states)}
        self._state_point = [
            self._paths[path_index][position] for path_index, position in self._states
        ]

        # Precompute, for every point, the indices of states that begin a path
        # from that point (i.e. (path, 1) for each feasible path starting there).
        self._entry_states: dict[Point, list[int]] = defaultdict(list)
        for path_index, path in enumerate(self._paths):
            self._entry_states[path[0]].append(self._state_index[(path_index, 1)])

        # Communication neighbourhoods of points, in hops of H.
        graph = family.graph
        self._point_ball: dict[Point, frozenset] = {}
        for point in graph.nodes():
            if radius_hops == 0:
                self._point_ball[point] = frozenset((point,))
            else:
                self._point_ball[point] = frozenset(
                    nodes_within_hops(graph, point, radius_hops)
                )

        # Array form of the chain and the ball relation, for the vectorized
        # whole-population step and the one-gather snapshot adjacency.
        self._point_list = list(graph.nodes())
        point_index = {point: i for i, point in enumerate(self._point_list)}
        self._state_point_index = np.array(
            [point_index[point] for point in self._state_point], dtype=np.intp
        )
        self._point_ball_matrix = hop_ball_matrix(
            graph, radius_hops, self._point_list
        )
        k = len(self._states)
        self._next_state = np.full(k, -1, dtype=np.intp)
        self._entry_count = np.zeros(k, dtype=np.intp)
        max_entries = max(len(v) for v in self._entry_states.values())
        self._entry_matrix = np.zeros((k, max_entries), dtype=np.intp)
        for i, (path_index, position) in enumerate(self._states):
            path = self._paths[path_index]
            if position < len(path) - 1:
                self._next_state[i] = self._state_index[(path_index, position + 1)]
            else:
                entries = self._entry_states[path[-1]]
                self._entry_count[i] = len(entries)
                self._entry_matrix[i, : len(entries)] = entries

        self._agent_states: Optional[np.ndarray] = None
        self._rng: Optional[np.random.Generator] = None
        self._edges_cache: Optional[list[tuple[int, int]]] = None
        self._stationary_cache: Optional[np.ndarray] = None
        self._time = 0

    # ------------------------------------------------------------------ #
    # model-level structure
    # ------------------------------------------------------------------ #
    @property
    def family(self) -> PathFamily:
        """The feasible-path family ``P``."""
        return self._family

    @property
    def radius_hops(self) -> int:
        """Transmission radius in hops of the mobility graph."""
        return self._radius_hops

    @property
    def num_states(self) -> int:
        """Number of states of the per-agent Markov chain."""
        return len(self._states)

    def to_markov_chain(self) -> MarkovChain:
        """The exact per-agent chain ``M_RP`` (states are ``(path, position)``).

        Transition rules follow the paper: deterministic advance inside a
        path; at the final point, jump to position 1 of a uniformly random
        feasible path starting there.
        """
        k = len(self._states)
        matrix = np.zeros((k, k))
        for i, (path_index, position) in enumerate(self._states):
            path = self._paths[path_index]
            if position < len(path) - 1:
                j = self._state_index[(path_index, position + 1)]
                matrix[i, j] = 1.0
            else:
                end_point = path[-1]
                entries = self._entry_states[end_point]
                share = 1.0 / len(entries)
                for j in entries:
                    matrix[i, j] += share
        labels = [
            (self._paths[path_index], position + 1)
            for path_index, position in self._states
        ]
        return MarkovChain(matrix, states=labels)

    def stationary_state_distribution(self) -> np.ndarray:
        """Stationary distribution over the chain states.

        For simple, reversible families the distribution is uniform over
        states (Theorem 11 of [14], used in the proof of Corollary 5); in
        that case the uniform vector is returned directly, otherwise it is
        computed from the explicit chain.
        """
        if self._stationary_cache is None:
            if self._family.is_reversible():
                self._stationary_cache = np.full(
                    len(self._states), 1.0 / len(self._states)
                )
            else:
                self._stationary_cache = self.to_markov_chain().stationary_distribution()
        return self._stationary_cache.copy()

    def point_occupancy_distribution(self) -> dict[Point, float]:
        """Stationary probability that an agent occupies each point of ``H``."""
        pi = self.stationary_state_distribution()
        occupancy: dict[Point, float] = defaultdict(float)
        for probability, point in zip(pi, self._state_point):
            occupancy[point] += float(probability)
        for point in self._family.graph.nodes():
            occupancy.setdefault(point, 0.0)
        return dict(occupancy)

    def edge_probability(self) -> float:
        """``P_NM`` — stationary probability that two fixed agents are connected."""
        pi = self.stationary_state_distribution()
        q = self._state_connection_probabilities(pi)
        return float(pi @ q)

    def shared_neighbor_probability(self) -> float:
        """``P_NM2`` — probability two fixed agents both connect to a third."""
        pi = self.stationary_state_distribution()
        q = self._state_connection_probabilities(pi)
        return float(pi @ (q**2))

    def eta(self) -> float:
        """Pairwise-correlation parameter ``P_NM2 / P_NM**2`` of Theorem 3."""
        p_nm = self.edge_probability()
        if p_nm <= 0:
            raise ValueError("the stationary edge probability is zero")
        return self.shared_neighbor_probability() / p_nm**2

    def _state_connection_probabilities(self, pi: np.ndarray) -> np.ndarray:
        """``q(x)`` — probability a stationary agent connects to one in state ``x``."""
        occupancy: dict[Point, float] = defaultdict(float)
        for probability, point in zip(pi, self._state_point):
            occupancy[point] += float(probability)
        q = np.zeros(len(self._states))
        for i, point in enumerate(self._state_point):
            q[i] = sum(occupancy.get(other, 0.0) for other in self._point_ball[point])
        return q

    # ------------------------------------------------------------------ #
    # process
    # ------------------------------------------------------------------ #
    def reset(self, rng: RNGLike = None) -> None:
        self._rng = ensure_rng(rng)
        self._time = 0
        if self._stationary_start:
            pi = self.stationary_state_distribution()
            self._agent_states = self._rng.choice(
                len(self._states), size=self._num_nodes, p=pi
            )
        else:
            starts = [
                self._state_index[(path_index, 1)]
                for path_index in self._rng.integers(
                    0, len(self._paths), size=self._num_nodes
                )
            ]
            self._agent_states = np.array(starts, dtype=int)
        self._edges_cache = None

    def step(self) -> None:
        if self._agent_states is None or self._rng is None:
            raise RuntimeError("call reset() before step()")
        if self._holding_probability:
            # The lazy variant interleaves a hold draw with the jump draw per
            # agent; a vectorized version would reorder the random stream, so
            # keep the loop for exactness.
            for agent in range(self._num_nodes):
                if self._rng.random() < self._holding_probability:
                    continue
                self._step_one_agent(agent)
        else:
            # Whole-population step: deterministic in-path advances come from
            # one table lookup, and the end-of-path jumps draw broadcast
            # bounded integers — element for element the same values as the
            # historical per-agent scalar draws.
            states = self._agent_states
            advanced = self._next_state[states]
            at_end = advanced < 0
            if at_end.any():
                end_states = states[at_end]
                draws = self._rng.integers(0, self._entry_count[end_states])
                advanced[at_end] = self._entry_matrix[end_states, draws]
            self._agent_states = advanced
        self._edges_cache = None
        self._time += 1

    def _step_one_agent(self, agent: int) -> None:
        path_index, position = self._states[self._agent_states[agent]]
        path = self._paths[path_index]
        if position < len(path) - 1:
            self._agent_states[agent] = self._state_index[(path_index, position + 1)]
        else:
            entries = self._entry_states[path[-1]]
            self._agent_states[agent] = entries[self._rng.integers(len(entries))]

    def agent_points(self) -> list[Point]:
        """Current point of the mobility graph occupied by every agent."""
        if self._agent_states is None:
            raise RuntimeError("call reset() before querying positions")
        return [self._state_point[s] for s in self._agent_states]

    def _compute_edges(self) -> list[tuple[int, int]]:
        points = self.agent_points()
        by_point: dict[Point, list[int]] = defaultdict(list)
        for agent, point in enumerate(points):
            by_point[point].append(agent)
        edges: set[tuple[int, int]] = set()
        for agent, point in enumerate(points):
            for other_point in self._point_ball[point]:
                for other in by_point.get(other_point, ()):
                    if other != agent:
                        edges.add((min(agent, other), max(agent, other)))
        return sorted(edges)

    def current_edges(self) -> Iterator[tuple[int, int]]:
        if self._agent_states is None:
            raise RuntimeError("call reset() before querying the snapshot")
        if self._edges_cache is None:
            self._edges_cache = self._compute_edges()
        return iter(self._edges_cache)

    def adjacency_matrix(self) -> np.ndarray:
        """Dense boolean adjacency gathered from the point-ball matrix."""
        if self._agent_states is None:
            raise RuntimeError("call reset() before querying the snapshot")
        points = self._state_point_index[self._agent_states]
        matrix = self._point_ball_matrix[np.ix_(points, points)]
        np.fill_diagonal(matrix, False)
        return matrix

    def reach_mask(self, informed: np.ndarray) -> np.ndarray:
        """Point-level flooding update through the point-ball matrix."""
        if self._agent_states is None:
            raise RuntimeError("call reset() before querying the snapshot")
        informed = np.asarray(informed, dtype=bool)
        points = self._state_point_index[self._agent_states]
        connected_points = self._point_ball_matrix[points[informed]].any(axis=0)
        return connected_points[points]

    def reach_mask_batch(self, informed: np.ndarray) -> np.ndarray:
        """Point-level batched update over an ``n x B`` informed matrix.

        Column for column the same booleans as :meth:`reach_mask`, computed
        at point level: informed agents are scattered into a point-occupancy
        table, the (symmetric) point-ball matrix marks connected points, and
        the result is gathered back at the agents' points — ``O(nB + P^2 B)``
        in the number of mobility-graph points ``P`` instead of ``O(n^2 B)``.
        """
        if self._agent_states is None:
            raise RuntimeError("call reset() before querying the snapshot")
        points = self._state_point_index[self._agent_states]
        return _point_reach_batch(points, self._point_ball_matrix, informed)


def _point_reach_batch(
    points: np.ndarray, ball_matrix: np.ndarray, informed: np.ndarray
) -> np.ndarray:
    """Batched point-level reach shared by the graph mobility models."""
    informed = np.asarray(informed, dtype=bool)
    num_points = ball_matrix.shape[0]
    occupied = np.zeros((num_points, informed.shape[1]), dtype=bool)
    nodes, columns = np.nonzero(informed)
    occupied[points[nodes], columns] = True
    # Exact: the float32 product counts informed point-neighbours (integers
    # well below 2**24); nonzero count = connected, as in reach_mask.
    accumulator = np.float32 if num_points < 2**24 else np.intp
    connected = (ball_matrix.astype(accumulator) @ occupied.astype(accumulator)) != 0
    return connected[points, :]


class GraphRandomWalkMobility(DynamicGraph):
    """Independent random walks over a mobility graph ``H`` (``rho = 1``).

    Agents occupy the vertices of ``H``; at every step each agent moves to a
    uniformly random neighbour of its current vertex (with an optional
    holding probability).  Agents are connected when they are within
    ``radius_hops`` hops of each other (0 = co-located, the standard
    setting).  The per-agent chain is exactly the (lazy) random walk on
    ``H``, whose mixing time is what Corollary 6 consumes.
    """

    def __init__(
        self,
        num_nodes: int,
        graph: nx.Graph,
        radius_hops: int = 0,
        holding_probability: float = 0.0,
        stationary_start: bool = True,
    ) -> None:
        self._num_nodes = require_node_count(num_nodes)
        if graph.number_of_nodes() < 2:
            raise ValueError("the mobility graph needs at least two points")
        if not nx.is_connected(graph):
            raise ValueError("the mobility graph must be connected")
        if radius_hops < 0:
            raise ValueError(f"radius_hops must be >= 0, got {radius_hops}")
        if not 0.0 <= holding_probability < 1.0:
            raise ValueError(
                f"holding_probability must lie in [0, 1), got {holding_probability}"
            )
        self._graph = graph
        self._points = list(graph.nodes())
        self._point_index = {point: i for i, point in enumerate(self._points)}
        self._neighbors = [
            [self._point_index[v] for v in graph.neighbors(point)]
            for point in self._points
        ]
        self._degrees = np.array([len(nbrs) for nbrs in self._neighbors], dtype=float)
        self._radius_hops = radius_hops
        self._holding_probability = holding_probability
        self._stationary_start = stationary_start
        self._ball_indices: list[np.ndarray] = []
        for point in self._points:
            if radius_hops == 0:
                ball = {point}
            else:
                ball = nodes_within_hops(graph, point, radius_hops)
            self._ball_indices.append(
                np.array(sorted(self._point_index[p] for p in ball), dtype=int)
            )
        # Point-level ball relation as one boolean matrix (snapshot adjacency
        # is a single gather) and the neighbour lists padded into one integer
        # matrix (whole-population steps draw broadcast bounded integers).
        k = len(self._points)
        self._ball_matrix = np.zeros((k, k), dtype=bool)
        for i, ball in enumerate(self._ball_indices):
            self._ball_matrix[i, ball] = True
        self._degree_counts = np.array(
            [len(nbrs) for nbrs in self._neighbors], dtype=np.intp
        )
        self._neighbor_matrix = np.zeros(
            (k, int(self._degree_counts.max())), dtype=np.intp
        )
        for i, nbrs in enumerate(self._neighbors):
            self._neighbor_matrix[i, : len(nbrs)] = nbrs
        self._agent_points: Optional[np.ndarray] = None
        self._rng: Optional[np.random.Generator] = None
        self._edges_cache: Optional[list[tuple[int, int]]] = None
        self._time = 0

    @property
    def graph(self) -> nx.Graph:
        """The mobility graph ``H``."""
        return self._graph

    @property
    def radius_hops(self) -> int:
        """Transmission radius in hops."""
        return self._radius_hops

    def to_markov_chain(self) -> MarkovChain:
        """The per-agent (possibly lazy) random-walk chain on ``H``."""
        from repro.markov.builders import random_walk_on_graph

        walk = random_walk_on_graph(self._graph)
        if self._holding_probability > 0.0:
            walk = walk.lazy(self._holding_probability)
        return walk

    def reset(self, rng: RNGLike = None) -> None:
        self._rng = ensure_rng(rng)
        self._time = 0
        k = len(self._points)
        if self._stationary_start:
            probabilities = self._degrees / self._degrees.sum()
            self._agent_points = self._rng.choice(k, size=self._num_nodes, p=probabilities)
        else:
            self._agent_points = self._rng.integers(0, k, size=self._num_nodes)
        self._edges_cache = None

    def step(self) -> None:
        if self._agent_points is None or self._rng is None:
            raise RuntimeError("call reset() before step()")
        if self._holding_probability:
            # Hold draws interleave with move draws per agent; vectorizing
            # would reorder the random stream, so the lazy walk keeps the loop.
            for agent in range(self._num_nodes):
                if self._rng.random() < self._holding_probability:
                    continue
                neighbors = self._neighbors[self._agent_points[agent]]
                self._agent_points[agent] = neighbors[
                    self._rng.integers(len(neighbors))
                ]
        else:
            # Whole-population step: broadcast bounded integers draw element
            # for element the same values as the historical per-agent loop.
            points = self._agent_points
            draws = self._rng.integers(0, self._degree_counts[points])
            self._agent_points = self._neighbor_matrix[points, draws]
        self._edges_cache = None
        self._time += 1

    def agent_points(self) -> list:
        """Current point labels occupied by every agent."""
        if self._agent_points is None:
            raise RuntimeError("call reset() before querying positions")
        return [self._points[i] for i in self._agent_points]

    def _compute_edges(self) -> list[tuple[int, int]]:
        assert self._agent_points is not None
        by_point: dict[int, list[int]] = defaultdict(list)
        for agent, point_index in enumerate(self._agent_points):
            by_point[int(point_index)].append(agent)
        edges: set[tuple[int, int]] = set()
        for agent, point_index in enumerate(self._agent_points):
            for other_point in self._ball_indices[int(point_index)]:
                for other in by_point.get(int(other_point), ()):
                    if other != agent:
                        edges.add((min(agent, other), max(agent, other)))
        return sorted(edges)

    def current_edges(self) -> Iterator[tuple[int, int]]:
        if self._agent_points is None:
            raise RuntimeError("call reset() before querying the snapshot")
        if self._edges_cache is None:
            self._edges_cache = self._compute_edges()
        return iter(self._edges_cache)

    def adjacency_matrix(self) -> np.ndarray:
        """Dense boolean adjacency gathered from the point-ball matrix."""
        if self._agent_points is None:
            raise RuntimeError("call reset() before querying the snapshot")
        points = self._agent_points
        matrix = self._ball_matrix[np.ix_(points, points)]
        np.fill_diagonal(matrix, False)
        return matrix

    def reach_mask(self, informed: np.ndarray) -> np.ndarray:
        """Point-level flooding update: reached iff the agent's point lies in
        the ball of some informed agent's point (``O(n + k |informed|)``)."""
        if self._agent_points is None:
            raise RuntimeError("call reset() before querying the snapshot")
        informed = np.asarray(informed, dtype=bool)
        points = self._agent_points
        connected_points = self._ball_matrix[points[informed]].any(axis=0)
        return connected_points[points]

    def reach_mask_batch(self, informed: np.ndarray) -> np.ndarray:
        """Point-level batched update over an ``n x B`` informed matrix
        (column for column the booleans of :meth:`reach_mask`)."""
        if self._agent_points is None:
            raise RuntimeError("call reset() before querying the snapshot")
        return _point_reach_batch(self._agent_points, self._ball_matrix, informed)

    def edge_probability(self) -> float:
        """Stationary probability that two fixed agents are connected.

        Agent positions are independent draws from the walk's stationary
        distribution (proportional to point degree), so the probability is
        ``pi^T B pi`` with ``B`` the point-ball matrix.
        """
        pi = self._degrees / self._degrees.sum()
        return float(pi @ self._ball_matrix @ pi)


def random_walk_path_model(
    num_nodes: int, graph: nx.Graph, radius_hops: int = 0
) -> RandomPathModel:
    """The random-path model whose feasible paths are the single edges of ``H``.

    Equivalent (in distribution) to :class:`GraphRandomWalkMobility` without
    laziness; provided mainly to cross-validate the two implementations in
    the test suite.
    """
    return RandomPathModel(num_nodes, edge_paths(graph), radius_hops=radius_hops)
