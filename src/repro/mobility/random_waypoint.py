"""The random waypoint mobility model.

The standard random waypoint [7]: ``n`` agents move independently over a
square of side ``L``.  Each agent repeatedly (i) chooses a destination point
uniformly at random in the square and a speed uniformly in
``[v_min, v_max]`` (with ``v_max = Theta(v_min)`` in the paper's analysis),
(ii) travels to the destination along the straight segment at that speed,
and (iii) repeats.  Two agents are connected when their distance is at most
the transmission radius ``r``.

Bounding the flooding time of this model was an open problem before the
paper; Corollary 4 plus the known mixing time ``Theta(L / v_max)`` give

``O( (L / v_max) * (L^2 / (n r^2) + 1)^2 * log^3 n )``

which in the sparse regime ``L ~ sqrt(n)``, ``r = Theta(1)``,
``r = O(v_max)`` becomes ``O(sqrt(n) / v_max * log^3 n)`` — almost matching
the trivial ``Omega(sqrt(n) / v_max)`` lower bound.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mobility.geometry import SquareRegion
from repro.mobility.random_trip import RandomTrip, TrajectorySampler, straight_leg
from repro.util.validation import require_positive


class WaypointSampler(TrajectorySampler):
    """Trip sampler of the standard random waypoint (uniform destination)."""

    def __init__(self, v_min: float, v_max: float, pause_steps: int = 0) -> None:
        require_positive(v_min, "v_min")
        require_positive(v_max, "v_max")
        if v_max < v_min:
            raise ValueError(f"v_max ({v_max}) must be >= v_min ({v_min})")
        if pause_steps < 0:
            raise ValueError(f"pause_steps must be >= 0, got {pause_steps}")
        self._v_min = v_min
        self._v_max = v_max
        self._pause_steps = pause_steps

    @property
    def v_min(self) -> float:
        """Minimum speed."""
        return self._v_min

    @property
    def v_max(self) -> float:
        """Maximum speed."""
        return self._v_max

    def sample_leg(
        self, position: np.ndarray, region: SquareRegion, rng: np.random.Generator
    ) -> np.ndarray:
        destination = region.sample_uniform(rng, 1)[0]
        if self._v_min == self._v_max:
            speed = self._v_min
        else:
            speed = rng.uniform(self._v_min, self._v_max)
        leg = straight_leg(position, destination, speed)
        if self._pause_steps:
            pause = np.repeat(destination[None, :], self._pause_steps, axis=0)
            leg = np.vstack([leg, pause])
        return leg


class RandomWaypoint(RandomTrip):
    """Random waypoint model over a square, as a dynamic graph.

    Parameters
    ----------
    num_nodes:
        Number of agents ``n``.
    side:
        Side length ``L`` of the square.
    radius:
        Transmission radius ``r``.
    v_min, v_max:
        Speed range; the paper's analysis assumes ``v_max = Theta(v_min)``.
        ``v_max`` defaults to ``v_min`` (constant speed).
    pause_steps:
        Optional number of time steps the agent pauses at each waypoint
        (the classic "pause time"; 0 matches the paper's version).
    warmup_steps:
        Steps simulated before time 0 to approach the stationary regime;
        defaults to ``2 * ceil(L / v_max)``, i.e. about twice the mixing time.
    snap_resolution:
        Optional grid resolution of the Section-4.1 discretisation (``None``
        keeps positions continuous).
    neighbor_search:
        Neighbor-search method for snapshot edges: ``"auto"`` (default,
        k-d tree when SciPy is available), ``"kdtree"`` or ``"grid"``.
    """

    def __init__(
        self,
        num_nodes: int,
        side: float,
        radius: float,
        v_min: float,
        v_max: float | None = None,
        pause_steps: int = 0,
        warmup_steps: int | None = None,
        snap_resolution: int | None = None,
        neighbor_search: str = "auto",
    ) -> None:
        if v_max is None:
            v_max = v_min
        sampler = WaypointSampler(v_min, v_max, pause_steps)
        if warmup_steps is None:
            warmup_steps = 2 * int(math.ceil(side / v_max)) + 2
        super().__init__(
            num_nodes,
            side,
            radius,
            sampler,
            warmup_steps=warmup_steps,
            snap_resolution=snap_resolution,
            neighbor_search=neighbor_search,
        )

    @property
    def v_min(self) -> float:
        """Minimum agent speed."""
        return self.sampler.v_min  # type: ignore[attr-defined]

    @property
    def v_max(self) -> float:
        """Maximum agent speed."""
        return self.sampler.v_max  # type: ignore[attr-defined]

    def mixing_time_estimate(self) -> float:
        """The paper's ``Theta(L / v_max)`` mixing-time estimate for the model."""
        return self.region.side / self.v_max

    def expected_degree_estimate(self) -> float:
        """Rough stationary expected degree ``(n - 1) * pi r^2 / L^2``.

        This ignores boundary effects and the non-uniform waypoint density,
        but is the right order of magnitude and is useful to decide whether a
        configuration is in the sparse or dense regime.
        """
        n = self.num_nodes
        area = self.region.volume()
        return (n - 1) * math.pi * self.radius**2 / area
