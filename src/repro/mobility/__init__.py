"""Mobility models realised as dynamic graphs.

The paper's Section 4.1 applies the node-MEG machinery to two families of
mobility models:

* **geometric models** — agents move in a bounded region of the plane and two
  agents are connected when their Euclidean distance is at most the
  transmission radius ``r``.  We implement the random walk on a grid, the
  random waypoint (the model whose flooding time the paper bounds for the
  first time), the generic random trip model and the Manhattan waypoint
  variant of [13];
* **graph models** — agents move over a fixed mobility graph along feasible
  paths (the random-path model), with the plain random walk on the graph as
  the special case where paths are single edges.

All models implement :class:`repro.meg.base.DynamicGraph`, so the flooding
simulator and the stationarity estimators apply to them directly.
"""

from repro.mobility.connection import UnitDiskConnection, radius_edges
from repro.mobility.geometry import SquareRegion, discretize_square
from repro.mobility.manhattan import ManhattanWaypoint
from repro.mobility.positional import (
    empirical_positional_distribution,
    uniformity_parameters,
    waypoint_density,
)
from repro.mobility.random_direction import RandomDirection
from repro.mobility.random_path import GraphRandomWalkMobility, RandomPathModel
from repro.mobility.random_trip import RandomTrip, TrajectorySampler
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.waypoint_chain import WaypointChainModel, build_waypoint_chain

__all__ = [
    "GraphRandomWalkMobility",
    "ManhattanWaypoint",
    "RandomDirection",
    "RandomPathModel",
    "RandomTrip",
    "RandomWalkMobility",
    "RandomWaypoint",
    "SquareRegion",
    "TrajectorySampler",
    "UnitDiskConnection",
    "WaypointChainModel",
    "build_waypoint_chain",
    "discretize_square",
    "empirical_positional_distribution",
    "radius_edges",
    "uniformity_parameters",
    "waypoint_density",
]
