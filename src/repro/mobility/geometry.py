"""Geometric mobility spaces and their discretisation.

The continuous models of the paper (random waypoint, random trip) move agents
over a square of side length ``L``; Section 4.1 discretises the square by an
``m x m`` grid of regularly spaced points.  :class:`SquareRegion` captures the
continuous region together with the quantities appearing in Corollary 4
(volume, the eroded region ``B_r`` of points whose ``r``-disk stays inside the
region), and :func:`discretize_square` produces the grid used by the discrete
realisations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import require_positive


@dataclass(frozen=True)
class SquareRegion:
    """The axis-aligned square ``[0, side] x [0, side]``.

    This is the mobility space of the standard random waypoint model.  All
    geometric quantities of Corollary 4 (``vol(R)``, ``vol(B_r)``) are exposed
    as methods.
    """

    side: float

    def __post_init__(self) -> None:
        require_positive(self.side, "side")

    @property
    def dimension(self) -> int:
        """The space is two-dimensional."""
        return 2

    def volume(self) -> float:
        """Area of the square (``vol(R)`` in Corollary 4)."""
        return self.side**2

    def diameter(self) -> float:
        """Euclidean diameter (the diagonal of the square)."""
        return float(np.sqrt(2.0) * self.side)

    def contains(self, point: np.ndarray | tuple[float, float]) -> bool:
        """Whether ``point`` lies inside the closed square."""
        x, y = float(point[0]), float(point[1])
        return 0.0 <= x <= self.side and 0.0 <= y <= self.side

    def clamp(self, point: np.ndarray) -> np.ndarray:
        """Project ``point`` onto the square (used to absorb float drift)."""
        return np.clip(np.asarray(point, dtype=float), 0.0, self.side)

    def eroded_volume(self, radius: float) -> float:
        """``vol(B_r)`` — area of points whose ``r``-disk stays inside the square.

        ``B_r`` is the concentric square of side ``side - 2 r``; the volume is
        zero when the radius is at least half the side.
        """
        require_positive(radius, "radius", strict=False)
        inner = self.side - 2.0 * radius
        if inner <= 0.0:
            return 0.0
        return inner**2

    def eroded_fraction(self, radius: float) -> float:
        """``lambda = vol(B_r) / vol(R)`` for the natural choice ``B = B_r``."""
        return self.eroded_volume(radius) / self.volume()

    def sample_uniform(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """Sample ``count`` uniform points; returns an array of shape (count, 2)."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return rng.random((count, 2)) * self.side

    def grid_points(self, resolution: int) -> np.ndarray:
        """``resolution x resolution`` regularly spaced points covering the square.

        Points are cell centres, i.e. ``((i + 0.5) * side / m, (j + 0.5) * side / m)``,
        so every grid point is interior — matching the discretisation sketch
        of Section 4.1.
        """
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        spacing = self.side / resolution
        coords = (np.arange(resolution) + 0.5) * spacing
        xs, ys = np.meshgrid(coords, coords, indexing="ij")
        return np.column_stack([xs.ravel(), ys.ravel()])


def discretize_square(side: float, resolution: int) -> tuple[np.ndarray, float]:
    """Return ``(points, spacing)`` for an ``m x m`` discretisation of the square.

    ``points`` has shape ``(resolution**2, 2)`` and ``spacing`` is the distance
    between adjacent grid points.  The level of resolution does not affect the
    flooding bounds (footnote 3 of the paper) as long as it is fine enough
    relative to the transmission radius.
    """
    region = SquareRegion(side)
    points = region.grid_points(resolution)
    spacing = side / resolution
    return points, spacing


def nearest_grid_index(point: np.ndarray, side: float, resolution: int) -> tuple[int, int]:
    """Index ``(i, j)`` of the grid cell containing ``point``."""
    if resolution < 1:
        raise ValueError(f"resolution must be >= 1, got {resolution}")
    region = SquareRegion(side)
    clamped = region.clamp(point)
    spacing = side / resolution
    i = min(int(clamped[0] / spacing), resolution - 1)
    j = min(int(clamped[1] / spacing), resolution - 1)
    return i, j


def torus_displacement(a: np.ndarray, b: np.ndarray, side: float) -> np.ndarray:
    """Shortest displacement from ``a`` to ``b`` on the torus of the given side."""
    require_positive(side, "side")
    delta = (np.asarray(b, dtype=float) - np.asarray(a, dtype=float)) % side
    return np.where(delta > side / 2.0, delta - side, delta)


def torus_distance(a: np.ndarray, b: np.ndarray, side: float) -> float:
    """Euclidean distance on the torus (used by periodic variants in tests)."""
    return float(np.linalg.norm(torus_displacement(a, b, side)))
