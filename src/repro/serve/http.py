"""Stdlib HTTP adapter for the serve core (no frameworks, no new deps).

A :class:`~http.server.ThreadingHTTPServer` whose handler translates wire
requests into :class:`~repro.serve.service.SimulationService` calls and
:class:`~repro.serve.service.ServeResult` values back into responses.
Response bodies are canonical JSON (sorted keys, two-space indent, trailing
newline) — the same serialization the CLI's ``--json`` files use — so a
warm HTTP answer can be byte-compared against a local run's output.

Endpoints::

    POST /v1/requests            submit a WorkRequest (+ optional execution
                                 hints "shards", "priority" and "trace")
    GET  /v1/requests/<ticket>   poll a cold request to completion
    GET  /v1/status              spool progress, store size, queue occupancy
    GET  /healthz                liveness + version/spool/store probes
    GET  /metrics                Prometheus text exposition (live tail)
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.engine import jsonify
from repro.serve.service import ServeResult, SimulationService
from repro.telemetry.log import get_logger

_logger = get_logger("serve")

_REQUESTS_PATH = "/v1/requests"


def _not_found(path: str) -> ServeResult:
    return ServeResult(404, {"error": {"type": "NotFound", "message": f"no route for {path}"}})


class ServeHandler(BaseHTTPRequestHandler):
    """One HTTP exchange; all logic lives in the shared service object."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> SimulationService:
        return self.server.service  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/healthz":
            self._send(self.service.health())
            return
        if self.path == "/metrics":
            self._send_text(self.service.metrics_text())
            return
        if self.path == "/v1/status":
            self._send(self.service.status())
            return
        if self.path.startswith(_REQUESTS_PATH + "/"):
            ticket = self.path[len(_REQUESTS_PATH) + 1 :]
            self._send(
                self.service.poll(ticket, if_none_match=self.headers.get("If-None-Match"))
            )
            return
        self._send(_not_found(self.path))

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path != _REQUESTS_PATH:
            self._send(_not_found(self.path))
            return
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._send(
                ServeResult(
                    400,
                    {
                        "error": {
                            "type": "SchemaError",
                            "message": f"request body is not valid JSON: {error}",
                        }
                    },
                )
            )
            return
        self._send(
            self.service.submit(body, if_none_match=self.headers.get("If-None-Match"))
        )

    def _send(self, result: ServeResult) -> None:
        body = b""
        if result.payload is not None:
            body = (
                json.dumps(jsonify(result.payload), indent=2, sort_keys=True) + "\n"
            ).encode("utf-8")
        self.send_response(result.status)
        for name, value in result.headers.items():
            self.send_header(name, value)
        if body:
            self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _send_text(self, text: str, status: int = 200) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        _logger.debug("%s %s", self.address_string(), format % args)


def create_server(
    service: SimulationService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A configured (but not yet serving) threaded HTTP server.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address`` — the tests and the CI smoke job do.
    """
    server = ThreadingHTTPServer((host, port), ServeHandler)
    server.service = service  # type: ignore[attr-defined]
    return server
