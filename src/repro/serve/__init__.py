"""``repro serve`` — read-through simulation-as-a-service over the fleet.

The content-addressed :class:`~repro.engine.ResultStore` makes every
(model, parameters, seed) batch globally addressable; this package puts a
thin HTTP/JSON boundary in front of it, turning the whole platform into a
shared read-through result cache with the fleet as compute backend:

``repro.serve.service``
    :class:`SimulationService` — the framework-free core.  Requests compile
    through :func:`repro.api.compile_request` at the boundary; warm queries
    assemble straight from store records (zero simulation, store-key-digest
    ETags for conditional GETs), cold queries become deterministic-id jobs
    on a fleet :class:`~repro.fleet.queue.JobSpool` behind a bounded
    in-flight queue with 429 backpressure and per-request priorities.
``repro.serve.http``
    The stdlib :class:`~http.server.ThreadingHTTPServer` adapter
    (``repro serve --spool DIR --results-dir DIR [--port N]``).
"""

from repro.serve.http import ServeHandler, create_server
from repro.serve.service import (
    DEFAULT_MAX_QUEUE,
    ServeResult,
    SimulationService,
    plan_etag,
    request_ticket,
)

__all__ = [
    "DEFAULT_MAX_QUEUE",
    "ServeHandler",
    "ServeResult",
    "SimulationService",
    "create_server",
    "plan_etag",
    "request_ticket",
]
