"""The ``repro serve`` service core: read-through simulation-as-a-service.

Framework-free on purpose — :class:`SimulationService` speaks plain dicts
in and :class:`ServeResult` (status + JSON payload + headers) out, and the
stdlib HTTP adapter in :mod:`repro.serve.http` is a thin shell around it,
so the whole request lifecycle is unit-testable without sockets.

The service is a read-through cache over the platform:

* Every request compiles through :func:`repro.api.compile_request` at the
  boundary; malformed requests die there as structured 400s.
* **Warm** requests — every expected store key already present in the
  service's :class:`~repro.engine.ResultStore` — are answered by pure
  assembly from records: zero simulation, ``serve.cache.hit``.  Because
  store keys are content-addressed over the full request identity, the
  digest of the key list is a correct ETag: ``If-None-Match`` answers 304
  without even touching record bodies.
* **Cold** requests compile into deterministic-id fleet jobs
  (:func:`repro.fleet.jobs.request_job_payloads`) and land on the spool for
  whatever workers drain it; the caller gets a 202 with a ticket (a digest
  of the canonical request) and polls ``GET /v1/requests/<ticket>`` until
  the per-job stores merge into the service store and assembly succeeds.
  Tickets persist as files under the spool, so a restarted server still
  answers polls for jobs enqueued by its predecessor.
* A bounded in-flight queue applies **backpressure**: when pending+active
  spool jobs reach ``max_queue``, cold requests get 429 + ``Retry-After``
  instead of piling up.  Per-request ``priority`` classes map onto the
  spool's sorted-id claim order.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.api import (
    InvalidParameterError,
    RequestError,
    WorkRequest,
    compile_request,
)
from repro.engine import MergeConflictError, ResultStore
from repro.fleet.jobs import DEFAULT_PRIORITY, PRIORITIES, request_job_payloads
from repro.fleet.queue import JobSpool
from repro.fleet.status import spool_snapshot
from repro.telemetry import core as telemetry
from repro.telemetry import trace as tracectx
from repro.telemetry.timeseries import TelemetryTailer

#: Default bound on pending+active spool jobs before cold requests get 429.
DEFAULT_MAX_QUEUE = 64

_TICKETS_DIR = "tickets"

#: Shape accepted for a client-supplied trace id (hint field ``"trace"``).
_TRACE_ID_MAX_LENGTH = 64


def _validated_trace(value: object) -> Optional[str]:
    """A client trace id, validated; ``None`` when absent (server mints one)."""
    if value is None:
        return None
    if (
        not isinstance(value, str)
        or not value
        or len(value) > _TRACE_ID_MAX_LENGTH
        or not all(ch.isalnum() or ch in "-_" for ch in value)
    ):
        raise InvalidParameterError(
            f"trace must be a short alphanumeric id "
            f"(max {_TRACE_ID_MAX_LENGTH} chars), got {value!r}"
        )
    return value


@dataclass(frozen=True)
class ServeResult:
    """One service answer: HTTP status, JSON payload (or None), headers."""

    status: int
    payload: Optional[dict]
    headers: dict = field(default_factory=dict)


def request_ticket(request: WorkRequest) -> str:
    """Deterministic ticket of a request: a digest of its canonical JSON."""
    return hashlib.sha256(request.to_json().encode("utf-8")).hexdigest()[:16]


def plan_etag(plan) -> str:
    """The ETag of a compiled plan: a digest of its content-addressed keys.

    The store keys already hash the complete request identity (model,
    parameters, trial count and every per-trial seed), and results are
    deterministic — so the key-list digest identifies the *response bytes*
    without needing the response to exist yet.  A cold request can 304.
    """
    digest = hashlib.sha256("\n".join(plan.store_keys).encode("utf-8")).hexdigest()
    return f'"{digest[:32]}"'


def _etag_matches(header: Optional[str], etag: str) -> bool:
    if header is None:
        return False
    candidates = [token.strip() for token in header.split(",")]
    return "*" in candidates or etag in candidates


def _error(status: int, error: object, **headers: str) -> ServeResult:
    kind = type(error).__name__ if isinstance(error, Exception) else "Error"
    return ServeResult(
        status, {"error": {"type": kind, "message": str(error)}}, dict(headers)
    )


class SimulationService:
    """Compile requests, answer warm ones from the store, spool cold ones."""

    def __init__(
        self,
        store: ResultStore,
        spool: JobSpool,
        max_queue: int = DEFAULT_MAX_QUEUE,
        default_shards: int = 1,
        engine_config: Optional[dict] = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if default_shards < 1:
            raise ValueError(f"default_shards must be >= 1, got {default_shards}")
        self.store = store
        self.spool = spool
        self.max_queue = int(max_queue)
        self.default_shards = int(default_shards)
        self.engine_config = dict(engine_config or {})
        self._lock = threading.Lock()
        self._tailer: Optional[TelemetryTailer] = None
        self._tickets_dir = os.path.join(spool.root, _TICKETS_DIR)
        os.makedirs(self._tickets_dir, exist_ok=True)
        spool.write_config()

    # -------------------------------------------------------------- #
    # endpoints
    # -------------------------------------------------------------- #
    def submit(self, body: object, if_none_match: Optional[str] = None) -> ServeResult:
        """POST /v1/requests — warm 200/304, cold 202, full 429, bad 400.

        Every submission runs under a trace scope: the client may carry its
        own id in the ``"trace"`` hint field (popped with the other
        execution hints, so it never perturbs tickets/ETags/store keys),
        otherwise the service mints one.  The id is echoed in the
        ``X-Trace-Id`` response header and stamped into any spool jobs the
        request fans out to.
        """
        data = body
        try:
            if isinstance(body, dict):
                data = dict(body)
                trace_id = _validated_trace(data.pop("trace", None))
            else:
                trace_id = None
        except RequestError as error:
            telemetry.count("serve.requests")
            telemetry.count("serve.request.invalid")
            return _error(400, error)
        trace_id = trace_id or tracectx.mint_trace_id()
        with tracectx.attach_trace(trace_id):
            result = self._submit_traced(data, if_none_match, trace_id)
        result.headers.setdefault("X-Trace-Id", trace_id)
        return result

    def _submit_traced(
        self, body: object, if_none_match: Optional[str], trace_id: str
    ) -> ServeResult:
        with telemetry.span("serve.request", endpoint="submit"):
            telemetry.count("serve.requests")
            try:
                request, shards, priority = self._parse_submission(body)
                plan = compile_request(request)
            except RequestError as error:
                telemetry.count("serve.request.invalid")
                return _error(400, error)
            etag = plan_etag(plan)
            if _etag_matches(if_none_match, etag):
                telemetry.count("serve.cache.hit")
                return ServeResult(304, None, {"ETag": etag})
            payload = self._assemble_if_warm(plan)
            if payload is not None:
                telemetry.count("serve.cache.hit")
                return ServeResult(200, payload, {"ETag": etag, "X-Cache": "hit"})
            telemetry.count("serve.cache.miss")
            return self._enqueue_cold(request, shards, priority, etag, trace_id)

    def poll(self, ticket: str, if_none_match: Optional[str] = None) -> ServeResult:
        """GET /v1/requests/<ticket> — 200 done, 202 pending, 500 failed."""
        record = self._read_ticket(ticket)
        trace_id = (record or {}).get("trace")
        with tracectx.attach_trace(trace_id):
            result = self._poll_traced(ticket, record, if_none_match)
        if trace_id:
            result.headers.setdefault("X-Trace-Id", trace_id)
        return result

    def _poll_traced(
        self, ticket: str, record: Optional[dict], if_none_match: Optional[str]
    ) -> ServeResult:
        with telemetry.span("serve.request", endpoint="poll"):
            if record is None:
                return _error(404, f"unknown ticket {ticket!r}")
            plan = compile_request(WorkRequest.from_dict(record["request"]))
            etag = plan_etag(plan)
            if _etag_matches(if_none_match, etag):
                telemetry.count("serve.cache.hit")
                return ServeResult(304, None, {"ETag": etag})
            payload = self._assemble_if_warm(plan)
            if payload is not None:
                telemetry.count("serve.cache.hit")
                return ServeResult(200, payload, {"ETag": etag, "X-Cache": "hit"})

            states: dict[str, list[str]] = {}
            for job_id in record["jobs"]:
                state = self.spool.state_of(job_id) or "missing"
                states.setdefault(state, []).append(job_id)
            if states.get("failed"):
                errors = {
                    job_id: str(
                        self.spool.read_job("failed", job_id).get(
                            "last_error", "unknown error"
                        )
                    )
                    for job_id in states["failed"]
                }
                return ServeResult(
                    500, {"status": "failed", "ticket": ticket, "errors": errors}
                )
            if states.get("done") and not states.get("jobs") and not states.get("active"):
                self._merge_job_stores(record)
                payload = self._assemble_if_warm(plan)
                if payload is not None:
                    telemetry.count("serve.cache.fill")
                    return ServeResult(200, payload, {"ETag": etag, "X-Cache": "fill"})
            return ServeResult(
                202,
                {
                    "status": "pending",
                    "ticket": ticket,
                    "jobs": {state: len(ids) for state, ids in sorted(states.items())},
                },
                {"ETag": etag},
            )

    def status(self) -> ServeResult:
        """GET /v1/status — spool progress, store size, queue occupancy."""
        with telemetry.span("serve.request", endpoint="status"):
            counts = self.spool.counts()
            return ServeResult(
                200,
                {
                    "spool": spool_snapshot(self.spool),
                    "store": {"path": self.store.path, "records": len(self.store)},
                    "queue": {
                        "max_queue": self.max_queue,
                        "in_flight": counts["jobs"] + counts["active"],
                        "default_shards": self.default_shards,
                    },
                    "tickets": len(os.listdir(self._tickets_dir)),
                    "metrics": telemetry.metrics_snapshot(),
                },
            )

    def health(self) -> ServeResult:
        """GET /healthz — liveness plus the cheap dependency probes.

        Reports the package version, whether the spool directory is
        reachable (exists and is listable) and whether the store directory
        is writable — enough for a dashboard or external monitor to tell
        "the process is up" from "the process is up but cannot take work".
        Degraded probes turn the status into a 503 so plain HTTP checks
        need no body parsing.
        """
        from repro import __version__

        spool_root = self.spool.root
        spool_reachable = os.path.isdir(spool_root) and os.access(
            spool_root, os.R_OK | os.X_OK
        )
        store_dir = os.path.dirname(self.store.path) or "."
        store_writable = os.path.isdir(store_dir) and os.access(store_dir, os.W_OK)
        ok = spool_reachable and store_writable
        return ServeResult(
            200 if ok else 503,
            {
                "ok": ok,
                "version": __version__,
                "spool": {"path": spool_root, "reachable": spool_reachable},
                "store": {"path": self.store.path, "writable": store_writable},
            },
        )

    def metrics_text(self) -> str:
        """GET /metrics — Prometheus text exposition of live platform state.

        Combines two sources: the service process's own in-memory metrics
        registry (``serve.*`` counters, which are only flushed to disk at
        shutdown) and an incremental tail of the shared telemetry
        directory, which carries the fleet side — worker job spans, queue
        transitions, closed processes' flushed registries.  Without an
        active ``--telemetry`` directory the exposition still renders the
        live in-process registry.
        """
        from repro import __version__

        active = telemetry.active()
        directory = getattr(active, "directory", None)
        if directory is None:
            # No shared directory: tail a path that never exists so the
            # exposition is purely the live snapshot.
            directory = os.path.join(self.spool.root, "_no-telemetry")
        with self._lock:
            if self._tailer is None or self._tailer.directory != directory:
                self._tailer = TelemetryTailer(directory)
            return self._tailer.exposition(
                extra=telemetry.metrics_snapshot(), version=__version__
            )

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def _parse_submission(self, body: object) -> tuple[WorkRequest, int, str]:
        """Split execution hints (shards, priority) from the request identity.

        The hints shape *how* a cold request executes, never *what* it
        computes — they are popped before :class:`WorkRequest` parsing so
        they cannot perturb tickets, ETags or store keys.
        """
        if not isinstance(body, dict):
            raise InvalidParameterError(
                f"the request body must be a JSON object, got {type(body).__name__}"
            )
        data = dict(body)
        shards = data.pop("shards", self.default_shards)
        priority = data.pop("priority", DEFAULT_PRIORITY)
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise InvalidParameterError(f"shards must be an integer >= 1, got {shards!r}")
        if priority not in PRIORITIES:
            raise InvalidParameterError(
                f"priority must be one of {PRIORITIES}, got {priority!r}"
            )
        return WorkRequest.from_dict(data), shards, priority

    def _assemble_if_warm(self, plan) -> Optional[dict]:
        """The assembled result payload, or None if any record is missing."""
        records = {}
        for job in plan.jobs:
            record = self.store.get(job.store_key())
            if record is None:
                return None
            records[job.tag] = record
        return plan.assemble(records)

    def _enqueue_cold(
        self, request, shards: int, priority: str, etag: str, trace_id: str
    ) -> ServeResult:
        try:
            payloads = request_job_payloads(
                request, shards, engine=self.engine_config, priority=priority,
                trace=telemetry.trace_carrier(),
            )
        except ValueError as error:
            telemetry.count("serve.request.invalid")
            return _error(400, error)
        with self._lock:
            counts = self.spool.counts()
            in_flight = counts["jobs"] + counts["active"]
            if in_flight >= self.max_queue:
                telemetry.count("serve.backpressure")
                return _error(
                    429,
                    f"the in-flight queue is full ({in_flight}/{self.max_queue} "
                    f"jobs); retry once workers drain it",
                    **{"Retry-After": "1"},
                )
            enqueued = 0
            for payload in payloads:
                try:
                    self.spool.enqueue(payload)
                    enqueued += 1
                except ValueError:
                    # Deterministic ids: the job is already spooled (an
                    # identical earlier request) — share it, don't double it.
                    telemetry.count("serve.enqueue.duplicate")
            ticket = request_ticket(request)
            self._write_ticket(
                {
                    "ticket": ticket,
                    "request": request.as_dict(),
                    "jobs": [payload["id"] for payload in payloads],
                    "shards": shards,
                    "priority": priority,
                    "trace": trace_id,
                }
            )
        if enqueued:
            telemetry.count("serve.enqueue", enqueued)
        location = f"/v1/requests/{ticket}"
        return ServeResult(
            202,
            {
                "status": "pending",
                "ticket": ticket,
                "location": location,
                "trace": trace_id,
            },
            {"Location": location, "ETag": etag},
        )

    def _merge_job_stores(self, record: dict) -> None:
        """Fan a completed ticket's per-job stores into the service store."""
        with self._lock:
            sources = [
                self.spool.resolve(f"stores/{job_id}") for job_id in record["jobs"]
            ]
            sources = [path for path in sources if os.path.isdir(path)]
            if not sources:
                return
            with telemetry.span(
                "serve.merge", ticket=record["ticket"], sources=len(sources)
            ):
                try:
                    self.store.merge(*sources)
                except (MergeConflictError, FileNotFoundError):
                    # Leave the ticket pending; the next poll (or a re-POST
                    # after the operator repairs the stores) retries.
                    telemetry.count("serve.merge.conflict")

    def _ticket_path(self, ticket: str) -> str:
        safe = "".join(ch for ch in ticket if ch.isalnum())
        return os.path.join(self._tickets_dir, f"{safe}.json")

    def _read_ticket(self, ticket: str) -> Optional[dict]:
        try:
            with open(self._ticket_path(ticket), encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def _write_ticket(self, record: dict) -> None:
        path = self._ticket_path(record["ticket"])
        temp = f"{path}.tmp{os.getpid()}"
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(record, handle, sort_keys=True)
            handle.write("\n")
        os.replace(temp, path)
