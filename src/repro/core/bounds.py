"""The flooding-time bound formulas of the paper.

Each function evaluates the corresponding asymptotic bound *with the implicit
constant set to 1* (and ``log`` factors clamped at 1 for tiny ``n``), so the
values are meaningful only up to a constant factor.  The experiments compare
the *shape* of measured flooding times against these formulas — scaling
exponents, crossovers and who-wins comparisons — never absolute values.

Implemented bounds
------------------
* :func:`theorem1_bound` — ``O(M (1/(n alpha) + beta)^2 log^2 n)`` for any
  ``(M, alpha, beta)``-stationary dynamic graph;
* :func:`theorem3_bound` — ``O(T_mix (1/(n P_NM) + eta)^2 log^3 n)`` for
  node-MEGs;
* :func:`corollary4_bound` — geometric random-trip models via the positional
  uniformity parameters ``delta`` and ``lambda``;
* :func:`waypoint_flooding_bound` — the explicit random-waypoint form
  ``O((L / v_max) (L^2 / (n r^2) + 1)^2 log^3 n)``;
* :func:`corollary5_bound` — random-path models, ``O(T_mix (|V|/n + delta^3)^2 log^3 n)``;
* :func:`corollary6_bound` — random walks on δ-regular graphs,
  ``O(T_mix (delta^2 |V|/n + delta^7)^2 log^3 n)``;
* :func:`edge_meg_general_bound` — generalised edge-MEGs,
  ``O(T_mix (1/(n alpha) + 1)^2 log^2 n)``.
"""

from __future__ import annotations

from repro.util.mathutils import logn_factor
from repro.util.validation import require_positive


def theorem1_bound(n: int, epoch_length: float, alpha: float, beta: float) -> float:
    """Theorem 1: ``M (1/(n alpha) + beta)^2 log^2 n``.

    Parameters
    ----------
    n:
        Number of nodes.
    epoch_length:
        The epoch length ``M`` (at least the mixing time of the process).
    alpha:
        Lower bound on the stationary edge probability (density condition).
    beta:
        Upper bound on the pairwise-correlation ratio (β-independence).
    """
    _validate_n(n)
    require_positive(epoch_length, "epoch_length")
    require_positive(alpha, "alpha")
    require_positive(beta, "beta")
    return epoch_length * (1.0 / (n * alpha) + beta) ** 2 * logn_factor(n, 2)


def theorem3_bound(n: int, mixing_time: float, edge_probability: float, eta: float) -> float:
    """Theorem 3: ``T_mix (1/(n P_NM) + eta)^2 log^3 n`` for node-MEGs."""
    _validate_n(n)
    require_positive(mixing_time, "mixing_time")
    require_positive(edge_probability, "edge_probability")
    require_positive(eta, "eta")
    return (
        mixing_time
        * (1.0 / (n * edge_probability) + eta) ** 2
        * logn_factor(n, 3)
    )


def corollary4_bound(
    n: int,
    mixing_time: float,
    delta: float,
    lam: float,
    volume: float,
    radius: float,
    dimension: int = 2,
) -> float:
    """Corollary 4: ``T_mix (delta^2 vol(R) / (lambda n r^d) + delta^6 / lambda^2)^2 log^3 n``."""
    _validate_n(n)
    require_positive(mixing_time, "mixing_time")
    require_positive(delta, "delta")
    require_positive(lam, "lam")
    require_positive(volume, "volume")
    require_positive(radius, "radius")
    if dimension < 1:
        raise ValueError(f"dimension must be >= 1, got {dimension}")
    density_term = delta**2 * volume / (lam * n * radius**dimension)
    correlation_term = delta**6 / lam**2
    return mixing_time * (density_term + correlation_term) ** 2 * logn_factor(n, 3)


def waypoint_flooding_bound(n: int, side: float, radius: float, v_max: float) -> float:
    """The explicit random-waypoint bound ``(L / v_max)(L^2/(n r^2) + 1)^2 log^3 n``.

    This is the form stated in Section 4.1 after plugging the waypoint's
    constants (``delta``, ``lambda`` absolute constants, mixing time
    ``Theta(L / v_max)``) into Corollary 4.
    """
    _validate_n(n)
    require_positive(side, "side")
    require_positive(radius, "radius")
    require_positive(v_max, "v_max")
    return (side / v_max) * (side**2 / (n * radius**2) + 1.0) ** 2 * logn_factor(n, 3)


def corollary5_bound(n: int, mixing_time: float, num_points: int, delta: float) -> float:
    """Corollary 5: ``T_mix (|V|/n + delta^3)^2 log^3 n`` for random-path models."""
    _validate_n(n)
    require_positive(mixing_time, "mixing_time")
    require_positive(delta, "delta")
    if num_points < 1:
        raise ValueError(f"num_points must be >= 1, got {num_points}")
    return mixing_time * (num_points / n + delta**3) ** 2 * logn_factor(n, 3)


def corollary6_bound(n: int, mixing_time: float, num_points: int, delta: float) -> float:
    """Corollary 6: ``T_mix (delta^2 |V|/n + delta^7)^2 log^3 n`` for graph random walks."""
    _validate_n(n)
    require_positive(mixing_time, "mixing_time")
    require_positive(delta, "delta")
    if num_points < 1:
        raise ValueError(f"num_points must be >= 1, got {num_points}")
    return (
        mixing_time * (delta**2 * num_points / n + delta**7) ** 2 * logn_factor(n, 3)
    )


def edge_meg_general_bound(n: int, mixing_time: float, alpha: float) -> float:
    """Appendix A: ``T_mix (1/(n alpha) + 1)^2 log^2 n`` for generalised edge-MEGs.

    Edges evolve independently, so the β-independence condition holds with
    ``beta = 1`` and Theorem 1 specialises to this form.
    """
    _validate_n(n)
    require_positive(mixing_time, "mixing_time")
    require_positive(alpha, "alpha")
    return mixing_time * (1.0 / (n * alpha) + 1.0) ** 2 * logn_factor(n, 2)


def classic_edge_meg_bound(n: int, p: float, q: float) -> float:
    """Appendix A instantiation for the classic edge-MEG with birth/death rates.

    Mixing time ``1/(p+q)`` and stationary edge probability ``p/(p+q)`` give
    ``(1/(p+q)) ((p+q)/(n p) + 1)^2 log^2 n``.
    """
    _validate_n(n)
    require_positive(p, "p")
    require_positive(q, "q", strict=False)
    total = p + q
    return (1.0 / total) * (total / (n * p) + 1.0) ** 2 * logn_factor(n, 2)


def sparse_waypoint_bound(n: int, v_max: float) -> float:
    """The sparse-regime waypoint bound ``(sqrt(n) / v_max) log^3 n``.

    Obtained from :func:`waypoint_flooding_bound` with ``L ~ sqrt(n)`` and
    ``r = Theta(1)``; it almost matches the trivial lower bound
    ``Omega(sqrt(n) / v_max)``.
    """
    _validate_n(n)
    require_positive(v_max, "v_max")
    return (n**0.5 / v_max) * logn_factor(n, 3)


def _validate_n(n: int) -> None:
    if not isinstance(n, (int,)) or isinstance(n, bool):
        raise TypeError(f"n must be an int, got {type(n).__name__}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
