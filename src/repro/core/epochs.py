"""Epoch-level expansion quantities from the proof of Theorem 1.

The analysis of the paper never looks at individual snapshots; it works at
*epoch* granularity (every ``M`` steps) and tracks three random variables:

* ``deg^tau_{i,A}`` — the number of nodes of ``A`` adjacent to node ``i`` at
  epoch ``tau`` (Lemma 9 lower-bounds its median via Paley–Zygmund);
* ``deg^tau_{A,B}`` — the number of nodes of ``B`` adjacent to *some* node of
  ``A`` at epoch ``tau`` (Lemma 10);
* ``spread^{tau,T}_A`` — the number of nodes outside ``A`` that touch ``A`` at
  least once during the ``T`` epochs following ``tau`` (Lemma 11, the
  doubling engine of the spreading phase).

The functions here measure those quantities empirically on any dynamic graph,
so the experiments can check the concentration the lemmas predict.
"""

from __future__ import annotations

from typing import Set

from repro.meg.base import DynamicGraph
from repro.util.rng import RNGLike, spawn_rngs


def degree_into_set(process: DynamicGraph, node: int, target_set: Set[int]) -> int:
    """``deg_{i,A}`` in the *current* snapshot: neighbours of ``node`` inside ``A``."""
    if node in target_set:
        raise ValueError("the node must not belong to the target set A")
    count = 0
    for a, b in process.current_edges():
        if a == node and b in target_set:
            count += 1
        elif b == node and a in target_set:
            count += 1
    return count


def set_expansion(process: DynamicGraph, source_set: Set[int], target_set: Set[int]) -> int:
    """``deg_{A,B}`` in the current snapshot: nodes of ``B`` adjacent to ``A``."""
    if source_set & target_set:
        raise ValueError("A and B must be disjoint")
    reached = process.neighbors_of_set(source_set)
    return len(reached & target_set)


def spread_over_window(
    process: DynamicGraph,
    source_set: Set[int],
    window: int,
    epoch_length: int = 1,
) -> int:
    """``spread^{tau,T}_A`` measured from the process's *current* time.

    Advances the process by ``window * epoch_length`` steps and counts how
    many nodes outside ``A`` were adjacent to ``A`` in at least one of the
    ``window`` epoch-boundary snapshots.  The process is left at the final
    time (callers wanting independent measurements should reset it).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if epoch_length < 1:
        raise ValueError(f"epoch_length must be >= 1, got {epoch_length}")
    touched: set[int] = set()
    for _ in range(window):
        for _ in range(epoch_length):
            process.step()
        touched |= process.neighbors_of_set(source_set)
    return len(touched - set(source_set))


def sample_degree_into_set(
    process: DynamicGraph,
    node: int,
    target_set: Set[int],
    num_samples: int,
    epoch_length: int,
    rng: RNGLike = None,
) -> list[int]:
    """Independent samples of ``deg^tau_{i,A}`` at epoch boundaries.

    Each sample resets the process, runs one epoch, and measures the degree —
    matching the conditional structure ``P(· | E_{<= (tau-1) M})`` of the
    definition (the epoch boundary is one full epoch after the reset point).
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    if epoch_length < 1:
        raise ValueError(f"epoch_length must be >= 1, got {epoch_length}")
    samples = []
    for generator in spawn_rngs(rng, num_samples):
        process.reset(generator)
        process.run(epoch_length)
        samples.append(degree_into_set(process, node, target_set))
    return samples


def sample_set_expansion(
    process: DynamicGraph,
    source_set: Set[int],
    target_set: Set[int],
    num_samples: int,
    epoch_length: int,
    rng: RNGLike = None,
) -> list[int]:
    """Independent samples of ``deg^tau_{A,B}`` at epoch boundaries."""
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    if epoch_length < 1:
        raise ValueError(f"epoch_length must be >= 1, got {epoch_length}")
    samples = []
    for generator in spawn_rngs(rng, num_samples):
        process.reset(generator)
        process.run(epoch_length)
        samples.append(set_expansion(process, source_set, target_set))
    return samples


def sample_spread(
    process: DynamicGraph,
    source_set: Set[int],
    window: int,
    num_samples: int,
    epoch_length: int = 1,
    rng: RNGLike = None,
) -> list[int]:
    """Independent samples of ``spread^{tau,T}_A``."""
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    samples = []
    for generator in spawn_rngs(rng, num_samples):
        process.reset(generator)
        samples.append(
            spread_over_window(process, source_set, window, epoch_length=epoch_length)
        )
    return samples


def doubling_window_estimate(
    process: DynamicGraph,
    source_set: Set[int],
    epoch_length: int = 1,
    max_window: int = 10_000,
    rng: RNGLike = None,
) -> int:
    """Smallest window ``T`` (in epochs) over which ``A`` reaches ``|A|`` new nodes.

    This is the empirical analogue of the quantity Lemma 11 bounds: the
    number of epochs needed for the informed set to (at least) double.  A
    single trajectory is used; the process is reset first.
    """
    if not source_set:
        raise ValueError("the source set A must be non-empty")
    if max_window < 1:
        raise ValueError(f"max_window must be >= 1, got {max_window}")
    process.reset(rng)
    target = len(source_set)
    touched: set[int] = set()
    for window in range(1, max_window + 1):
        for _ in range(epoch_length):
            process.step()
        touched |= process.neighbors_of_set(source_set)
        touched -= set(source_set)
        if len(touched) >= target:
            return window
    raise RuntimeError(
        f"the set did not double within {max_window} epochs "
        f"({len(touched)}/{target} new nodes reached)"
    )
