"""Flooding-time statistics over repeated trials.

Thin glue between the single-trial simulators of
:mod:`repro.core.flooding` and the summary statistics of
:mod:`repro.util.stats`, plus a few derived measures (phase split, bound
ratios) that the experiment reports use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.flooding import flood, flooding_time_samples
from repro.meg.base import DynamicGraph
from repro.util.rng import RNGLike, spawn_rngs
from repro.util.stats import TrialSummary, summarize, whp_quantile


@dataclass(frozen=True)
class PhaseSplit:
    """Durations of the two phases distinguished by the proof of Theorem 1.

    ``spreading`` is the time to inform half of the nodes, ``saturation`` the
    remaining time to inform everyone.
    """

    spreading: float
    saturation: float

    @property
    def total(self) -> float:
        """Total flooding time (sum of the two phases)."""
        return self.spreading + self.saturation


def flooding_time_statistics(
    process: DynamicGraph,
    num_trials: int,
    source: int = 0,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
) -> TrialSummary:
    """Summary statistics of the flooding time over independent trials."""
    samples = flooding_time_samples(
        process, num_trials, source=source, rng=rng, max_steps=max_steps
    )
    return summarize(samples)


def whp_flooding_time(
    process: DynamicGraph,
    num_trials: int,
    source: int = 0,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
) -> float:
    """Empirical ``1 - 1/n`` quantile of the flooding time (the w.h.p. value)."""
    samples = flooding_time_samples(
        process, num_trials, source=source, rng=rng, max_steps=max_steps
    )
    return whp_quantile(samples, process.num_nodes)


def phase_split(
    process: DynamicGraph,
    num_trials: int,
    source: int = 0,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
) -> PhaseSplit:
    """Average spreading-phase and saturation-phase durations.

    The proof of Theorem 1 bounds the time to reach ``n/2`` informed nodes
    (Lemma 13) and the time to finish from there (Lemma 14) separately, with
    the saturation phase a ``log n`` factor cheaper; this measurement lets the
    experiments check that qualitative split.
    """
    if num_trials < 1:
        raise ValueError(f"num_trials must be >= 1, got {num_trials}")
    spreading_times = []
    saturation_times = []
    for generator in spawn_rngs(rng, num_trials):
        result = flood(process, source=source, rng=generator, max_steps=max_steps)
        if result.flooding_time is None:
            raise RuntimeError("flooding did not complete within the step limit")
        half = result.time_to_fraction(0.5)
        if half is None:
            raise RuntimeError("flooding completed but the half-way point was missed")
        spreading_times.append(half)
        saturation_times.append(result.flooding_time - half)
    count = len(spreading_times)
    return PhaseSplit(
        spreading=sum(spreading_times) / count,
        saturation=sum(saturation_times) / count,
    )


def bound_ratio(measured: float, bound_value: float) -> float:
    """Ratio measured / bound (how much slack the bound leaves).

    Values well below 1 are expected because the bound's implicit constant is
    set to 1; the interesting signal is how the ratio evolves across a
    parameter sweep (it should stay bounded if the bound's shape is right).
    """
    if bound_value <= 0:
        raise ValueError(f"bound_value must be > 0, got {bound_value}")
    if measured < 0:
        raise ValueError(f"measured must be >= 0, got {measured}")
    return measured / bound_value
