"""Empirical estimation of the ``(M, alpha, beta)``-stationarity parameters.

A dynamic graph is ``(M, alpha, beta)``-stationary (Section 3 of the paper)
when, at every epoch boundary ``tau M`` and conditioned on the past up to the
previous epoch:

1. every edge is present with probability at least ``alpha`` (density
   condition), and
2. for all nodes ``i, j`` and node sets ``A``,
   ``P(e_{i,A} e_{j,A}) <= beta P(e_{i,A}) P(e_{j,A})``
   (``beta``-independence condition).

For the explicit models in this library (edge-MEGs, node-MEGs with a known
chain) the parameters are available in closed form; for arbitrary processes
they can only be *estimated* by Monte-Carlo at epoch boundaries.  Both routes
are provided here, so an experiment can plug either into the Theorem-1 bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.meg.base import DynamicGraph
from repro.meg.edge_meg import EdgeMEG, GeneralEdgeMEG
from repro.meg.node_meg import NodeMEG
from repro.util.rng import RNGLike, ensure_rng, spawn_rngs


@dataclass(frozen=True)
class StationarityEstimate:
    """Estimated ``(M, alpha, beta)`` triple of a dynamic-graph process.

    ``alpha`` is a lower estimate of the per-edge probability at epoch
    boundaries and ``beta`` an upper estimate of the pairwise-correlation
    ratio; ``num_samples`` records how many epoch samples produced them.
    """

    epoch_length: int
    alpha: float
    beta: float
    num_samples: int

    def as_dict(self) -> dict:
        """Plain-dict view used by reports."""
        return {
            "epoch_length": self.epoch_length,
            "alpha": self.alpha,
            "beta": self.beta,
            "num_samples": self.num_samples,
        }


def exact_parameters(process: DynamicGraph) -> Optional[tuple[float, float]]:
    """Closed-form ``(alpha, beta)`` for models where they are known exactly.

    * classic and general edge-MEGs: ``alpha`` is the stationary edge
      probability and ``beta = 1`` because edges are independent;
    * node-MEGs: ``alpha = P_NM`` and ``beta = 17 eta`` via Lemma 15 (the
      constant 17 comes from the paper's proof).

    Returns ``None`` when the model is not one of the recognised classes.
    """
    if isinstance(process, (EdgeMEG, GeneralEdgeMEG)):
        return process.stationary_edge_probability(), 1.0
    if isinstance(process, NodeMEG):
        return process.edge_probability(), 17.0 * process.eta()
    return None


def estimate_edge_probability(
    process: DynamicGraph,
    epoch_length: int,
    num_samples: int,
    edges: Optional[Sequence[tuple[int, int]]] = None,
    rng: RNGLike = None,
) -> float:
    """Estimate ``alpha``: the smallest per-edge probability at epoch boundaries.

    Parameters
    ----------
    process:
        The dynamic graph.
    epoch_length:
        Number of steps per epoch (use at least the mixing time).
    num_samples:
        Number of independent epoch samples.
    edges:
        Edges to monitor; defaults to a small deterministic selection
        (first/last/middle pairs), which suffices for the node- and
        edge-transitive models of the paper where all edges are exchangeable.
    rng:
        Seed or generator.
    """
    if epoch_length < 1:
        raise ValueError(f"epoch_length must be >= 1, got {epoch_length}")
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    n = process.num_nodes
    if n < 2:
        raise ValueError("need at least two nodes to estimate an edge probability")
    if edges is None:
        candidates = [(0, 1), (0, n - 1), (n // 2, n // 2 + 1 if n // 2 + 1 < n else 0)]
        edges = []
        seen = set()
        for i, j in candidates:
            if i == j:
                continue
            key = (min(i, j), max(i, j))
            if key not in seen:
                seen.add(key)
                edges.append(key)
    hits = {edge: 0 for edge in edges}
    for generator in spawn_rngs(rng, num_samples):
        process.reset(generator)
        process.run(epoch_length)
        snapshot_edges = {(min(a, b), max(a, b)) for a, b in process.current_edges()}
        for edge in edges:
            if edge in snapshot_edges:
                hits[edge] += 1
    probabilities = [count / num_samples for count in hits.values()]
    return min(probabilities)


def estimate_beta(
    process: DynamicGraph,
    epoch_length: int,
    num_samples: int,
    set_size: Optional[int] = None,
    node_pair: Optional[tuple[int, int]] = None,
    rng: RNGLike = None,
) -> float:
    """Estimate the ``beta``-independence ratio at epoch boundaries.

    Monitors two nodes ``i, j`` and a disjoint target set ``A`` and estimates
    ``P(e_{i,A} e_{j,A}) / (P(e_{i,A}) P(e_{j,A}))`` over ``num_samples``
    independent epochs.  When either marginal is estimated as zero the ratio
    is reported as ``inf`` (no independence information).
    """
    if epoch_length < 1:
        raise ValueError(f"epoch_length must be >= 1, got {epoch_length}")
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    n = process.num_nodes
    if n < 4:
        raise ValueError("need at least four nodes to estimate beta")
    if node_pair is None:
        i, j = 0, 1
    else:
        i, j = node_pair
        if i == j or not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"invalid node pair {node_pair!r}")
    if set_size is None:
        set_size = max(1, (n - 2) // 2)
    available = [v for v in range(n) if v not in (i, j)]
    if set_size > len(available):
        raise ValueError(
            f"set_size {set_size} too large for {n} nodes excluding the pair"
        )
    target_set = set(available[:set_size])

    joint = 0
    marginal_i = 0
    marginal_j = 0
    for generator in spawn_rngs(rng, num_samples):
        process.reset(generator)
        process.run(epoch_length)
        reached = process.neighbors_of_set(target_set)
        hit_i = i in reached
        hit_j = j in reached
        marginal_i += hit_i
        marginal_j += hit_j
        joint += hit_i and hit_j
    if marginal_i == 0 or marginal_j == 0:
        return float("inf")
    p_joint = joint / num_samples
    p_i = marginal_i / num_samples
    p_j = marginal_j / num_samples
    if p_joint == 0.0:
        return 0.0
    return p_joint / (p_i * p_j)


def estimate_stationarity(
    process: DynamicGraph,
    epoch_length: int,
    num_samples: int,
    rng: RNGLike = None,
) -> StationarityEstimate:
    """Estimate the full ``(M, alpha, beta)`` triple of a process.

    For models with closed-form parameters (:func:`exact_parameters`) the
    exact values are used and only the epoch length is taken from the
    arguments; otherwise both parameters are estimated by Monte-Carlo.
    """
    exact = exact_parameters(process)
    if exact is not None:
        alpha, beta = exact
        return StationarityEstimate(
            epoch_length=epoch_length, alpha=alpha, beta=beta, num_samples=0
        )
    generator = ensure_rng(rng)
    alpha = estimate_edge_probability(
        process, epoch_length, num_samples, rng=generator
    )
    beta = estimate_beta(process, epoch_length, num_samples, rng=generator)
    return StationarityEstimate(
        epoch_length=epoch_length, alpha=alpha, beta=beta, num_samples=num_samples
    )
