"""Randomised spreading protocols beyond flooding.

The paper's conclusions observe that richer protocols — for example "every
informed node transmits to a randomly chosen subset of its neighbours" — can
be reduced to flooding over a *virtual* dynamic graph in which a subset of
the edges has been removed.  This module implements that reduction directly:

* :func:`gossip_spread` — push gossip where each informed node forwards the
  message over each incident edge independently with a transmission
  probability, or to at most ``fanout`` random neighbours;
* :func:`si_epidemic` — the classic SI epidemic (per-contact infection
  probability), which is the same virtual-graph reduction phrased in
  epidemiological terms.

Both return a :class:`SpreadingResult` mirroring
:class:`repro.core.flooding.FloodingResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.meg.base import DynamicGraph
from repro.util.rng import RNGLike, ensure_rng
from repro.util.validation import require_probability


@dataclass(frozen=True)
class SpreadingResult:
    """Outcome of one randomised-spreading run."""

    source: int
    num_nodes: int
    informed_history: tuple[int, ...]
    completion_time: Optional[int]

    @property
    def completed(self) -> bool:
        """Whether every node was informed before the step limit."""
        return self.completion_time is not None

    @property
    def final_informed(self) -> int:
        """Number of informed nodes when the run stopped."""
        return self.informed_history[-1]

    def time_to_fraction(self, fraction: float) -> Optional[int]:
        """First time at which at least ``fraction`` of the nodes are informed."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must lie in (0, 1], got {fraction}")
        threshold = fraction * self.num_nodes
        for t, count in enumerate(self.informed_history):
            if count >= threshold:
                return t
        return None


def _default_max_steps(num_nodes: int) -> int:
    return max(400, 40 * num_nodes * max(1, int(np.log2(max(num_nodes, 2)))))


def _spread(
    process: DynamicGraph,
    source: int,
    rng: RNGLike,
    max_steps: Optional[int],
    reset: bool,
    transmit,
) -> SpreadingResult:
    n = process.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} nodes")
    generator = ensure_rng(rng)
    if max_steps is None:
        max_steps = _default_max_steps(n)
    if reset:
        process.reset(generator)

    informed: set[int] = {source}
    history = [1]
    if n == 1:
        return SpreadingResult(source, n, tuple(history), 0)

    completion: Optional[int] = None
    for t in range(max_steps):
        # Current snapshot adjacency restricted to informed senders.
        adjacency: dict[int, list[int]] = {}
        for a, b in process.current_edges():
            if a in informed and b not in informed:
                adjacency.setdefault(a, []).append(b)
            if b in informed and a not in informed:
                adjacency.setdefault(b, []).append(a)
        newly: set[int] = set()
        for sender, receivers in adjacency.items():
            newly.update(transmit(sender, receivers, generator))
        informed |= newly
        history.append(len(informed))
        process.step()
        if len(informed) == n:
            completion = t + 1
            break
    return SpreadingResult(source, n, tuple(history), completion)


def gossip_spread(
    process: DynamicGraph,
    source: int = 0,
    transmission_probability: Optional[float] = None,
    fanout: Optional[int] = None,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    reset: bool = True,
) -> SpreadingResult:
    """Push gossip over a dynamic graph.

    Exactly one of the two mechanisms must be selected:

    * ``transmission_probability`` — each informed node forwards over each
      incident edge independently with this probability (the virtual dynamic
      graph keeps each edge with that probability);
    * ``fanout`` — each informed node forwards to at most ``fanout`` uniformly
      chosen current neighbours (the classic push protocol; ``fanout = 1`` is
      the standard single-call push).

    With ``transmission_probability = 1`` the process coincides with flooding.
    """
    if (transmission_probability is None) == (fanout is None):
        raise ValueError(
            "select exactly one of transmission_probability and fanout"
        )
    if transmission_probability is not None:
        require_probability(transmission_probability, "transmission_probability")
        probability = transmission_probability

        def transmit(_sender: int, receivers: list[int], generator: np.random.Generator):
            mask = generator.random(len(receivers)) < probability
            return [r for r, keep in zip(receivers, mask) if keep]

    else:
        if fanout < 1:  # type: ignore[operator]
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        k = int(fanout)  # type: ignore[arg-type]

        def transmit(_sender: int, receivers: list[int], generator: np.random.Generator):
            if len(receivers) <= k:
                return list(receivers)
            chosen = generator.choice(len(receivers), size=k, replace=False)
            return [receivers[i] for i in chosen]

    return _spread(process, source, rng, max_steps, reset, transmit)


def push_pull_spread(
    process: DynamicGraph,
    source: int = 0,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    reset: bool = True,
) -> SpreadingResult:
    """The classic push–pull protocol over a dynamic graph.

    At every step each *informed* node pushes the message to one uniformly
    random current neighbour, and each *uninformed* node pulls from one
    uniformly random current neighbour (succeeding when that neighbour is
    informed).  Push–pull is the canonical "randomised subset" protocol the
    paper's conclusions point to; like the others it reduces to flooding over
    a virtual dynamic graph that keeps, per step, at most two incident edges
    per node.
    """
    n = process.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} nodes")
    generator = ensure_rng(rng)
    if max_steps is None:
        max_steps = _default_max_steps(n)
    if reset:
        process.reset(generator)

    informed: set[int] = {source}
    history = [1]
    if n == 1:
        return SpreadingResult(source, n, tuple(history), 0)

    completion: Optional[int] = None
    for t in range(max_steps):
        adjacency: dict[int, list[int]] = {}
        for a, b in process.current_edges():
            adjacency.setdefault(a, []).append(b)
            adjacency.setdefault(b, []).append(a)
        newly: set[int] = set()
        for node, neighbors in adjacency.items():
            if not neighbors:
                continue
            partner = neighbors[generator.integers(len(neighbors))]
            if node in informed and partner not in informed:
                newly.add(partner)  # push
            elif node not in informed and partner in informed:
                newly.add(node)  # pull
        informed |= newly
        history.append(len(informed))
        process.step()
        if len(informed) == n:
            completion = t + 1
            break
    return SpreadingResult(source, n, tuple(history), completion)


def si_epidemic(
    process: DynamicGraph,
    source: int = 0,
    infection_probability: float = 1.0,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    reset: bool = True,
) -> SpreadingResult:
    """SI epidemic over a dynamic graph (per-contact infection probability).

    Every contact (edge between an infected and a susceptible node in the
    current snapshot) independently transmits with ``infection_probability``.
    ``infection_probability = 1`` recovers flooding.
    """
    require_probability(infection_probability, "infection_probability")
    probability = infection_probability

    def transmit(_sender: int, receivers: list[int], generator: np.random.Generator):
        mask = generator.random(len(receivers)) < probability
        return [r for r, keep in zip(receivers, mask) if keep]

    return _spread(process, source, rng, max_steps, reset, transmit)
