"""Core contribution: flooding over dynamic graphs and the paper's bounds.

* :mod:`repro.core.flooding` — the flooding process ``I_{t+1} = I_t ∪ N_{E_t}(I_t)``
  over any :class:`repro.meg.base.DynamicGraph`;
* :mod:`repro.core.spreading` — the randomised gossip variants sketched in the
  paper's conclusions (transmit to a random subset of neighbours), reduced to
  flooding over a virtual dynamic graph;
* :mod:`repro.core.epochs` — the expansion quantities used by the proof of
  Theorem 1 (``deg^tau_{i,A}``, ``deg^tau_{A,B}``, ``spread^{tau,T}_A``),
  measured empirically;
* :mod:`repro.core.stationarity` — empirical estimation of the
  ``(M, alpha, beta)``-stationarity parameters of an arbitrary process;
* :mod:`repro.core.bounds` — the bound formulas of Theorem 1, Theorem 3,
  Corollaries 4–6 and the generalised edge-MEG;
* :mod:`repro.core.metrics` — flooding-time statistics over repeated trials.
"""

from repro.core.bounds import (
    corollary4_bound,
    corollary5_bound,
    corollary6_bound,
    edge_meg_general_bound,
    theorem1_bound,
    theorem3_bound,
    waypoint_flooding_bound,
)
from repro.core.epochs import degree_into_set, set_expansion, spread_over_window
from repro.core.flooding import (
    FloodingResult,
    batch_source_flooding_times,
    batched_flooding_time_samples,
    default_max_steps,
    flood,
    flood_sources_set,
    flooding_time,
    flooding_time_samples,
    multi_source_flood,
    worst_case_flooding_time,
)
from repro.core.metrics import flooding_time_statistics
from repro.core.spreading import (
    SpreadingResult,
    gossip_spread,
    push_pull_spread,
    si_epidemic,
)
from repro.core.stationarity import (
    StationarityEstimate,
    estimate_beta,
    estimate_edge_probability,
    estimate_stationarity,
)

__all__ = [
    "FloodingResult",
    "SpreadingResult",
    "StationarityEstimate",
    "batch_source_flooding_times",
    "batched_flooding_time_samples",
    "corollary4_bound",
    "corollary5_bound",
    "corollary6_bound",
    "default_max_steps",
    "degree_into_set",
    "edge_meg_general_bound",
    "estimate_beta",
    "estimate_edge_probability",
    "estimate_stationarity",
    "flood",
    "flood_sources_set",
    "flooding_time",
    "flooding_time_samples",
    "flooding_time_statistics",
    "gossip_spread",
    "multi_source_flood",
    "push_pull_spread",
    "set_expansion",
    "si_epidemic",
    "spread_over_window",
    "theorem1_bound",
    "theorem3_bound",
    "waypoint_flooding_bound",
    "worst_case_flooding_time",
]
