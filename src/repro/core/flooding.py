"""The flooding process over a dynamic graph.

Flooding with source ``s`` (Section 2 of the paper): at time 0 only ``s`` is
informed; a node ``v`` becomes informed at time ``t + 1`` exactly when the
snapshot ``E_t`` contains an edge between ``v`` and some node informed at
time ``t``.  The flooding time is ``F(G, s) = min{t : I_t = [n]}``, and the
(worst-case) flooding time of the dynamic graph is ``F(G) = max_s F(G, s)``.

Although the protocol is deterministic, the process is stochastic because the
graph is; the helpers here run a single trial, repeated trials, and the
max-over-sources estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.meg.base import DynamicGraph
from repro.util.rng import RNGLike, ensure_rng, spawn_rngs


@dataclass(frozen=True)
class FloodingResult:
    """Outcome of one flooding run.

    Attributes
    ----------
    source:
        The initially informed node.
    num_nodes:
        Number of nodes of the dynamic graph.
    informed_history:
        ``informed_history[t]`` is ``|I_t|``, the number of informed nodes at
        time ``t`` (so ``informed_history[0] == 1``).
    flooding_time:
        The first ``t`` with ``|I_t| == num_nodes``, or ``None`` if the run
        hit ``max_steps`` before completing.
    """

    source: int
    num_nodes: int
    informed_history: tuple[int, ...]
    flooding_time: Optional[int]

    @property
    def completed(self) -> bool:
        """Whether every node was informed before the step limit."""
        return self.flooding_time is not None

    @property
    def final_informed(self) -> int:
        """Number of informed nodes when the run stopped."""
        return self.informed_history[-1]

    def informed_at(self, t: int) -> int:
        """``|I_t|`` (the history is clamped at its last value for large ``t``)."""
        if t < 0:
            raise ValueError(f"t must be non-negative, got {t}")
        if t >= len(self.informed_history):
            return self.informed_history[-1]
        return self.informed_history[t]

    def time_to_fraction(self, fraction: float) -> Optional[int]:
        """First time at which at least ``fraction`` of the nodes are informed."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must lie in (0, 1], got {fraction}")
        threshold = fraction * self.num_nodes
        for t, count in enumerate(self.informed_history):
            if count >= threshold:
                return t
        return None


def default_max_steps(num_nodes: int) -> int:
    """Default per-trial step cap used by the flooding simulators.

    Generous: quadratic in n (with a floor), far above any bound we test.
    """
    return max(200, 20 * num_nodes * max(1, int(np.log2(max(num_nodes, 2)))))


_default_max_steps = default_max_steps


def flood(
    process: DynamicGraph,
    source: int = 0,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    reset: bool = True,
) -> FloodingResult:
    """Run one flooding trial on ``process`` and return its full trajectory.

    Parameters
    ----------
    process:
        Any dynamic graph model.
    source:
        The initially informed node.
    rng:
        Seed or generator used to reset the process (ignored when ``reset`` is
        false).
    max_steps:
        Safety cap on the number of time steps (default is a generous
        super-linear function of ``n``); if reached, the result has
        ``flooding_time = None``.
    reset:
        Whether to reset the process before flooding.  Pass ``False`` to
        flood over an already-running process from its current snapshot.
    """
    n = process.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} nodes")
    if max_steps is None:
        max_steps = _default_max_steps(n)
    if max_steps < 0:
        raise ValueError(f"max_steps must be non-negative, got {max_steps}")
    if reset:
        process.reset(rng)

    informed: set[int] = {source}
    history = [1]
    if n == 1:
        return FloodingResult(source, n, tuple(history), 0)

    flooding_time_value: Optional[int] = None
    for t in range(max_steps):
        newly_reached = process.neighbors_of_set(informed)
        informed |= newly_reached
        history.append(len(informed))
        process.step()
        if len(informed) == n:
            flooding_time_value = t + 1
            break
    return FloodingResult(source, n, tuple(history), flooding_time_value)


def multi_source_flood(
    process: DynamicGraph,
    sources: Sequence[int],
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    reset: bool = True,
) -> FloodingResult:
    """Flooding started from several sources simultaneously.

    The paper analyses single-source flooding, but the same process with
    ``|S|`` initially informed nodes is exactly the tail of a single-source
    run that has already informed ``S``; multi-source runs are useful for
    studying the saturation phase (Lemma 14) in isolation and for modelling
    scenarios where several replicas of the information are injected at once.

    The returned result reports the smallest source index in its ``source``
    field and starts its history at ``|S|``.
    """
    source_list = sorted(set(int(s) for s in sources))
    if not source_list:
        raise ValueError("at least one source is required")
    n = process.num_nodes
    for source in source_list:
        if not 0 <= source < n:
            raise ValueError(f"source {source} out of range for {n} nodes")
    if max_steps is None:
        max_steps = _default_max_steps(n)
    if max_steps < 0:
        raise ValueError(f"max_steps must be non-negative, got {max_steps}")
    if reset:
        process.reset(rng)

    informed: set[int] = set(source_list)
    history = [len(informed)]
    if len(informed) == n:
        return FloodingResult(source_list[0], n, tuple(history), 0)

    flooding_time_value: Optional[int] = None
    for t in range(max_steps):
        informed |= process.neighbors_of_set(informed)
        history.append(len(informed))
        process.step()
        if len(informed) == n:
            flooding_time_value = t + 1
            break
    return FloodingResult(source_list[0], n, tuple(history), flooding_time_value)


def flood_sources_set(
    process: DynamicGraph,
    sources: Sequence[int],
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    reset: bool = True,
) -> list[Optional[int]]:
    """Set-based reference for :func:`repro.engine.kernel.flood_sources_batch`.

    Floods from every source in ``sources`` over *one shared realization* of
    the dynamic graph, advancing one Python informed-set per source, and
    returns the per-source flooding times in input order (``None`` for floods
    that hit the step cap).  Exactly the same estimator as the batch kernels,
    at set-based-loop speed — the cross-backend parity baseline.
    """
    source_list = [int(s) for s in sources]
    if not source_list:
        raise ValueError("at least one source is required")
    n = process.num_nodes
    for source in source_list:
        if not 0 <= source < n:
            raise ValueError(f"sources out of range for {n} nodes")
    if max_steps is None:
        max_steps = _default_max_steps(n)
    if max_steps < 0:
        raise ValueError(f"max_steps must be non-negative, got {max_steps}")
    if reset:
        process.reset(rng)

    batch = len(source_list)
    if n == 1:
        return [0] * batch

    informed_sets: list[set[int]] = [{source} for source in source_list]
    times: list[Optional[int]] = [None] * batch
    for t in range(max_steps):
        for index in range(batch):
            if times[index] is None:
                informed_sets[index] |= process.neighbors_of_set(informed_sets[index])
        process.step()
        for index in range(batch):
            if times[index] is None and len(informed_sets[index]) == n:
                times[index] = t + 1
        if all(time is not None for time in times):
            break
    return times


def batch_source_flooding_times(
    process: DynamicGraph,
    sources: object = "all",
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    backend: str = "auto",
    chunk_size: Optional[int] = None,
) -> list[int]:
    """Flooding time from every source of a batch over one shared realization.

    ``sources`` is ``"all"`` (every node — the exhaustive per-realization
    worst-case estimator), an integer ``k`` (that many distinct sources
    sampled uniformly from ``rng``), or an explicit sequence of node indices.
    The whole batch is flooded in one vectorized pass (dense or sparse
    according to ``backend``); raises if any source hits the step cap.
    ``chunk_size`` bounds the sources advanced per pass: the realization is
    recorded once and replayed for later chunks (identical results, memory
    capped at an ``n x chunk_size`` informed matrix).
    """
    # Imported here: repro.engine builds on this module (no import cycle).
    from repro.engine import flood_sources_batch, resolve_backend

    generator = ensure_rng(rng)
    n = process.num_nodes
    if isinstance(sources, str):
        if sources != "all":
            raise ValueError(f"sources must be 'all', a count or a sequence, got {sources!r}")
        source_list = list(range(n))
    elif isinstance(sources, (int, np.integer)):
        if sources < 1:
            raise ValueError(f"the source sample size must be >= 1, got {sources}")
        if sources > n:
            raise ValueError(
                f"the source sample size ({sources}) exceeds the model's {n} nodes"
            )
        chosen = generator.choice(n, size=int(sources), replace=False)
        source_list = [int(s) for s in chosen]
    else:
        source_list = [int(s) for s in sources]
    resolved = resolve_backend(backend, process)
    if resolved == "set":
        times = flood_sources_set(
            process, source_list, rng=generator, max_steps=max_steps
        )
    else:
        times = flood_sources_batch(
            process,
            source_list,
            rng=generator,
            max_steps=max_steps,
            backend="sparse" if resolved == "sparse" else "dense",
            chunk_size=chunk_size,
        )
    unfinished = sum(1 for time in times if time is None)
    if unfinished:
        raise RuntimeError(
            f"flooding did not complete within the step limit for "
            f"{unfinished}/{len(times)} sources"
        )
    return [int(time) for time in times]


def batched_flooding_time_samples(
    process: DynamicGraph,
    num_trials: int,
    sources: object = "all",
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    workers: int = 1,
    backend: str = "auto",
    engine=None,
) -> list[int]:
    """Worst-case-over-sources flooding times of ``num_trials`` realizations.

    Each trial draws an independent realization, floods a whole source batch
    over it in one vectorized pass, and records the *largest* flooding time
    of the batch — the batched estimator of ``F(G) = max_s F(G, s)``.
    ``sources`` is ``"all"``, an integer ``k`` (distinct sources re-sampled
    per trial from the trial's own seed stream) or an explicit sequence.

    Execution routes through :class:`repro.engine.Engine` exactly like
    :func:`flooding_time_samples`, so worker pools, kernel selection and the
    persistent result store all apply; samples are bit-identical at any
    worker count.
    """
    if num_trials < 1:
        raise ValueError(f"num_trials must be >= 1, got {num_trials}")
    # Imported here: repro.engine builds on this module (no import cycle).
    from repro.engine import Engine, TrialSpec

    if engine is None:
        engine = Engine(workers=workers, backend=backend)
    if isinstance(sources, (int, np.integer)):
        spec_sources, spec_num_sources = None, int(sources)
    else:
        spec_sources, spec_num_sources = sources, None
    spec = TrialSpec.from_model(
        process,
        num_trials=num_trials,
        sources=spec_sources,
        num_sources=spec_num_sources,
        max_steps=max_steps,
        seed=rng,
    )
    return list(engine.run(spec).flooding_times)


def flooding_time(
    process: DynamicGraph,
    source: int = 0,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
) -> int:
    """Flooding time of a single trial; raises if the cap is hit first."""
    result = flood(process, source=source, rng=rng, max_steps=max_steps)
    if result.flooding_time is None:
        raise RuntimeError(
            f"flooding did not complete within the step limit "
            f"({result.final_informed}/{result.num_nodes} nodes informed)"
        )
    return result.flooding_time


def flooding_time_samples(
    process: DynamicGraph,
    num_trials: int,
    source: int = 0,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    workers: int = 1,
    backend: str = "auto",
    engine=None,
) -> list[int]:
    """Flooding times of ``num_trials`` independent trials (same source).

    Each trial resets the process with an independent ``SeedSequence`` child
    derived from ``rng``, so the whole experiment is reproducible from one
    seed — and bit-identical at any ``workers`` count, since the execution is
    routed through :class:`repro.engine.Engine`.

    Parameters
    ----------
    workers:
        Worker processes to fan the trials out to (1 = in-process).
    backend:
        Flooding kernel: ``"auto"`` (vectorized when the model exposes a fast
        adjacency matrix), ``"set"`` or ``"vectorized"``.
    engine:
        An existing :class:`repro.engine.Engine` (e.g. one with a result
        store attached); overrides ``workers`` and ``backend``.
    """
    if num_trials < 1:
        raise ValueError(f"num_trials must be >= 1, got {num_trials}")
    # Imported here: repro.engine builds on this module (no import cycle).
    from repro.engine import Engine, TrialSpec

    if engine is None:
        engine = Engine(workers=workers, backend=backend)
    spec = TrialSpec.from_model(
        process, num_trials=num_trials, source=source, max_steps=max_steps, seed=rng
    )
    return list(engine.run(spec).flooding_times)


def worst_case_flooding_time(
    process: DynamicGraph,
    sources: Optional[Sequence[int]] = None,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
) -> int:
    """Estimate ``F(G) = max_s F(G, s)`` by flooding from several sources.

    By default every node is tried once; pass ``sources`` to restrict to a
    subset (e.g. a random sample) for large graphs.
    """
    n = process.num_nodes
    if sources is None:
        sources = range(n)
    sources = list(sources)
    if not sources:
        raise ValueError("at least one source is required")
    generators = spawn_rngs(rng, len(sources))
    worst = 0
    for source, generator in zip(sources, generators):
        worst = max(
            worst,
            flooding_time(process, source=source, rng=generator, max_steps=max_steps),
        )
    return worst


def informed_fraction_curve(
    process: DynamicGraph,
    num_trials: int,
    source: int = 0,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
) -> np.ndarray:
    """Average fraction of informed nodes as a function of time.

    Runs ``num_trials`` floods and averages the (right-padded) informed-count
    trajectories; useful for plotting the two phases (spreading up to ``n/2``,
    then saturation) that the proof of Theorem 1 distinguishes.
    """
    if num_trials < 1:
        raise ValueError(f"num_trials must be >= 1, got {num_trials}")
    generators = spawn_rngs(rng, num_trials)
    histories = []
    for generator in generators:
        result = flood(process, source=source, rng=generator, max_steps=max_steps)
        histories.append(result.informed_history)
    longest = max(len(h) for h in histories)
    n = process.num_nodes
    padded = np.zeros((len(histories), longest))
    for row, history in enumerate(histories):
        padded[row, : len(history)] = history
        padded[row, len(history) :] = history[-1]
    return padded.mean(axis=0) / n
