"""Meeting and hitting times of random walks — the comparator of [15].

Dimitriou, Nikoletseas and Spirakis [15] bound the flooding ("infection")
time of random-walk mobility on a general graph by ``O(T* log n)`` where
``T*`` is the meeting time of two independent random walks.  The paper argues
its Corollary 6 improves on this for graphs (such as k-augmented grids) where
the single-walk mixing time is much smaller than the meeting time.

This module computes the comparator quantities:

* exact expected hitting times of a single (lazy) random walk, by solving the
  standard linear system;
* Monte-Carlo estimates of the meeting time of two independent walks (exact
  computation would require the product chain, quadratic in ``|V|``);
* the resulting [15]-style bound ``T* log n``.
"""

from __future__ import annotations

from typing import Hashable, Optional

import networkx as nx
import numpy as np

from repro.util.mathutils import logn_factor
from repro.util.rng import RNGLike, spawn_rngs


def hitting_time_matrix(graph: nx.Graph) -> tuple[np.ndarray, list[Hashable]]:
    """Exact expected hitting times ``H[i, j]`` of a simple random walk.

    ``H[i, j]`` is the expected number of steps for a walk started at node
    ``i`` to first reach node ``j``.  Computed column by column from the
    linear system ``h = 1 + P_{-j} h`` restricted to the non-target states.

    Returns the matrix together with the node ordering used for its indices.
    """
    nodes = list(graph.nodes())
    k = len(nodes)
    if k == 0:
        raise ValueError("the graph has no nodes")
    if k > 1 and not nx.is_connected(graph):
        raise ValueError("hitting times are infinite on a disconnected graph")
    index = {node: i for i, node in enumerate(nodes)}
    transition = np.zeros((k, k))
    for node in nodes:
        neighbors = list(graph.neighbors(node))
        if not neighbors:
            transition[index[node], index[node]] = 1.0
            continue
        share = 1.0 / len(neighbors)
        for neighbor in neighbors:
            transition[index[node], index[neighbor]] += share
    hitting = np.zeros((k, k))
    identity = np.eye(k - 1) if k > 1 else np.zeros((0, 0))
    for target in range(k):
        keep = [i for i in range(k) if i != target]
        if not keep:
            continue
        sub = transition[np.ix_(keep, keep)]
        rhs = np.ones(len(keep))
        solution = np.linalg.solve(identity - sub, rhs)
        for row, i in enumerate(keep):
            hitting[i, target] = solution[row]
    return hitting, nodes


def max_hitting_time(graph: nx.Graph) -> float:
    """Maximum expected hitting time over all ordered node pairs."""
    hitting, _nodes = hitting_time_matrix(graph)
    return float(hitting.max())


def expected_meeting_time(
    graph: nx.Graph,
    num_trials: int = 200,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    worst_case_starts: bool = False,
) -> float:
    """Monte-Carlo estimate of the meeting time of two independent random walks.

    Both walks move simultaneously, one uniform-neighbour step each per time
    step; the meeting time is the first step at which they occupy the same
    node.  To avoid the parity trap of bipartite graphs (two walks on a grid
    can never meet if they start on cells of different colour), the walks are
    lazy with holding probability 1/2 — the standard convention, which changes
    the meeting time only by a constant factor.

    Parameters
    ----------
    graph:
        The mobility graph.
    num_trials:
        Number of independent simulations to average.
    rng:
        Seed or generator.
    max_steps:
        Per-trial step cap (default ``64 |V|^2``); hitting it raises.
    worst_case_starts:
        When true, both walks start from the diametrically opposite pair
        (approximating the worst case); when false (default), starts are
        independent and degree-stationary.
    """
    if num_trials < 1:
        raise ValueError(f"num_trials must be >= 1, got {num_trials}")
    nodes = list(graph.nodes())
    k = len(nodes)
    if k < 2:
        raise ValueError("the graph needs at least two nodes")
    if not nx.is_connected(graph):
        raise ValueError("meeting times are infinite on a disconnected graph")
    if max_steps is None:
        max_steps = 64 * k * k
    index = {node: i for i, node in enumerate(nodes)}
    neighbors = [[index[v] for v in graph.neighbors(node)] for node in nodes]
    degrees = np.array([len(nbrs) for nbrs in neighbors], dtype=float)
    stationary = degrees / degrees.sum()

    if worst_case_starts:
        eccentric_pair = _most_distant_pair(graph)
        start_a, start_b = index[eccentric_pair[0]], index[eccentric_pair[1]]

    times = []
    for generator in spawn_rngs(rng, num_trials):
        if worst_case_starts:
            a, b = start_a, start_b
        else:
            a = int(generator.choice(k, p=stationary))
            b = int(generator.choice(k, p=stationary))
        steps = 0
        while a != b:
            if steps >= max_steps:
                raise RuntimeError(
                    f"the two walks did not meet within {max_steps} steps"
                )
            if generator.random() >= 0.5:
                a = neighbors[a][generator.integers(len(neighbors[a]))]
            if generator.random() >= 0.5:
                b = neighbors[b][generator.integers(len(neighbors[b]))]
            steps += 1
        times.append(steps)
    return float(np.mean(times))


def meeting_time_bound(meeting_time: float, n: int) -> float:
    """The [15] flooding bound ``T* log n`` (implicit constant set to 1)."""
    if meeting_time < 0:
        raise ValueError(f"meeting_time must be >= 0, got {meeting_time}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return meeting_time * logn_factor(n, 1)


def _most_distant_pair(graph: nx.Graph) -> tuple[Hashable, Hashable]:
    """A pair of nodes realising the graph diameter (ties broken arbitrarily)."""
    best_pair = None
    best_distance = -1
    for source, lengths in nx.all_pairs_shortest_path_length(graph):
        for target, distance in lengths.items():
            if distance > best_distance:
                best_distance = distance
                best_pair = (source, target)
    assert best_pair is not None
    return best_pair
