"""Prior-work comparators and trivial lower bounds.

The paper compares its bounds against two earlier results:

* the almost-tight flooding bound ``O(log n / log(1 + n p))`` for the classic
  edge-MEG of Clementi et al. [10] (Appendix A), and
* the meeting-time based bound ``O(T* log n)`` of Dimitriou, Nikoletseas and
  Spirakis [15] for random-walk mobility on general graphs, which Corollary 6
  improves on k-augmented grids.

It also repeatedly invokes trivial lower bounds (``Omega(D)`` for graph
models, ``Omega(L / v)`` for geometric ones).  All of these are implemented
here so the experiments can reproduce both sides of every comparison.
"""

from repro.baselines.edge_meg_bound import classic_edge_meg_prior_bound
from repro.baselines.lower_bounds import (
    diameter_lower_bound,
    geometric_lower_bound,
    sparse_waypoint_lower_bound,
)
from repro.baselines.meeting_time import (
    expected_meeting_time,
    hitting_time_matrix,
    meeting_time_bound,
)

__all__ = [
    "classic_edge_meg_prior_bound",
    "diameter_lower_bound",
    "expected_meeting_time",
    "geometric_lower_bound",
    "hitting_time_matrix",
    "meeting_time_bound",
    "sparse_waypoint_lower_bound",
]
