"""Trivial flooding-time lower bounds used throughout the paper.

* graph mobility models: information needs at least ``Omega(D)`` steps to
  cross a mobility graph of hop diameter ``D``;
* geometric models: with transmission radius ``r`` and speed ``v``,
  information travels at most ``r + v`` distance per step, so crossing a
  square of side ``L`` needs ``Omega(L / (r + v))`` steps — the paper quotes
  the ``Omega(L / v)`` form for the constant-radius regime;
* sparse random waypoint (``L ~ sqrt(n)``, ``r = Theta(1)``): the lower bound
  becomes ``Omega(sqrt(n) / v_max)``, which the upper bound matches up to a
  ``log^3 n`` factor.
"""

from __future__ import annotations

import math

from repro.util.validation import require_positive


def diameter_lower_bound(diameter: int) -> float:
    """``Omega(D)`` for graph mobility models (constant set to 1)."""
    if diameter < 0:
        raise ValueError(f"diameter must be >= 0, got {diameter}")
    return float(diameter)


def geometric_lower_bound(side: float, radius: float, speed: float) -> float:
    """``L / (r + v)`` — steps needed to cross the square at maximum progress."""
    require_positive(side, "side")
    require_positive(radius, "radius", strict=False)
    require_positive(speed, "speed")
    return side / (radius + speed)


def sparse_waypoint_lower_bound(n: int, v_max: float) -> float:
    """``sqrt(n) / v_max`` — the trivial lower bound in the sparse regime."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    require_positive(v_max, "v_max")
    return math.sqrt(n) / v_max
