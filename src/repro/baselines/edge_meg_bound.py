"""The prior (almost tight) flooding bound for the classic edge-MEG.

Clementi, Macci, Monti, Pasquale and Silvestri [10] proved that flooding on
the classic edge-MEG with birth rate ``p`` and death rate ``q`` completes in
``O(log n / log(1 + n p))`` steps w.h.p. (Eq. 2 in the paper's Appendix A).
The paper compares its own, more general bound against this one and notes the
general bound is almost tight whenever ``q ≳ n p``.  Both sides of the
comparison are implemented: this module provides the prior bound and the
tightness-region predicate.
"""

from __future__ import annotations

import math

from repro.util.mathutils import logn_factor
from repro.util.validation import require_probability


def classic_edge_meg_prior_bound(n: int, p: float) -> float:
    """The [10] bound ``log n / log(1 + n p)`` (implicit constant set to 1)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    require_probability(p, "p")
    if p == 0.0:
        return float("inf")
    return logn_factor(n, 1) / math.log2(1.0 + n * p)


def general_bound_is_tight(n: int, p: float, q: float) -> bool:
    """Whether the paper's general bound is almost tight for these parameters.

    Appendix A concludes the general bound matches the [10] bound (up to
    polylog factors) whenever ``q >= n p``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    require_probability(p, "p")
    require_probability(q, "q")
    return q >= n * p


def bound_comparison(n: int, p: float, q: float) -> dict:
    """Both bounds and their ratio for one ``(n, p, q)`` configuration.

    Returns a dict with the prior bound of [10], the paper's general bound
    (via :func:`repro.core.bounds.classic_edge_meg_bound`), their ratio and
    the tightness predicate — one row of the Appendix-A comparison table.
    """
    from repro.core.bounds import classic_edge_meg_bound

    prior = classic_edge_meg_prior_bound(n, p)
    general = classic_edge_meg_bound(n, p, q)
    ratio = general / prior if prior > 0 and math.isfinite(prior) else float("inf")
    return {
        "n": n,
        "p": p,
        "q": q,
        "prior_bound": prior,
        "general_bound": general,
        "ratio": ratio,
        "tight_region": general_bound_is_tight(n, p, q),
    }
