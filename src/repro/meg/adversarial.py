"""Non-random dynamic graphs: explicit schedules and a T-interval adversary.

The paper's related-work section contrasts its probabilistic setting with the
worst-case model of Kuhn, Lynch and Oshman [21], where an adversary picks the
snapshot sequence subject to *T-interval connectivity* (every window of ``T``
consecutive snapshots shares a connected spanning subgraph).  These classes
provide deterministic dynamic graphs for tests and for side-by-side
comparisons with the Markovian models:

* :class:`ExplicitScheduleGraph` replays (and optionally cycles) a given list
  of snapshots;
* :class:`RotatingSpanningTreeGraph` is a simple 1-interval-connected
  adversary that rotates through a family of spanning stars, which is known
  to slow flooding down to ``Theta(n)`` in the worst case.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import networkx as nx

from repro.meg.base import DynamicGraph
from repro.util.rng import RNGLike
from repro.util.validation import require_node_count


class ExplicitScheduleGraph(DynamicGraph):
    """A dynamic graph that replays an explicit sequence of snapshots.

    Parameters
    ----------
    snapshots:
        A sequence of :class:`networkx.Graph` objects, all on nodes
        ``0..n-1``.
    cycle:
        When true (default) the schedule repeats after the last snapshot;
        when false the last snapshot persists forever.
    """

    def __init__(self, snapshots: Sequence[nx.Graph], cycle: bool = True) -> None:
        if not snapshots:
            raise ValueError("at least one snapshot is required")
        num_nodes = snapshots[0].number_of_nodes()
        require_node_count(num_nodes)
        self._edge_lists: list[tuple[tuple[int, int], ...]] = []
        for index, graph in enumerate(snapshots):
            if sorted(graph.nodes()) != list(range(num_nodes)):
                raise ValueError(
                    f"snapshot {index} is not labelled 0..{num_nodes - 1}"
                )
            self._edge_lists.append(
                tuple((min(a, b), max(a, b)) for a, b in graph.edges() if a != b)
            )
        self._num_nodes = num_nodes
        self._cycle = cycle
        self._time = 0

    def _schedule_index(self) -> int:
        if self._cycle:
            return self._time % len(self._edge_lists)
        return min(self._time, len(self._edge_lists) - 1)

    def reset(self, rng: RNGLike = None) -> None:
        del rng  # deterministic process
        self._time = 0

    def step(self) -> None:
        self._time += 1

    def current_edges(self) -> Iterator[tuple[int, int]]:
        return iter(self._edge_lists[self._schedule_index()])


class RotatingSpanningTreeGraph(DynamicGraph):
    """A deterministic 1-interval-connected adversary.

    At time ``t`` the snapshot is a star centred at node ``t mod n``.  Every
    snapshot is connected (so the process is 1-interval connected), yet the
    topology changes completely at every step.  Flooding from source ``s``
    informs exactly one new node (the current centre) per step until the
    centre index reaches ``s``, at which point every node is informed — so the
    flooding time is exactly ``min(s + 1, n - 1)``, a deterministic
    ``Theta(n)`` worst case that illustrates how adversarial schedules can be
    much slower than stationary random processes of the same density.
    """

    def __init__(self, num_nodes: int) -> None:
        self._num_nodes = require_node_count(num_nodes)
        if num_nodes < 2:
            raise ValueError("the rotating star needs at least 2 nodes")
        self._time = 0

    def reset(self, rng: RNGLike = None) -> None:
        del rng  # deterministic process
        self._time = 0

    def step(self) -> None:
        self._time += 1

    def current_edges(self) -> Iterator[tuple[int, int]]:
        center = self._time % self._num_nodes
        for node in range(self._num_nodes):
            if node != center:
                yield (min(center, node), max(center, node))

    def neighbors_of_set(self, nodes) -> set[int]:
        if not nodes:
            return set()
        center = self._time % self._num_nodes
        if center in nodes:
            return set(range(self._num_nodes)) - {center}
        return {center}
