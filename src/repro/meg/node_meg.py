"""Node-Markovian evolving graphs ``NM(n, M, C)`` (paper, Section 4).

Every node runs an independent copy of a finite Markov chain ``M = (S, P)``;
a symmetric connection map ``C : S x S -> {0, 1}`` decides, from the two
current states alone, whether an edge is present.  Node-MEGs capture every
mobility model in which nodes act independently over a discrete space: the
state can encode position, destination, speed, trajectory phase, and so on.

The class also computes the two stationary quantities of Fact 2 exactly:

* ``P_NM`` — the probability that two fixed nodes are connected when both
  states are stationary;
* ``P_NM2`` — the probability that two fixed nodes are *both* connected to a
  third fixed node;

and the ratio ``eta = P_NM2 / P_NM**2`` that Theorem 3 consumes.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from repro.markov.chain import MarkovChain
from repro.meg.base import DynamicGraph, edges_from_adjacency_matrix
from repro.util.rng import RNGLike, ensure_rng
from repro.util.validation import require_node_count

ConnectionLike = Callable[[object, object], bool] | Sequence[Sequence[int]] | np.ndarray


def _connection_matrix(chain: MarkovChain, connection: ConnectionLike) -> np.ndarray:
    """Normalise a connection map into a symmetric boolean matrix over state indices."""
    k = chain.num_states
    if callable(connection):
        matrix = np.zeros((k, k), dtype=bool)
        states = chain.states
        for i in range(k):
            for j in range(i, k):
                value = bool(connection(states[i], states[j]))
                matrix[i, j] = value
                matrix[j, i] = value
        return matrix
    matrix = np.asarray(connection, dtype=bool)
    if matrix.shape != (k, k):
        raise ValueError(
            f"connection matrix must have shape ({k}, {k}), got {matrix.shape}"
        )
    if not np.array_equal(matrix, matrix.T):
        raise ValueError("the connection map C must be symmetric")
    return matrix.copy()


class NodeMEG(DynamicGraph):
    """A node-Markovian evolving graph ``NM(n, M, C)``.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``.
    chain:
        The per-node Markov chain ``M``.
    connection:
        Either a symmetric callable ``C(state_u, state_v) -> bool`` over state
        labels or a symmetric boolean matrix indexed by state indices.
    initial_distribution:
        Optional per-node initial distribution over states (defaults to the
        stationary distribution of ``chain`` — a stationary node-MEG).
    include_self_state_loops:
        Node-MEG edges connect *distinct* nodes only; this flag is unused for
        self-edges but kept for API clarity (self edges never exist).
    """

    def __init__(
        self,
        num_nodes: int,
        chain: MarkovChain,
        connection: ConnectionLike,
        initial_distribution: Optional[Sequence[float]] = None,
    ) -> None:
        self._num_nodes = require_node_count(num_nodes)
        self._chain = chain
        self._connection = _connection_matrix(chain, connection)
        if not self._connection.any():
            raise ValueError(
                "the connection map is identically 0; the graph would always be empty"
            )
        if initial_distribution is None:
            self._initial_distribution = chain.stationary_distribution()
        else:
            dist = np.asarray(initial_distribution, dtype=float)
            if dist.shape != (chain.num_states,):
                raise ValueError(
                    f"initial distribution must have length {chain.num_states}"
                )
            if np.any(dist < 0) or not np.isclose(dist.sum(), 1.0, atol=1e-8):
                raise ValueError("initial distribution must be a probability vector")
            self._initial_distribution = dist
        self._cumulative = np.cumsum(chain.transition_matrix, axis=1)
        self._states: Optional[np.ndarray] = None
        self._rng: Optional[np.random.Generator] = None
        self._adjacency_cache: Optional[np.ndarray] = None
        self._time = 0

    # ------------------------------------------------------------------ #
    # model-level quantities (Fact 2 / Theorem 3 inputs)
    # ------------------------------------------------------------------ #
    @property
    def chain(self) -> MarkovChain:
        """The per-node hidden Markov chain."""
        return self._chain

    def connection_matrix(self) -> np.ndarray:
        """Copy of the symmetric boolean connection matrix over state indices."""
        return self._connection.copy()

    def state_connection_probability(self) -> np.ndarray:
        """``q(x) = sum_y pi(y) C(x, y)`` for every state ``x``.

        ``q(x)`` is the probability that a fixed node in state ``x`` is
        connected to another fixed node whose state is stationary.
        """
        pi = self._chain.stationary_distribution()
        return self._connection.astype(float) @ pi

    def edge_probability(self) -> float:
        """``P_NM`` — stationary probability that two fixed nodes are connected."""
        pi = self._chain.stationary_distribution()
        q = self.state_connection_probability()
        return float(pi @ q)

    def shared_neighbor_probability(self) -> float:
        """``P_NM2`` — probability two fixed nodes are both connected to a third."""
        pi = self._chain.stationary_distribution()
        q = self.state_connection_probability()
        return float(pi @ (q**2))

    def eta(self) -> float:
        """The pairwise-correlation parameter ``eta = P_NM2 / P_NM**2``.

        Theorem 3 requires ``P_NM2 <= eta * P_NM**2`` for some ``eta >= 1``;
        this returns the smallest such ``eta`` (never below 1 by Jensen's
        inequality, up to numerical noise).
        """
        p_nm = self.edge_probability()
        if p_nm <= 0:
            raise ValueError("the stationary edge probability P_NM is zero")
        return self.shared_neighbor_probability() / p_nm**2

    # ------------------------------------------------------------------ #
    # process
    # ------------------------------------------------------------------ #
    def reset(self, rng: RNGLike = None) -> None:
        self._rng = ensure_rng(rng)
        self._time = 0
        self._states = self._rng.choice(
            self._chain.num_states, size=self._num_nodes, p=self._initial_distribution
        )
        self._adjacency_cache = None

    def step(self) -> None:
        if self._states is None or self._rng is None:
            raise RuntimeError("call reset() before step()")
        u = self._rng.random(self._num_nodes)
        rows = self._cumulative[self._states]
        nxt = (rows < u[:, None]).sum(axis=1)
        self._states = np.minimum(nxt, self._chain.num_states - 1)
        self._adjacency_cache = None
        self._time += 1

    def node_states(self) -> np.ndarray:
        """Current state index of every node."""
        if self._states is None:
            raise RuntimeError("call reset() before querying node states")
        return self._states.copy()

    def node_state_labels(self) -> list:
        """Current state label of every node."""
        states = self.node_states()
        labels = self._chain.states
        return [labels[i] for i in states]

    def _adjacency(self) -> np.ndarray:
        if self._states is None:
            raise RuntimeError("call reset() before querying the snapshot")
        if self._adjacency_cache is None:
            adjacency = self._connection[np.ix_(self._states, self._states)].copy()
            np.fill_diagonal(adjacency, False)
            self._adjacency_cache = adjacency
        return self._adjacency_cache

    def adjacency_matrix(self) -> np.ndarray:
        """Dense boolean adjacency of the current snapshot (cached per step).

        A node-MEG snapshot is the connection matrix gathered at the current
        node states, so the whole matrix is one fancy-indexing operation; the
        override lets ``backend="auto"`` route node-MEG flooding through the
        vectorized kernel.  The returned array is the per-step cache — treat
        it as read-only.
        """
        return self._adjacency()

    def current_edges(self) -> Iterator[tuple[int, int]]:
        return iter(edges_from_adjacency_matrix(self._adjacency()))

    def neighbors_of_set(self, nodes) -> set[int]:
        if not nodes:
            return set()
        adjacency = self._adjacency()
        node_array = np.fromiter(nodes, dtype=int)
        reached_mask = adjacency[node_array].any(axis=0)
        return set(np.nonzero(reached_mask)[0].tolist())

    def reach_mask(self, informed: np.ndarray) -> np.ndarray:
        """State-level flooding update, ``O(n + k * |informed states|)``.

        Node-MEG edges depend only on the endpoint states, so a node is
        reached exactly when its state connects to the state of some informed
        node — the update never needs the ``n x n`` adjacency.  (Members of
        ``informed`` may appear in the result; flooding unions them anyway,
        so the n-level self-edge exclusion is immaterial.)
        """
        if self._states is None:
            raise RuntimeError("call reset() before querying the snapshot")
        informed = np.asarray(informed, dtype=bool)
        connected_states = self._connection[:, self._states[informed]].any(axis=1)
        return connected_states[self._states]

    def reach_mask_batch(self, informed: np.ndarray) -> np.ndarray:
        """State-level batched update over an ``n x B`` informed matrix.

        Column for column the same booleans as :meth:`reach_mask`: for every
        column the set of *states* occupied by its informed nodes is
        scattered into a ``k x B`` occupancy table, connected states are
        found against the connection matrix, and the result is gathered back
        at the node states — ``O(nB + k^2 B)`` instead of the dense kernel's
        ``O(n^2 B)``.
        """
        if self._states is None:
            raise RuntimeError("call reset() before querying the snapshot")
        informed = np.asarray(informed, dtype=bool)
        k = self._chain.num_states
        occupied = np.zeros((k, informed.shape[1]), dtype=bool)
        nodes, columns = np.nonzero(informed)
        occupied[self._states[nodes], columns] = True
        connected = (self._connection[:, :, None] & occupied[None, :, :]).any(axis=1)
        return connected[self._states, :]

    def trial_batch(self, count: int) -> "_NodeMEGTrialBatch":
        """Fast batched-trial runner (see :mod:`repro.engine.batch`)."""
        return _NodeMEGTrialBatch(self, count)

    def edge_count(self) -> int:
        adjacency = self._adjacency()
        return int(np.triu(adjacency, k=1).sum())


class _NodeMEGTrialBatch:
    """Advances ``B`` independent node-MEG realizations in lock-step.

    Exactness relies on two mirrored draws, both pinned by regression tests
    in the engine test suite:

    * the stationary reset ``rng.choice(k, size=n, p=pi)`` equals
      ``cdf.searchsorted(rng.random(n), side="right")`` with ``cdf`` the
      renormalised cumulative of ``pi`` — NumPy's own implementation of the
      cumulative-inversion draw;
    * ``rng.random((w, n))`` consumes the PCG64 stream exactly as ``w``
      sequential ``rng.random(n)`` calls, so each trial pre-draws a window of
      ``w`` step rounds in one generator call.  Trials finishing mid-window
      over-draw their (private, discarded) generator; the unused values are
      never observable.

    Each step round then mirrors :meth:`NodeMEG.step` for all active trials
    at once: ``(cumulative[states] < u[..., None]).sum(axis=-1)`` clipped to
    ``k - 1``.
    """

    _WINDOW_ROUNDS = 8

    def __init__(self, model: NodeMEG, count: int) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self._num_nodes = model.num_nodes
        self._num_states = model.chain.num_states
        self._connection = model._connection
        self._cumulative = model._cumulative
        cdf = np.cumsum(model._initial_distribution)
        cdf /= cdf[-1]
        self._initial_cdf = cdf
        self._count = count
        self._rngs: Optional[list[np.random.Generator]] = None
        self._states: Optional[np.ndarray] = None
        self._window: Optional[np.ndarray] = None

    def reset(self, rngs: Sequence[np.random.Generator]) -> None:
        if len(rngs) != self._count:
            raise ValueError(f"expected {self._count} generators, got {len(rngs)}")
        uniforms = np.empty((self._count, self._num_nodes))
        for trial, rng in enumerate(rngs):
            rng.random(out=uniforms[trial])
        self._states = self._initial_cdf.searchsorted(uniforms, side="right")
        np.minimum(self._states, self._num_states - 1, out=self._states)
        self._rngs = list(rngs)
        self._window = np.empty((self._count, self._WINDOW_ROUNDS, self._num_nodes))

    def reach(self, informed: np.ndarray, sub: np.ndarray) -> np.ndarray:
        assert self._states is not None
        states = self._states[sub]
        occupied = np.zeros((sub.size, self._num_states), dtype=bool)
        rows, nodes = np.nonzero(informed[sub])
        occupied[rows, states[rows, nodes]] = True
        connected = (occupied[:, None, :] & self._connection[None, :, :]).any(axis=2)
        return np.take_along_axis(connected, states, axis=1)

    def step(self, sub: np.ndarray, round_index: int) -> None:
        assert self._states is not None and self._window is not None
        assert self._rngs is not None
        offset = round_index % self._WINDOW_ROUNDS
        if offset == 0:
            for trial in sub:
                self._rngs[trial].random(out=self._window[trial])
        uniforms = self._window[sub, offset]
        states = self._states[sub]
        advanced = (self._cumulative[states] < uniforms[:, :, None]).sum(axis=2)
        self._states[sub] = np.minimum(advanced, self._num_states - 1)
