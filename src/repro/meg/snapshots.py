"""Snapshot statistics of dynamic graphs.

The paper stresses that its bound applies to processes whose individual
snapshots are sparse and highly disconnected ("there could be a large subset
of all nodes that are isolated").  These helpers quantify exactly that:
average density, fraction of isolated nodes, size of the largest connected
component, and so on, aggregated over a window of snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import networkx as nx
import numpy as np

from repro.meg.base import DynamicGraph
from repro.util.rng import RNGLike


@dataclass(frozen=True)
class SnapshotStats:
    """Aggregated statistics over a window of consecutive snapshots."""

    num_nodes: int
    num_snapshots: int
    mean_edges: float
    mean_degree: float
    mean_isolated_fraction: float
    mean_largest_component_fraction: float
    connected_fraction: float
    empirical_edge_probability: float

    def as_dict(self) -> dict:
        """Plain-dict view (used by the experiment reports)."""
        return {
            "num_nodes": self.num_nodes,
            "num_snapshots": self.num_snapshots,
            "mean_edges": self.mean_edges,
            "mean_degree": self.mean_degree,
            "mean_isolated_fraction": self.mean_isolated_fraction,
            "mean_largest_component_fraction": self.mean_largest_component_fraction,
            "connected_fraction": self.connected_fraction,
            "empirical_edge_probability": self.empirical_edge_probability,
        }


def snapshot_statistics(
    process: DynamicGraph,
    num_snapshots: int,
    rng: RNGLike = None,
    burn_in: int = 0,
    reset: bool = True,
) -> SnapshotStats:
    """Run ``process`` and aggregate statistics over ``num_snapshots`` snapshots.

    Parameters
    ----------
    process:
        Any dynamic graph.
    num_snapshots:
        Number of consecutive snapshots to aggregate.
    rng:
        Seed / generator passed to ``process.reset`` when ``reset`` is true.
    burn_in:
        Number of initial steps to discard (useful when the process is not
        started from stationarity).
    reset:
        Whether to reset the process first; pass ``False`` to continue an
        existing run.
    """
    if num_snapshots < 1:
        raise ValueError(f"num_snapshots must be >= 1, got {num_snapshots}")
    if burn_in < 0:
        raise ValueError(f"burn_in must be >= 0, got {burn_in}")
    if reset:
        process.reset(rng)
    for _ in range(burn_in):
        process.step()

    n = process.num_nodes
    max_edges = n * (n - 1) / 2 if n > 1 else 1.0
    edge_counts = []
    isolated_fractions = []
    largest_component_fractions = []
    connected_count = 0
    for index in range(num_snapshots):
        graph = process.snapshot()
        edges = graph.number_of_edges()
        edge_counts.append(edges)
        degrees = np.array([d for _, d in graph.degree()])
        isolated_fractions.append(float((degrees == 0).mean()) if n else 0.0)
        if n > 0:
            components = list(nx.connected_components(graph))
            largest = max(len(c) for c in components)
            largest_component_fractions.append(largest / n)
            if len(components) == 1:
                connected_count += 1
        if index + 1 < num_snapshots:
            process.step()

    mean_edges = float(np.mean(edge_counts))
    return SnapshotStats(
        num_nodes=n,
        num_snapshots=num_snapshots,
        mean_edges=mean_edges,
        mean_degree=float(2.0 * mean_edges / n) if n else 0.0,
        mean_isolated_fraction=float(np.mean(isolated_fractions)),
        mean_largest_component_fraction=float(np.mean(largest_component_fractions)),
        connected_fraction=connected_count / num_snapshots,
        empirical_edge_probability=float(mean_edges / max_edges),
    )


def is_t_interval_connected(snapshots: list[nx.Graph], interval: int) -> bool:
    """Whether a snapshot sequence is T-interval connected (Kuhn–Lynch–Oshman [21]).

    The worst-case dynamic-network model the paper contrasts itself with
    requires that, for every window of ``interval`` consecutive snapshots,
    the *intersection* of their edge sets contains a connected spanning
    subgraph.  This checker evaluates that property on an explicit list of
    snapshots (all on the same node set).
    """
    if interval < 1:
        raise ValueError(f"interval must be >= 1, got {interval}")
    if len(snapshots) < interval:
        raise ValueError(
            f"need at least {interval} snapshots to check {interval}-interval connectivity"
        )
    nodes = list(snapshots[0].nodes())
    for graph in snapshots:
        if list(graph.nodes()) != nodes:
            raise ValueError("all snapshots must share the same node set")
    for start in range(len(snapshots) - interval + 1):
        window = snapshots[start : start + interval]
        intersection = nx.Graph()
        intersection.add_nodes_from(nodes)
        common = set(
            (min(a, b), max(a, b)) for a, b in window[0].edges()
        )
        for graph in window[1:]:
            common &= {(min(a, b), max(a, b)) for a, b in graph.edges()}
        intersection.add_edges_from(common)
        if len(nodes) > 1 and not nx.is_connected(intersection):
            return False
    return True


def largest_stable_interval(
    process: DynamicGraph,
    num_snapshots: int,
    rng: RNGLike = None,
    max_interval: Optional[int] = None,
) -> int:
    """Largest ``T`` for which an observed run is T-interval connected.

    Runs the process for ``num_snapshots`` steps and returns the largest
    ``T <= max_interval`` such that every window of ``T`` consecutive observed
    snapshots shares a connected spanning subgraph; returns 0 when even single
    snapshots are disconnected (the typical situation for the paper's sparse
    MEGs, which is exactly why the worst-case model of [21] does not apply to
    them).
    """
    if num_snapshots < 1:
        raise ValueError(f"num_snapshots must be >= 1, got {num_snapshots}")
    if max_interval is None:
        max_interval = num_snapshots
    if max_interval < 1:
        raise ValueError(f"max_interval must be >= 1, got {max_interval}")
    process.reset(rng)
    snapshots = []
    for index in range(num_snapshots):
        snapshots.append(process.snapshot())
        if index + 1 < num_snapshots:
            process.step()
    best = 0
    for interval in range(1, min(max_interval, num_snapshots) + 1):
        if is_t_interval_connected(snapshots, interval):
            best = interval
        else:
            break
    return best


def empirical_edge_probability(
    process: DynamicGraph,
    edge: tuple[int, int],
    num_snapshots: int,
    rng: RNGLike = None,
    spacing: int = 1,
) -> float:
    """Empirical frequency with which a specific edge appears.

    ``spacing`` decorrelates consecutive observations by stepping the process
    several times between samples (use roughly the mixing time).
    """
    if num_snapshots < 1:
        raise ValueError(f"num_snapshots must be >= 1, got {num_snapshots}")
    if spacing < 1:
        raise ValueError(f"spacing must be >= 1, got {spacing}")
    i, j = edge
    process.reset(rng)
    hits = 0
    for index in range(num_snapshots):
        if process.has_edge(i, j):
            hits += 1
        if index + 1 < num_snapshots:
            for _ in range(spacing):
                process.step()
    return hits / num_snapshots
