"""Markovian evolving graphs (MEGs).

A dynamic graph ``G([n], {E_t})`` is Markovian when the distribution of the
snapshot at time ``t`` depends only on the snapshot at time ``t - 1``.  This
sub-package provides the simulation interface shared by every dynamic-graph
model in the library (:class:`repro.meg.base.DynamicGraph`) and the concrete
link-based models studied in the paper:

* :class:`repro.meg.edge_meg.EdgeMEG` — the classic edge-MEG of [10], one
  independent two-state (birth/death) chain per edge;
* :class:`repro.meg.edge_meg.GeneralEdgeMEG` — the paper's Appendix-A
  generalisation, one arbitrary hidden chain per edge plus an on/off map;
* :class:`repro.meg.node_meg.NodeMEG` — node-MEGs ``NM(n, M, C)``, one
  independent chain per node plus a symmetric connection map (Section 4);
* baselines: i.i.d. Erdős–Rényi snapshot sequences, explicit (worst-case)
  schedules and a rotating T-interval-connected adversary.
"""

from repro.meg.adversarial import ExplicitScheduleGraph, RotatingSpanningTreeGraph
from repro.meg.base import DynamicGraph, StaticGraphProcess
from repro.meg.edge_meg import EdgeMEG, GeneralEdgeMEG, four_state_edge_meg
from repro.meg.erdos_renyi import ErdosRenyiSequence
from repro.meg.node_meg import NodeMEG
from repro.meg.snapshots import (
    SnapshotStats,
    is_t_interval_connected,
    largest_stable_interval,
    snapshot_statistics,
)

__all__ = [
    "DynamicGraph",
    "EdgeMEG",
    "ErdosRenyiSequence",
    "ExplicitScheduleGraph",
    "GeneralEdgeMEG",
    "NodeMEG",
    "RotatingSpanningTreeGraph",
    "SnapshotStats",
    "StaticGraphProcess",
    "four_state_edge_meg",
    "is_t_interval_connected",
    "largest_stable_interval",
    "snapshot_statistics",
]
