"""Edge-Markovian evolving graphs.

Two models are provided:

* :class:`EdgeMEG` — the classic model of [10] (the paper's Appendix A recap):
  every potential edge evolves independently according to a two-state chain
  with birth rate ``p`` (off -> on) and death rate ``q`` (on -> off).  Its
  stationary edge probability is ``p / (p + q)`` and the chain's mixing time
  is ``Theta(1 / (p + q))``.

* :class:`GeneralEdgeMEG` — the paper's generalisation: every edge follows an
  independent copy of an *arbitrary* hidden Markov chain ``M = (S, P)`` and a
  map ``chi : S -> {0, 1}`` decides whether the edge is present.  Because
  edges are independent, the β-independence condition of Theorem 1 holds with
  ``β = 1`` and the flooding bound becomes
  ``O(T_mix (1/(n α) + 1)^2 log^2 n)`` with ``α`` the stationary probability
  that ``chi`` is 1.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from repro.markov.chain import MarkovChain
from repro.meg.base import DynamicGraph, all_pairs
from repro.util.rng import RNGLike, ensure_rng
from repro.util.validation import require_node_count, require_probability


class EdgeMEG(DynamicGraph):
    """The classic edge-MEG: independent birth/death dynamics on every edge.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``.
    p:
        Edge birth rate (probability that a missing edge appears).
    q:
        Edge death rate (probability that an existing edge disappears).
    initial_edge_probability:
        Probability that each edge exists at time 0.  ``None`` (default)
        starts the process from its stationary distribution ``p / (p + q)``,
        i.e. a stationary MEG; ``0.0`` starts from the empty graph.
    """

    def __init__(
        self,
        num_nodes: int,
        p: float,
        q: float,
        initial_edge_probability: Optional[float] = None,
    ) -> None:
        self._num_nodes = require_node_count(num_nodes)
        require_probability(p, "p")
        require_probability(q, "q")
        if p == 0.0 and q == 0.0:
            raise ValueError("p and q cannot both be zero (edges would be frozen)")
        self._p = p
        self._q = q
        if initial_edge_probability is not None:
            require_probability(initial_edge_probability, "initial_edge_probability")
        self._initial_edge_probability = initial_edge_probability
        self._pairs = np.array(all_pairs(num_nodes), dtype=int).reshape(-1, 2)
        self._states: Optional[np.ndarray] = None
        self._rng: Optional[np.random.Generator] = None
        self._time = 0

    # ------------------------------------------------------------------ #
    # parameters
    # ------------------------------------------------------------------ #
    @property
    def p(self) -> float:
        """Edge birth rate."""
        return self._p

    @property
    def q(self) -> float:
        """Edge death rate."""
        return self._q

    def stationary_edge_probability(self) -> float:
        """Stationary probability ``p / (p + q)`` that any fixed edge exists."""
        return self._p / (self._p + self._q)

    def edge_chain(self) -> MarkovChain:
        """The per-edge two-state chain (states ``'off'``, ``'on'``)."""
        from repro.markov.builders import two_state_chain

        return two_state_chain(self._p, self._q)

    # ------------------------------------------------------------------ #
    # process
    # ------------------------------------------------------------------ #
    def reset(self, rng: RNGLike = None) -> None:
        self._rng = ensure_rng(rng)
        self._time = 0
        if self._initial_edge_probability is None:
            probability = self.stationary_edge_probability()
        else:
            probability = self._initial_edge_probability
        count = self._pairs.shape[0]
        self._states = self._rng.random(count) < probability

    def step(self) -> None:
        if self._states is None or self._rng is None:
            raise RuntimeError("call reset() before step()")
        u = self._rng.random(self._states.shape[0])
        on = self._states
        # on edges die with probability q, off edges are born with probability p
        next_states = np.where(on, u >= self._q, u < self._p)
        self._states = next_states
        self._time += 1

    def current_edges(self) -> Iterator[tuple[int, int]]:
        if self._states is None:
            raise RuntimeError("call reset() before querying the snapshot")
        for index in np.nonzero(self._states)[0]:
            i, j = self._pairs[index]
            yield int(i), int(j)

    def neighbors_of_set(self, nodes) -> set[int]:
        if self._states is None:
            raise RuntimeError("call reset() before querying the snapshot")
        if not nodes:
            return set()
        active = self._pairs[self._states]
        if active.size == 0:
            return set()
        node_array = np.fromiter(nodes, dtype=int)
        mask_i = np.isin(active[:, 0], node_array)
        mask_j = np.isin(active[:, 1], node_array)
        reached = set(active[mask_i, 1].tolist()) | set(active[mask_j, 0].tolist())
        return reached

    def edge_count(self) -> int:
        if self._states is None:
            raise RuntimeError("call reset() before querying the snapshot")
        return int(self._states.sum())

    def adjacency_matrix(self) -> np.ndarray:
        if self._states is None:
            raise RuntimeError("call reset() before querying the snapshot")
        matrix = np.zeros((self._num_nodes, self._num_nodes), dtype=bool)
        active = self._pairs[self._states]
        matrix[active[:, 0], active[:, 1]] = True
        matrix[active[:, 1], active[:, 0]] = True
        return matrix

    def _cache_params(self) -> dict:
        return {
            "p": self._p,
            "q": self._q,
            "initial_edge_probability": self._initial_edge_probability,
        }


def four_state_edge_meg(
    num_nodes: int,
    p_up: float,
    p_down: float,
    p_stabilize: float,
    p_destabilize: float,
) -> "GeneralEdgeMEG":
    """The four-state refined edge-MEG of [5], as a generalised edge-MEG.

    Every edge follows the four-state chain built by
    :func:`repro.markov.builders.four_state_edge_chain` (stable/volatile x
    up/down) and is present exactly in the two ``on`` states.  The classic
    two-state model cannot express the resulting heavy-tailed up/down
    durations, but the paper's Appendix-A analysis applies unchanged because
    edges are still independent (``beta = 1``).
    """
    from repro.markov.builders import four_state_edge_chain

    chain = four_state_edge_chain(p_up, p_down, p_stabilize, p_destabilize)
    chi = [0, 0, 1, 1]  # aligned with ('off-stable', 'off-volatile', 'on-volatile', 'on-stable')
    return GeneralEdgeMEG(num_nodes, chain, chi=chi)


class GeneralEdgeMEG(DynamicGraph):
    """Generalised edge-MEG ``EM(n, M, chi)`` (paper, Appendix A).

    Every unordered pair of nodes carries an independent copy of the hidden
    chain ``M``; the edge is present exactly when ``chi`` maps the current
    hidden state to 1.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``.
    chain:
        The hidden edge chain ``M = (S, P)``.
    chi:
        Either a callable mapping a state label to a truthy/falsy value, or a
        sequence of 0/1 flags aligned with ``chain.states``.
    initial_distribution:
        Optional initial distribution over hidden states (defaults to the
        stationary distribution of ``chain``, i.e. a stationary MEG).
    """

    def __init__(
        self,
        num_nodes: int,
        chain: MarkovChain,
        chi: Callable[[object], bool] | Sequence[int],
        initial_distribution: Optional[Sequence[float]] = None,
    ) -> None:
        self._num_nodes = require_node_count(num_nodes)
        self._chain = chain
        if callable(chi):
            flags = np.array([bool(chi(state)) for state in chain.states], dtype=bool)
        else:
            flags = np.asarray([bool(v) for v in chi], dtype=bool)
            if flags.shape != (chain.num_states,):
                raise ValueError(
                    f"chi must provide one flag per state ({chain.num_states}), "
                    f"got {flags.shape[0]}"
                )
        if not flags.any():
            raise ValueError("chi maps every state to 0; the graph would always be empty")
        self._chi_flags = flags
        if initial_distribution is None:
            self._initial_distribution = chain.stationary_distribution()
        else:
            dist = np.asarray(initial_distribution, dtype=float)
            if dist.shape != (chain.num_states,):
                raise ValueError(
                    f"initial distribution must have length {chain.num_states}"
                )
            if np.any(dist < 0) or not np.isclose(dist.sum(), 1.0, atol=1e-8):
                raise ValueError("initial distribution must be a probability vector")
            self._initial_distribution = dist
        self._pairs = np.array(all_pairs(num_nodes), dtype=int).reshape(-1, 2)
        self._cumulative = np.cumsum(chain.transition_matrix, axis=1)
        self._states: Optional[np.ndarray] = None
        self._rng: Optional[np.random.Generator] = None
        self._time = 0

    @property
    def chain(self) -> MarkovChain:
        """The hidden per-edge chain."""
        return self._chain

    def stationary_edge_probability(self) -> float:
        """Stationary probability ``alpha`` that ``chi`` of the hidden state is 1."""
        pi = self._chain.stationary_distribution()
        return float(pi[self._chi_flags].sum())

    def chi_flags(self) -> np.ndarray:
        """Copy of the per-state on/off flags."""
        return self._chi_flags.copy()

    def reset(self, rng: RNGLike = None) -> None:
        self._rng = ensure_rng(rng)
        self._time = 0
        count = self._pairs.shape[0]
        self._states = self._rng.choice(
            self._chain.num_states, size=count, p=self._initial_distribution
        )

    def step(self) -> None:
        if self._states is None or self._rng is None:
            raise RuntimeError("call reset() before step()")
        u = self._rng.random(self._states.shape[0])
        rows = self._cumulative[self._states]
        nxt = (rows < u[:, None]).sum(axis=1)
        self._states = np.minimum(nxt, self._chain.num_states - 1)
        self._time += 1

    def _active_mask(self) -> np.ndarray:
        if self._states is None:
            raise RuntimeError("call reset() before querying the snapshot")
        return self._chi_flags[self._states]

    def current_edges(self) -> Iterator[tuple[int, int]]:
        mask = self._active_mask()
        for index in np.nonzero(mask)[0]:
            i, j = self._pairs[index]
            yield int(i), int(j)

    def neighbors_of_set(self, nodes) -> set[int]:
        mask = self._active_mask()
        if not nodes or not mask.any():
            return set()
        active = self._pairs[mask]
        node_array = np.fromiter(nodes, dtype=int)
        mask_i = np.isin(active[:, 0], node_array)
        mask_j = np.isin(active[:, 1], node_array)
        return set(active[mask_i, 1].tolist()) | set(active[mask_j, 0].tolist())

    def edge_count(self) -> int:
        return int(self._active_mask().sum())

    def adjacency_matrix(self) -> np.ndarray:
        mask = self._active_mask()
        matrix = np.zeros((self._num_nodes, self._num_nodes), dtype=bool)
        active = self._pairs[mask]
        matrix[active[:, 0], active[:, 1]] = True
        matrix[active[:, 1], active[:, 0]] = True
        return matrix

    def _cache_params(self) -> dict:
        return {
            "transition_matrix": self._chain.transition_matrix.tolist(),
            "chi": self._chi_flags.astype(int).tolist(),
            "initial_distribution": np.asarray(self._initial_distribution).tolist(),
        }
