"""The dynamic-graph simulation interface.

Every model in the library — edge-MEGs, node-MEGs, mobility models — exposes
the same minimal interface so that the flooding/gossip simulators and the
stationarity estimators in :mod:`repro.core` work uniformly:

* ``num_nodes`` — the number of nodes ``n`` (nodes are always ``0..n-1``);
* ``reset(rng)`` — draw the initial snapshot ``G_0`` (stationary models start
  from their stationary distribution, matching the paper's "stationary MEG"
  setting) and fix the randomness of the run;
* ``step()`` — advance the process by one time step;
* ``current_edges()`` — the edge set of the current snapshot;
* ``neighbors_of_set(nodes)`` — all nodes adjacent to a given set in the
  current snapshot (the only query flooding needs; models may override it
  with something faster than scanning every edge).
"""

from __future__ import annotations

import abc
import hashlib
import pickle
from typing import Iterator, Optional, Set

import networkx as nx
import numpy as np
import scipy.sparse

from repro.util.rng import RNGLike


class DynamicGraph(abc.ABC):
    """Abstract base class of all dynamic-graph processes.

    Subclasses must set ``self._num_nodes`` (or override :attr:`num_nodes`)
    and implement :meth:`reset`, :meth:`step` and :meth:`current_edges`.
    """

    _num_nodes: int
    _time: int = 0

    # ------------------------------------------------------------------ #
    # core interface
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes of the dynamic graph."""
        return self._num_nodes

    @property
    def time(self) -> int:
        """Index ``t`` of the current snapshot (0 right after :meth:`reset`)."""
        return self._time

    @abc.abstractmethod
    def reset(self, rng: RNGLike = None) -> None:
        """(Re-)initialise the process, drawing the snapshot at time 0."""

    @abc.abstractmethod
    def step(self) -> None:
        """Advance the process by one time step (produce the next snapshot)."""

    @abc.abstractmethod
    def current_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over the edges ``(i, j)`` (i < j) of the current snapshot."""

    # ------------------------------------------------------------------ #
    # derived helpers (overridable for efficiency)
    # ------------------------------------------------------------------ #
    def neighbors_of_set(self, nodes: Set[int]) -> set[int]:
        """All nodes adjacent, in the current snapshot, to some node in ``nodes``.

        The returned set may include members of ``nodes`` itself; flooding
        callers union it with the informed set anyway.
        """
        reached: set[int] = set()
        for i, j in self.current_edges():
            if i in nodes:
                reached.add(j)
            if j in nodes:
                reached.add(i)
        return reached

    def adjacency_matrix(self) -> np.ndarray:
        """Dense boolean adjacency matrix of the current snapshot.

        The vectorized flooding kernel of :mod:`repro.engine` uses this to
        advance whole informed-vectors with NumPy instead of per-edge Python
        loops.  The generic implementation scatters :meth:`current_edges`;
        models that already hold their snapshot as arrays should override it
        (the engine only auto-selects the vectorized kernel for models that
        do).
        """
        matrix = np.zeros((self.num_nodes, self.num_nodes), dtype=bool)
        for i, j in self.current_edges():
            matrix[i, j] = True
            matrix[j, i] = True
        return matrix

    def reach_mask(self, informed: np.ndarray) -> np.ndarray:
        """Mask of nodes adjacent, in the current snapshot, to an informed node.

        The boolean-mask form of :meth:`neighbors_of_set`, consumed by the
        vectorized flooding kernel.  The result may include members of
        ``informed`` itself; flooding callers union it with the informed mask
        anyway.  The default reduces the adjacency rows of the informed
        nodes; models whose edges are induced by per-node state (node-MEGs,
        the graph mobility models) override it with a state-level update that
        never materialises the ``n x n`` matrix.
        """
        return self.adjacency_matrix()[np.asarray(informed, dtype=bool)].any(axis=0)

    def packed_adjacency(self) -> np.ndarray:
        """Bit-packed adjacency of the current snapshot (``uint64`` words).

        Row ``i`` holds the ``n`` adjacency bits of node ``i`` packed
        little-endian into ``ceil(n/64)`` words, the form consumed by the
        bitset flooding kernel of :mod:`repro.engine.bitset`.  The generic
        implementation packs :meth:`adjacency_matrix` on the fly, which costs
        about one dense reach per call; models whose snapshot is fixed or
        incrementally maintained should override it with a cached bit-matrix
        (the engine only auto-selects the bitset kernel for models that do).
        Callers must treat the returned array as read-only.
        """
        from repro.engine.bitset import pack_bool_matrix

        return pack_bool_matrix(self.adjacency_matrix())

    def packed_reach_mask(self, informed: np.ndarray) -> np.ndarray:
        """Packed mask of nodes adjacent to an informed node (``uint64`` words).

        The bit-packed form of :meth:`reach_mask`: a word-wise OR over the
        packed adjacency rows of the informed nodes.  ``informed`` is the
        *boolean* informed vector; the result is packed.  As with
        :meth:`reach_mask`, the result may include informed nodes themselves.
        """
        packed = self.packed_adjacency()
        return np.bitwise_or.reduce(packed[np.asarray(informed, dtype=bool)], axis=0)

    def reach_mask_batch(self, informed: np.ndarray) -> np.ndarray:
        """Column-wise :meth:`reach_mask` over an ``n x B`` informed matrix.

        Column ``b`` of the result is ``reach_mask(informed[:, b])`` — the
        one-round update of ``B`` floods sharing this snapshot.  The generic
        implementation multiplies the dense adjacency (the batched kernel in
        :mod:`repro.engine.kernel` hoists its own scratch buffers instead of
        calling this); the state-induced families override it with a
        state-level update that never touches the ``n x n`` matrix.
        """
        informed = np.asarray(informed, dtype=bool)
        accumulator = np.float32 if self.num_nodes < 2**24 else np.intp
        matrix = self.adjacency_matrix().astype(accumulator)
        return (matrix @ informed.astype(accumulator)) != 0

    def trial_batch(self, count: int):
        """Optional batched-trial runner for ``count`` independent trials.

        :func:`repro.engine.batch.flood_trials_batch` floods many seeds of
        one model family in a single tensor pass when the model provides a
        runner here — an object advancing all ``count`` realizations at once
        while consuming each trial's random stream exactly as ``count``
        sequential resets/steps would (so the batched results are
        bit-identical to per-trial runs).  The default returns ``None``:
        families without a runner are batched generically (one model copy per
        trial), which is correct but no faster than per-trial execution.
        """
        del count
        return None

    def sparse_adjacency(self) -> scipy.sparse.csr_matrix:
        """CSR adjacency of the current snapshot (nonzero entry = edge).

        The sparse flooding kernel of :mod:`repro.engine` advances informed
        vectors with a sparse matvec, which beats the dense kernel on large,
        sparse snapshots (cost ``O(m)`` per step instead of ``O(n^2)``).  The
        generic implementation compresses the model's fast dense adjacency
        when one is available, falling back to scattering
        :meth:`current_edges`; models that can enumerate their edges as
        arrays (for example the geometric models through their k-d tree)
        should override it to skip the dense detour too.  Callers must treat
        the returned matrix as read-only.
        """
        n = self.num_nodes
        if type(self).adjacency_matrix is not DynamicGraph.adjacency_matrix:
            return scipy.sparse.csr_matrix(self.adjacency_matrix(), dtype=np.intp)
        edges = [pair for pair in self.current_edges()]
        if not edges:
            return scipy.sparse.csr_matrix((n, n), dtype=np.intp)
        pairs = np.asarray(edges, dtype=np.intp)
        return sparse_adjacency_from_pairs(n, pairs)

    def cache_token(self) -> dict:
        """Stable description of the model used to key cached results.

        The :class:`repro.engine.ResultStore` hashes this token (together
        with the trial parameters and seed) to decide whether a batch of
        trials has already been computed.  The default token digests the
        pickled model, which is collision-safe but changes whenever the
        model's internal state does; models with a small parameter set
        should override :meth:`_cache_params` with their constructor
        arguments to get stable, state-independent keys.
        """
        token = {
            "class": f"{type(self).__module__}.{type(self).__qualname__}",
            "num_nodes": self.num_nodes,
        }
        token.update(self._cache_params())
        return token

    def _cache_params(self) -> dict:
        try:
            payload = pickle.dumps(self)
        except Exception:  # unpicklable models never share a cache entry
            return {"unpicklable_id": id(self)}
        return {"state_digest": hashlib.sha256(payload).hexdigest()}

    def snapshot(self) -> nx.Graph:
        """The current snapshot as a :class:`networkx.Graph` on ``0..n-1``."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_nodes))
        graph.add_edges_from(self.current_edges())
        return graph

    def has_edge(self, i: int, j: int) -> bool:
        """Whether the current snapshot contains the edge ``{i, j}``."""
        self._validate_node(i)
        self._validate_node(j)
        if i == j:
            return False
        target = (min(i, j), max(i, j))
        return any((min(a, b), max(a, b)) == target for a, b in self.current_edges())

    def degree(self, node: int) -> int:
        """Degree of ``node`` in the current snapshot."""
        self._validate_node(node)
        return sum(1 for a, b in self.current_edges() if a == node or b == node)

    def edge_count(self) -> int:
        """Number of edges in the current snapshot."""
        return sum(1 for _ in self.current_edges())

    def run(self, steps: int) -> None:
        """Advance the process by ``steps`` time steps."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        for _ in range(steps):
            self.step()

    def _validate_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(
                f"node {node} out of range for a graph on {self.num_nodes} nodes"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(num_nodes={self.num_nodes})"


class StaticGraphProcess(DynamicGraph):
    """A dynamic graph whose snapshot never changes.

    Useful as a degenerate baseline (flooding then completes in exactly the
    eccentricity of the source) and in unit tests of the flooding machinery.
    """

    def __init__(self, graph: nx.Graph) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("the static graph must have at least one node")
        nodes = sorted(graph.nodes())
        if nodes != list(range(len(nodes))):
            raise ValueError("the static graph must be labelled 0..n-1")
        self._num_nodes = graph.number_of_nodes()
        self._edges = tuple(
            (min(a, b), max(a, b)) for a, b in graph.edges() if a != b
        )
        self._adjacency: dict[int, set[int]] = {i: set() for i in range(self._num_nodes)}
        for a, b in self._edges:
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
        self._packed_cache: Optional[np.ndarray] = None
        self._time = 0

    def reset(self, rng: RNGLike = None) -> None:
        del rng  # the process is deterministic
        self._time = 0

    def step(self) -> None:
        self._time += 1

    def current_edges(self) -> Iterator[tuple[int, int]]:
        return iter(self._edges)

    def neighbors_of_set(self, nodes: Set[int]) -> set[int]:
        reached: set[int] = set()
        for node in nodes:
            reached |= self._adjacency[node]
        return reached

    def packed_adjacency(self) -> np.ndarray:
        """Bit-packed adjacency, packed once and cached (the snapshot is fixed)."""
        if self._packed_cache is None:
            self._packed_cache = super().packed_adjacency()
        return self._packed_cache


def edges_from_adjacency_matrix(matrix: np.ndarray) -> list[tuple[int, int]]:
    """Upper-triangle edge list of a boolean adjacency matrix (helper for models)."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"adjacency matrix must be square, got shape {matrix.shape}")
    rows, cols = np.nonzero(np.triu(matrix, k=1))
    return list(zip(rows.tolist(), cols.tolist()))


def dense_adjacency_from_pairs(num_nodes: int, pairs: np.ndarray) -> np.ndarray:
    """Symmetric dense boolean adjacency from an ``(m, 2)`` edge array."""
    matrix = np.zeros((num_nodes, num_nodes), dtype=bool)
    pairs = np.asarray(pairs)
    if pairs.size:
        matrix[pairs[:, 0], pairs[:, 1]] = True
        matrix[pairs[:, 1], pairs[:, 0]] = True
    return matrix


def sparse_adjacency_from_pairs(
    num_nodes: int, pairs: np.ndarray
) -> scipy.sparse.csr_matrix:
    """Symmetric CSR adjacency from an ``(m, 2)`` array of undirected edges.

    The data dtype is ``intp`` so the sparse kernels can accumulate informed
    counts without the wrap-around a narrow integer dtype would risk.
    """
    pairs = np.asarray(pairs, dtype=np.intp)
    if pairs.size == 0:
        return scipy.sparse.csr_matrix((num_nodes, num_nodes), dtype=np.intp)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must have shape (m, 2), got {pairs.shape}")
    rows = np.concatenate([pairs[:, 0], pairs[:, 1]])
    cols = np.concatenate([pairs[:, 1], pairs[:, 0]])
    data = np.ones(rows.size, dtype=np.intp)
    return scipy.sparse.csr_matrix(
        (data, (rows, cols)), shape=(num_nodes, num_nodes)
    )


def all_pairs(num_nodes: int) -> list[tuple[int, int]]:
    """All unordered node pairs ``(i, j)`` with ``i < j``."""
    if num_nodes < 0:
        raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
    return [(i, j) for i in range(num_nodes) for j in range(i + 1, num_nodes)]
