"""A sequence of independent Erdős–Rényi snapshots.

This is the memoryless baseline studied (for radio broadcast) in [9] and the
degenerate edge-MEG with ``p + q = 1``: every snapshot is a fresh ``G(n, p)``
independent of the past.  Its mixing time is 1, so it is the fastest-mixing
dynamic graph with a given density — a useful reference point in the
experiments.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.meg.base import DynamicGraph, all_pairs
from repro.util.rng import RNGLike, ensure_rng
from repro.util.validation import require_node_count, require_probability


class ErdosRenyiSequence(DynamicGraph):
    """Independent ``G(n, p)`` snapshots at every time step."""

    def __init__(self, num_nodes: int, p: float) -> None:
        self._num_nodes = require_node_count(num_nodes)
        self._p = require_probability(p, "p")
        self._pairs = np.array(all_pairs(num_nodes), dtype=int).reshape(-1, 2)
        self._states: Optional[np.ndarray] = None
        self._rng: Optional[np.random.Generator] = None
        self._time = 0

    @property
    def p(self) -> float:
        """Per-snapshot edge probability."""
        return self._p

    def stationary_edge_probability(self) -> float:
        """The stationary edge probability equals ``p`` (snapshots are i.i.d.)."""
        return self._p

    def _draw(self) -> None:
        assert self._rng is not None
        self._states = self._rng.random(self._pairs.shape[0]) < self._p

    def reset(self, rng: RNGLike = None) -> None:
        self._rng = ensure_rng(rng)
        self._time = 0
        self._draw()

    def step(self) -> None:
        if self._rng is None:
            raise RuntimeError("call reset() before step()")
        self._draw()
        self._time += 1

    def current_edges(self) -> Iterator[tuple[int, int]]:
        if self._states is None:
            raise RuntimeError("call reset() before querying the snapshot")
        for index in np.nonzero(self._states)[0]:
            i, j = self._pairs[index]
            yield int(i), int(j)

    def neighbors_of_set(self, nodes) -> set[int]:
        if self._states is None:
            raise RuntimeError("call reset() before querying the snapshot")
        if not nodes:
            return set()
        active = self._pairs[self._states]
        if active.size == 0:
            return set()
        node_array = np.fromiter(nodes, dtype=int)
        mask_i = np.isin(active[:, 0], node_array)
        mask_j = np.isin(active[:, 1], node_array)
        return set(active[mask_i, 1].tolist()) | set(active[mask_j, 0].tolist())

    def edge_count(self) -> int:
        if self._states is None:
            raise RuntimeError("call reset() before querying the snapshot")
        return int(self._states.sum())
