"""Generic sweep machinery for the experiments.

Every registered experiment follows the same pattern: build a dynamic-graph
model for each point of a parameter sweep, measure its flooding time over
several independent trials, and report the summary next to the relevant bound
formula.  :func:`measure_flooding_sweep` factors out that loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.core.flooding import flooding_time_samples
from repro.meg.base import DynamicGraph
from repro.util.rng import RNGLike, spawn_rngs
from repro.util.stats import TrialSummary, summarize, whp_quantile


@dataclass(frozen=True)
class SweepMeasurement:
    """Flooding-time measurement at one sweep point."""

    parameter: object
    num_nodes: int
    summary: TrialSummary
    whp_value: float

    @property
    def mean(self) -> float:
        """Mean flooding time across the trials."""
        return self.summary.mean

    @property
    def median(self) -> float:
        """Median flooding time across the trials."""
        return self.summary.median


def measure_flooding_sweep(
    model_factory: Callable[[object], DynamicGraph],
    parameter_values: Sequence,
    num_trials: int,
    source: int = 0,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
) -> list[SweepMeasurement]:
    """Measure flooding times across a one-dimensional parameter sweep.

    Parameters
    ----------
    model_factory:
        Callable mapping a sweep-parameter value to a fresh dynamic graph.
    parameter_values:
        The sweep points.
    num_trials:
        Independent flooding trials per sweep point.
    source:
        Flooding source node.
    rng:
        Seed or generator (each sweep point gets an independent child stream).
    max_steps:
        Optional per-trial step cap forwarded to the flooding simulator.
    """
    values = list(parameter_values)
    if not values:
        raise ValueError("the sweep needs at least one parameter value")
    if num_trials < 1:
        raise ValueError(f"num_trials must be >= 1, got {num_trials}")
    measurements = []
    for value, generator in zip(values, spawn_rngs(rng, len(values))):
        model = model_factory(value)
        samples = flooding_time_samples(
            model, num_trials, source=source, rng=generator, max_steps=max_steps
        )
        measurements.append(
            SweepMeasurement(
                parameter=value,
                num_nodes=model.num_nodes,
                summary=summarize(samples),
                whp_value=whp_quantile(samples, model.num_nodes),
            )
        )
    return measurements


def ratio_spread(measured: Iterable[float], bounds: Iterable[float]) -> float:
    """Max/min ratio of ``measured[i] / bounds[i]`` across a sweep.

    A bound with the right *shape* keeps this spread small (the measured
    values track the bound up to a roughly constant factor); a bound with the
    wrong shape lets it grow with the sweep.  Returns 1.0 for single-point
    sweeps.
    """
    ratios = []
    for m, b in zip(measured, bounds):
        if b <= 0:
            raise ValueError("bound values must be positive")
        ratios.append(m / b)
    if not ratios:
        raise ValueError("need at least one measurement")
    return max(ratios) / min(ratios)
