"""Generic sweep machinery for the experiments.

Every registered experiment follows the same pattern: build a dynamic-graph
model for each point of a parameter sweep, measure its flooding time over
several independent trials, and report the summary next to the relevant bound
formula.  :func:`measure_flooding_sweep` factors out that loop and routes all
trial execution through the :class:`repro.engine.Engine`, so sweeps pick up
worker pools, the vectorized kernel and persistent result caching for free.
Sweep points may carry per-point trial budgets (variance-aware fleet sizing)
and a sequential :class:`~repro.stats.sequential.StoppingRule`; fixed-count
sweeps produce byte-identical output to what they produced before either
feature existed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.engine import Engine, ShardSpec, TrialSpec
from repro.meg.base import DynamicGraph
from repro.stats.sequential import StoppingRule, summary_from_sketch, whp_from_sketch
from repro.util.rng import RNGLike, spawn_seed_sequences
from repro.util.stats import TrialSummary, summarize, whp_quantile


@dataclass(frozen=True)
class SweepMeasurement:
    """Flooding-time measurement at one sweep point."""

    parameter: object
    num_nodes: int
    summary: TrialSummary
    whp_value: float
    samples: tuple[int, ...] = ()
    from_cache: bool = False
    stopped_early: bool = False

    @property
    def mean(self) -> float:
        """Mean flooding time across the trials."""
        return self.summary.mean

    @property
    def median(self) -> float:
        """Median flooding time across the trials."""
        return self.summary.median

    def as_dict(self) -> dict:
        """Plain-dict form (what the CLI's ``--json`` output emits).

        ``stopped_early`` is emitted only when true, so fixed-count sweeps
        keep the exact JSON shape they had before adaptive sampling existed.
        """
        payload = {
            "parameter": self.parameter,
            "num_nodes": self.num_nodes,
            "summary": self.summary.as_dict(),
            "whp_value": self.whp_value,
            "samples": list(self.samples),
            "from_cache": self.from_cache,
        }
        if self.stopped_early:
            payload["stopped_early"] = True
        return payload


def sweep_trial_specs(
    model_factory: Callable[[object], DynamicGraph],
    parameter_values: Sequence,
    num_trials: Union[int, Sequence[int]],
    source: int = 0,
    sources: Optional[object] = None,
    num_sources: Optional[int] = None,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    factory_kwargs: Optional[dict] = None,
    stopping: Optional[StoppingRule] = None,
) -> list[TrialSpec]:
    """The :class:`TrialSpec` batch of one sweep, one spec per sweep point.

    This is the single place sweep specs are constructed: the sweep runner
    below and the fleet worker (:mod:`repro.fleet.worker`) both call it, so a
    fleet job descriptor that names the same family, points, trial count and
    seed material reproduces exactly the specs — and therefore exactly the
    per-trial ``SeedSequence`` children and store keys — of a local run.

    ``num_trials`` is one count for every point, or a per-point sequence of
    counts (how the fleet's variance-aware pilot sizes noisy points; see
    :func:`repro.fleet.coordinator.plan_variance_budgets`).  Because each
    point's trial seeds are ``SeedSequence`` children of that point's own
    child sequence, trials at one point are a *prefix-stable* stream: budget
    changes at one point never reseed any other point, and a smaller budget
    runs an exact prefix of a larger one.  ``stopping`` attaches a sequential
    stopping rule to every point (``num_trials`` then caps the budget).
    """
    values = list(parameter_values)
    if not values:
        raise ValueError("the sweep needs at least one parameter value")
    if isinstance(num_trials, int):
        per_point = [num_trials] * len(values)
    else:
        per_point = [int(count) for count in num_trials]
        if len(per_point) != len(values):
            raise ValueError(
                f"num_trials lists one count per sweep point: got {len(per_point)} "
                f"counts for {len(values)} points"
            )
    if min(per_point) < 1:
        raise ValueError(f"num_trials must be >= 1, got {min(per_point)}")
    return [
        TrialSpec(
            factory=model_factory,
            args=(value,),
            kwargs=dict(factory_kwargs) if factory_kwargs else {},
            num_trials=count,
            source=source,
            sources=sources,
            num_sources=num_sources,
            max_steps=max_steps,
            seed=seed,
            stopping=stopping,
            label=f"sweep[{value!r}]",
        )
        for value, count, seed in zip(
            values, per_point, spawn_seed_sequences(rng, len(values))
        )
    ]


def run_sweep_specs(
    specs: Sequence[TrialSpec],
    engine: Optional[Engine] = None,
    shard: Optional[tuple[int, int]] = None,
) -> list[SweepMeasurement]:
    """Execute already-built sweep specs (or one shard of each) in order.

    The execution half of :func:`measure_flooding_sweep`, split out so
    callers that compile specs elsewhere — the :mod:`repro.api` request
    facade, and the CLI routing through it — share the exact measurement
    loop (identical engine calls, identical summaries) instead of a copy.
    """
    if engine is None:
        engine = Engine()
    shard_pair = None if shard is None else (int(shard[0]), int(shard[1]))
    measurements = []
    for spec in specs:
        if shard_pair is None:
            batch = engine.run(spec)
        else:
            batch = engine.run_shard(ShardSpec(spec, *shard_pair))
        samples = list(batch.flooding_times)
        measurements.append(
            SweepMeasurement(
                parameter=spec.args[0],
                num_nodes=batch.num_nodes,
                summary=summarize(samples),
                whp_value=whp_quantile(samples, batch.num_nodes),
                samples=tuple(samples),
                from_cache=batch.from_cache,
                stopped_early=batch.stopped_early,
            )
        )
    return measurements


def measurement_from_record(spec: TrialSpec, record: dict) -> SweepMeasurement:
    """A sweep point's measurement rebuilt from its stored batch record.

    ``from_cache=True``: the samples come from a result store, not
    execution.  The fleet fan-in and the ``repro serve`` warm path both
    assemble through this, so store-backed measurements are identical to
    live ones field by field.

    Records holding full samples take the exact path (identical to a live
    run).  A record carrying only an embedded sketch — how million-trial
    aggregates travel without materializing every sample — yields a
    measurement whose summary and whp value come from the sketch (exact
    moments for integer streams, DKW-bounded quantiles; see
    :mod:`repro.stats.sequential`) with ``samples`` left empty.
    """
    num_nodes = int(record["num_nodes"])
    stopping = record.get("stopping") or {}
    stopped_early = bool(stopping.get("stopped_early", False))
    times = record.get("flooding_times")
    if not times and record.get("sketch") is not None:
        return SweepMeasurement(
            parameter=spec.args[0],
            num_nodes=num_nodes,
            summary=summary_from_sketch(record["sketch"]),
            whp_value=whp_from_sketch(record["sketch"], num_nodes),
            samples=(),
            from_cache=True,
            stopped_early=stopped_early,
        )
    samples = [int(time) for time in times]
    return SweepMeasurement(
        parameter=spec.args[0],
        num_nodes=num_nodes,
        summary=summarize(samples),
        whp_value=whp_quantile(samples, num_nodes),
        samples=tuple(samples),
        from_cache=True,
        stopped_early=stopped_early,
    )


def measure_flooding_sweep(
    model_factory: Callable[[object], DynamicGraph],
    parameter_values: Sequence,
    num_trials: Union[int, Sequence[int]],
    source: int = 0,
    sources: Optional[object] = None,
    num_sources: Optional[int] = None,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    engine: Optional[Engine] = None,
    workers: int = 1,
    backend: str = "auto",
    shard: Optional[tuple[int, int]] = None,
    factory_kwargs: Optional[dict] = None,
    stopping: Optional[StoppingRule] = None,
) -> list[SweepMeasurement]:
    """Measure flooding times across a one-dimensional parameter sweep.

    Parameters
    ----------
    model_factory:
        Callable mapping a sweep-parameter value to a fresh dynamic graph.
        Called once per sweep point; with ``workers > 1`` the *built model*
        (not the factory) must be picklable.
    parameter_values:
        The sweep points.
    num_trials:
        Independent flooding trials per sweep point.
    source:
        Flooding source node (single-source sweeps).
    sources / num_sources:
        Optional batched-source estimator (see :class:`repro.engine.TrialSpec`):
        ``sources`` is ``"all"`` or an explicit node sequence, ``num_sources``
        samples that many distinct sources per trial; each trial then records
        the worst flooding time over the batch.
    rng:
        Seed or generator (each sweep point gets an independent child
        ``SeedSequence``).
    max_steps:
        Optional per-trial step cap forwarded to the flooding simulator.
    engine:
        An existing :class:`repro.engine.Engine` (e.g. with a result store
        attached); overrides ``workers`` and ``backend``.
    workers / backend:
        Engine configuration used when no ``engine`` is passed.
    shard:
        Optional ``(index, count)`` pair: run only shard ``index`` of
        ``count`` of every sweep point — trials ``index, index+count, ...``
        with the exact seeds the unsharded sweep would give them (see
        :class:`repro.engine.ShardSpec`).  The per-point seeds themselves
        are spawned identically whatever the shard, so ``count`` sharded
        sweeps merged through :meth:`ResultStore.merge
        <repro.engine.store.ResultStore.merge>` reproduce the unsharded
        sweep's stored results bit-for-bit.  Summaries then describe the
        shard's own samples.
    factory_kwargs:
        Extra keyword arguments passed to ``model_factory`` after the sweep
        value (kept out of the sweep parameter so the factory can stay a
        plain module-level function — picklable, with a stable cache token).
    stopping:
        Optional :class:`~repro.stats.sequential.StoppingRule` applied to
        every sweep point (``num_trials`` then caps the per-point budget).
        Incompatible with ``shard`` (the stopping decision needs the full
        sample stream; the engine enforces this).
    """
    if shard is not None:
        shard_count = int(shard[1])
        min_trials = num_trials if isinstance(num_trials, int) else min(num_trials)
        if shard_count > min_trials:
            raise ValueError(
                f"shard count ({shard_count}) exceeds num_trials ({min_trials}): "
                f"some shards would be empty"
            )
    if engine is None:
        engine = Engine(workers=workers, backend=backend)
    specs = sweep_trial_specs(
        model_factory,
        parameter_values,
        num_trials,
        source=source,
        sources=sources,
        num_sources=num_sources,
        rng=rng,
        max_steps=max_steps,
        factory_kwargs=factory_kwargs,
        stopping=stopping,
    )
    return run_sweep_specs(specs, engine=engine, shard=shard)


def sweep_as_dicts(measurements: Iterable[SweepMeasurement]) -> list[dict]:
    """Machine-readable form of a sweep (one dict per point)."""
    return [measurement.as_dict() for measurement in measurements]


def ratio_spread(measured: Iterable[float], bounds: Iterable[float]) -> float:
    """Max/min ratio of ``measured[i] / bounds[i]`` across a sweep.

    A bound with the right *shape* keeps this spread small (the measured
    values track the bound up to a roughly constant factor); a bound with the
    wrong shape lets it grow with the sweep.  Returns 1.0 for single-point
    sweeps.
    """
    ratios = []
    for m, b in zip(measured, bounds):
        if b <= 0:
            raise ValueError("bound values must be positive")
        ratios.append(m / b)
    if not ratios:
        raise ValueError("need at least one measurement")
    return max(ratios) / min(ratios)
