"""The registered experiments E1-E10, declared as engine workloads.

Each experiment is described by a *plan builder* ``(scale, seed) ->
ExperimentPlan``: a batch of tagged, declarative
:class:`~repro.engine.TrialSpec` jobs (the experiment's Monte-Carlo flooding
workload) plus a pure assembly function that turns the per-job samples into
the final :class:`~repro.experiments.report.ExperimentReport`.  Execution —
serial, multi-worker, sharded across machines, or replayed from a warm
result store — is owned entirely by :mod:`repro.experiments.pipeline`; the
builders here only *describe* work.

``scale`` is ``"small"`` (seconds — the configuration the test-suite and the
benchmarks use) or ``"full"`` (minutes — larger sweeps with more trials).
Every job seed is an explicitly reconstructed ``SeedSequence`` child, chosen
to match the children the pre-pipeline registry obtained through
``spawn_rngs`` — so the assembled reports are bit-identical to the historical
direct-call numbers (pinned by ``tests/test_experiment_pipeline.py``'s
golden values).  E9 and E10 measure proof machinery rather than flooding
times; they compile to zero engine jobs and run entirely in assembly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines.edge_meg_bound import (
    classic_edge_meg_prior_bound,
    general_bound_is_tight,
)
from repro.baselines.lower_bounds import (
    diameter_lower_bound,
    geometric_lower_bound,
    sparse_waypoint_lower_bound,
)
from repro.baselines.meeting_time import expected_meeting_time, meeting_time_bound
from repro.core.bounds import (
    classic_edge_meg_bound,
    corollary5_bound,
    corollary6_bound,
    theorem1_bound,
    theorem3_bound,
    waypoint_flooding_bound,
)
from repro.core.epochs import sample_degree_into_set, sample_set_expansion, sample_spread
from repro.core.spreading import gossip_spread, si_epidemic
from repro.core.stationarity import (
    estimate_beta,
    estimate_edge_probability,
    exact_parameters,
)
from repro.engine import Engine, TrialSpec
from repro.experiments.pipeline import (
    ExperimentJob,
    ExperimentPlan,
    advanced_rng,
    execute_plan,
    experiment_seed_sequence,
)
from repro.experiments.report import ExperimentReport
from repro.graphs.grid import augmented_grid_graph, grid_graph
from repro.graphs.paths import shortest_path_family
from repro.graphs.properties import degree_regularity, diameter, path_family_regularity
from repro.markov.builders import complete_graph_walk
from repro.markov.mixing import mixing_time
from repro.meg.edge_meg import EdgeMEG
from repro.meg.node_meg import NodeMEG
from repro.mobility.geometry import SquareRegion
from repro.mobility.positional import (
    empirical_positional_distribution,
    uniformity_parameters,
    waypoint_density,
)
from repro.mobility.random_path import GraphRandomWalkMobility, RandomPathModel
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypoint
from repro.util.mathutils import loglog_slope
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.stats import summarize


@dataclass(frozen=True)
class Experiment:
    """Registry entry: metadata plus the plan builder."""

    experiment_id: str
    title: str
    paper_reference: str
    planner: Callable[[str, int], ExperimentPlan]

    @property
    def runner(self) -> Callable[[str, int], ExperimentReport]:
        """Legacy ``(scale, seed) -> ExperimentReport`` callable.

        Compiles and executes the plan on a default serial engine — the
        pre-pipeline behaviour, same numbers.
        """

        def run(scale: str = "small", seed: int = 0) -> ExperimentReport:
            return _run_legacy(self.planner, scale, seed)

        return run


def _scales(scale: str, small, full):
    if scale == "small":
        return small
    if scale == "full":
        return full
    raise ValueError(f"scale must be 'small' or 'full', got {scale!r}")


def _tags(experiment_id: str, scale: str, point: str) -> tuple[tuple[str, str], ...]:
    """Provenance tags stamped on every job spec (and its store records)."""
    return (("experiment", experiment_id), ("scale", scale), ("point", point))


# --------------------------------------------------------------------------- #
# Model factories.
#
# Module-level functions (never closures) so the compiled specs are picklable
# for worker pools and carry machine-independent cache tokens: a job's store
# key depends only on the factory's qualified name, its primitive arguments,
# the trial parameters and the seed material — identical across shard jobs,
# CI runners and local machines, which is what lets K sharded experiment runs
# share one logical store with an unsharded reference run.
# --------------------------------------------------------------------------- #
def edge_meg_model(num_nodes: int, p: float, q: float) -> EdgeMEG:
    """Classic edge-MEG with birth rate ``p`` and death rate ``q``."""
    return EdgeMEG(num_nodes, p=p, q=q)


def colocation_node_meg_model(num_nodes: int, num_states: int) -> NodeMEG:
    """Node-MEG whose agents meet when their complete-graph walks coincide."""
    chain = complete_graph_walk(num_states)
    connection = np.eye(chain.num_states, dtype=bool)
    return NodeMEG(num_nodes, chain, connection)


def waypoint_model(num_nodes: int, side: float, radius: float, speed: float) -> RandomWaypoint:
    """Random waypoint over an ``side x side`` square at a fixed speed."""
    return RandomWaypoint(num_nodes, side=side, radius=radius, v_min=speed, v_max=speed)


def grid_walk_model(num_nodes: int, grid_side: int) -> RandomWalkMobility:
    """Lazy random-walk mobility on an ``grid_side x grid_side`` grid."""
    return RandomWalkMobility(
        num_nodes, grid_side=grid_side, radius=1.0, holding_probability=0.2
    )


def grid_path_model(grid_side: int, agents_per_point: int) -> RandomPathModel:
    """Shortest-path random-path model on a grid (lazy variant).

    The grid is bipartite, so the strict one-hop-per-step model has a parity
    invariant that prevents opposite-colour agents from ever meeting (see
    RandomPathModel docs); the lazy variant breaks it.
    """
    graph = grid_graph(grid_side)
    family = shortest_path_family(graph)
    num_agents = agents_per_point * graph.number_of_nodes()
    return RandomPathModel(num_agents, family, radius_hops=0, holding_probability=0.25)


def augmented_grid_walk_model(grid_side: int, augment_k: int) -> GraphRandomWalkMobility:
    """Lazy random walks (two agents per point) on a k-augmented grid."""
    graph = augmented_grid_graph(grid_side, augment_k)
    return GraphRandomWalkMobility(
        2 * graph.number_of_nodes(), graph, radius_hops=0, holding_probability=0.5
    )


# --------------------------------------------------------------------------- #
# E1 — Theorem 1 on a controlled (M, alpha, beta)-stationary process
# --------------------------------------------------------------------------- #
def plan_theorem1(scale: str, seed: int) -> ExperimentPlan:
    """E1: flooding time vs n for a sparse edge-MEG against the Theorem-1 bound."""
    sizes, trials = _scales(scale, ([50, 100, 200], 5), ([100, 200, 400, 800], 10))
    q = 0.5
    jobs = tuple(
        ExperimentJob(
            tag=f"n={n}",
            spec=TrialSpec(
                factory=edge_meg_model,
                args=(n, 1.0 / (2.0 * n), q),
                num_trials=trials,
                seed=experiment_seed_sequence(seed, index),
                label=f"E1[n={n}]",
                tags=_tags("E1", scale, f"n={n}"),
            ),
        )
        for index, n in enumerate(sizes)
    )

    def assemble(samples) -> ExperimentReport:
        report = ExperimentReport(
            experiment_id="E1",
            title="Theorem 1 bound on a sparse stationary edge-MEG",
            paper_reference="Theorem 1 (general (M, alpha, beta)-stationary bound)",
            columns=[
                "n",
                "alpha",
                "beta",
                "epoch_length",
                "measured_mean",
                "measured_whp",
                "theorem1_bound",
                "ratio",
            ],
        )
        means = []
        bounds = []
        for n in sizes:
            model = edge_meg_model(n, 1.0 / (2.0 * n), q)
            alpha, beta = exact_parameters(model)
            epoch = max(1, mixing_time(model.edge_chain()))
            summary = summarize(samples[f"n={n}"])
            bound = theorem1_bound(n, epoch, alpha, beta)
            means.append(summary.mean)
            bounds.append(bound)
            report.add_row(
                n=n,
                alpha=alpha,
                beta=beta,
                epoch_length=epoch,
                measured_mean=summary.mean,
                measured_whp=summary.q90,
                theorem1_bound=bound,
                ratio=summary.mean / bound,
            )
        if len(sizes) >= 2:
            report.add_note(
                f"log-log slope of measured flooding time vs n: "
                f"{loglog_slope(sizes, means):.2f} (bound slope "
                f"{loglog_slope(sizes, bounds):.2f}); the bound grows at least as fast."
            )
        return report

    return ExperimentPlan("E1", scale, seed, jobs, assemble)


# --------------------------------------------------------------------------- #
# E2 — Theorem 3 on an explicit node-MEG
# --------------------------------------------------------------------------- #
def plan_node_meg(scale: str, seed: int) -> ExperimentPlan:
    """E2: flooding time of a co-location node-MEG against the Theorem-3 bound."""
    sizes, trials, num_states = _scales(
        scale, ([40, 80, 160], 5, 16), ([80, 160, 320, 640], 10, 24)
    )
    jobs = tuple(
        ExperimentJob(
            tag=f"n={n}",
            spec=TrialSpec(
                factory=colocation_node_meg_model,
                args=(n, num_states),
                num_trials=trials,
                seed=experiment_seed_sequence(seed, index),
                label=f"E2[n={n}]",
                tags=_tags("E2", scale, f"n={n}"),
            ),
        )
        for index, n in enumerate(sizes)
    )

    def assemble(samples) -> ExperimentReport:
        t_mix = mixing_time(complete_graph_walk(num_states))
        report = ExperimentReport(
            experiment_id="E2",
            title="Theorem 3 bound on a co-location node-MEG",
            paper_reference="Theorem 3 (node-MEG flooding bound)",
            columns=[
                "n",
                "P_NM",
                "eta",
                "T_mix",
                "measured_mean",
                "measured_whp",
                "theorem3_bound",
                "ratio",
            ],
        )
        for n in sizes:
            model = colocation_node_meg_model(n, num_states)
            p_nm = model.edge_probability()
            eta = model.eta()
            summary = summarize(samples[f"n={n}"])
            bound = theorem3_bound(n, max(t_mix, 1), p_nm, max(eta, 1.0))
            report.add_row(
                n=n,
                P_NM=p_nm,
                eta=eta,
                T_mix=t_mix,
                measured_mean=summary.mean,
                measured_whp=summary.q90,
                theorem3_bound=bound,
                ratio=summary.mean / bound,
            )
        report.add_note(
            "Connection map: two agents are linked when their hidden states coincide "
            "(agents hopping on a complete graph of meeting points)."
        )
        return report

    return ExperimentPlan("E2", scale, seed, jobs, assemble)


# --------------------------------------------------------------------------- #
# E3 — Random waypoint (Corollary 4 / Section 4.1)
# --------------------------------------------------------------------------- #
def plan_random_waypoint(scale: str, seed: int) -> ExperimentPlan:
    """E3: sparse-regime random waypoint vs the paper's first waypoint bound."""
    sizes, trials = _scales(scale, ([30, 60, 120], 3), ([60, 120, 240, 480], 6))
    radius = 1.0
    speed = 1.0
    jobs = tuple(
        ExperimentJob(
            tag=f"n={n}",
            spec=TrialSpec(
                factory=waypoint_model,
                args=(n, math.sqrt(n), radius, speed),
                num_trials=trials,
                seed=experiment_seed_sequence(seed, index),
                label=f"E3[n={n}]",
                tags=_tags("E3", scale, f"n={n}"),
            ),
        )
        for index, n in enumerate(sizes)
    )

    def assemble(samples) -> ExperimentReport:
        report = ExperimentReport(
            experiment_id="E3",
            title="Random waypoint in the sparse regime (L ~ sqrt(n), r = 1)",
            paper_reference="Corollary 4 + Section 4.1 waypoint bound "
            "O((L/v)(L^2/(n r^2)+1)^2 log^3 n)",
            columns=[
                "n",
                "L",
                "measured_mean",
                "measured_whp",
                "waypoint_bound",
                "lower_bound",
                "ratio_to_lower",
            ],
        )
        means = []
        for n in sizes:
            side = math.sqrt(n)
            summary = summarize(samples[f"n={n}"])
            bound = waypoint_flooding_bound(n, side, radius, speed)
            lower = max(geometric_lower_bound(side, radius, speed), 1.0)
            means.append(summary.mean)
            report.add_row(
                n=n,
                L=side,
                measured_mean=summary.mean,
                measured_whp=summary.q90,
                waypoint_bound=bound,
                lower_bound=lower,
                ratio_to_lower=summary.mean / lower,
            )
        if len(sizes) >= 2:
            report.add_note(
                f"log-log slope of flooding time vs n: {loglog_slope(sizes, means):.2f} "
                "(the sparse-regime bound predicts ~0.5 up to polylog factors)."
            )
            report.add_note(
                f"sparse-regime upper bound at the largest n: "
                f"{sparse_waypoint_lower_bound(sizes[-1], speed):.1f} * polylog(n)."
            )
        return report

    return ExperimentPlan("E3", scale, seed, jobs, assemble)


# --------------------------------------------------------------------------- #
# E4 — Random walk mobility on the grid
# --------------------------------------------------------------------------- #
def plan_random_walk(scale: str, seed: int) -> ExperimentPlan:
    """E4: random-walk mobility model on an m x m grid (sanity baseline)."""
    sizes, trials = _scales(scale, ([36, 64, 100], 3), ([64, 144, 256, 400], 6))
    radius = 1.0
    jobs = tuple(
        ExperimentJob(
            tag=f"n={n}",
            spec=TrialSpec(
                factory=grid_walk_model,
                args=(n, int(round(math.sqrt(n)))),
                num_trials=trials,
                seed=experiment_seed_sequence(seed, index),
                label=f"E4[n={n}]",
                tags=_tags("E4", scale, f"n={n}"),
            ),
        )
        for index, n in enumerate(sizes)
    )

    def assemble(samples) -> ExperimentReport:
        report = ExperimentReport(
            experiment_id="E4",
            title="Random walk mobility on the grid",
            paper_reference="Introduction / Section 4.1 (random walk model, rho = 1)",
            columns=["n", "grid_side", "measured_mean", "measured_whp", "lower_bound"],
        )
        for n in sizes:
            side = int(round(math.sqrt(n)))
            summary = summarize(samples[f"n={n}"])
            report.add_row(
                n=n,
                grid_side=side,
                measured_mean=summary.mean,
                measured_whp=summary.q90,
                lower_bound=max(1.0, geometric_lower_bound(side - 1.0, radius, 1.0)),
            )
        report.add_note(
            "Prior work gives almost tight Õ(sqrt(n)) bounds for this model; it serves "
            "as a calibration baseline for the simulator."
        )
        return report

    return ExperimentPlan("E4", scale, seed, jobs, assemble)


# --------------------------------------------------------------------------- #
# E5 — Random paths on a grid (Corollary 5)
# --------------------------------------------------------------------------- #
def plan_random_paths(scale: str, seed: int) -> ExperimentPlan:
    """E5: shortest-path random-path model on grids vs the Corollary-5 bound."""
    sides, trials, agents_per_point = _scales(
        scale, ([3, 4, 5], 3, 2), ([4, 5, 6, 7], 6, 3)
    )
    jobs = tuple(
        ExperimentJob(
            tag=f"side={side}",
            spec=TrialSpec(
                factory=grid_path_model,
                args=(side, agents_per_point),
                num_trials=trials,
                seed=experiment_seed_sequence(seed, index),
                label=f"E5[side={side}]",
                tags=_tags("E5", scale, f"side={side}"),
            ),
        )
        for index, side in enumerate(sides)
    )

    def assemble(samples) -> ExperimentReport:
        report = ExperimentReport(
            experiment_id="E5",
            title="Random paths on a grid (all-pairs shortest paths)",
            paper_reference="Corollary 5; O(D polylog n) instance discussed after it",
            columns=[
                "grid_side",
                "num_points",
                "diameter",
                "delta",
                "n",
                "measured_mean",
                "corollary5_bound",
                "diameter_lower_bound",
            ],
        )
        diameters = []
        means = []
        for side in sides:
            graph = grid_graph(side)
            family = shortest_path_family(graph)
            delta = path_family_regularity(family)
            num_points = graph.number_of_nodes()
            n = agents_per_point * num_points
            d = diameter(graph)
            summary = summarize(samples[f"side={side}"])
            bound = corollary5_bound(
                n, mixing_time=max(d, 1), num_points=num_points, delta=delta
            )
            diameters.append(d)
            means.append(summary.mean)
            report.add_row(
                grid_side=side,
                num_points=num_points,
                diameter=d,
                delta=delta,
                n=n,
                measured_mean=summary.mean,
                corollary5_bound=bound,
                diameter_lower_bound=diameter_lower_bound(d),
            )
        if len(sides) >= 2:
            report.add_note(
                f"log-log slope of flooding time vs grid diameter: "
                f"{loglog_slope(diameters, means):.2f} "
                "(Corollary 5 predicts O(D polylog n), i.e. slope ~1 in D)."
            )
        return report

    return ExperimentPlan("E5", scale, seed, jobs, assemble)


# --------------------------------------------------------------------------- #
# E6 — k-augmented grids: Corollary 6 vs the meeting-time bound of [15]
# --------------------------------------------------------------------------- #
def plan_augmented_grid(scale: str, seed: int) -> ExperimentPlan:
    """E6: random walks on k-augmented grids — our bound vs the [15] baseline."""
    (side, ks, trials, meeting_trials) = _scales(
        scale, (6, [1, 2, 3], 3, 60), (10, [1, 2, 3, 4, 5], 6, 200)
    )
    jobs = tuple(
        ExperimentJob(
            tag=f"k={k}",
            spec=TrialSpec(
                factory=augmented_grid_walk_model,
                args=(side, k),
                num_trials=trials,
                seed=experiment_seed_sequence(seed, index),
                label=f"E6[k={k}]",
                tags=_tags("E6", scale, f"k={k}"),
            ),
        )
        for index, k in enumerate(ks)
    )

    def assemble(samples) -> ExperimentReport:
        report = ExperimentReport(
            experiment_id="E6",
            title="Random walks on k-augmented grids",
            paper_reference="Corollary 6 and the comparison with [15] (meeting-time bound)",
            columns=[
                "k",
                "num_points",
                "delta",
                "T_mix",
                "measured_mean",
                "corollary6_bound",
                "meeting_time",
                "prior_bound_[15]",
            ],
        )
        measured = []
        mixing_times = []
        meeting_times = []
        for index, k in enumerate(ks):
            graph = augmented_grid_graph(side, k)
            num_points = graph.number_of_nodes()
            n = 2 * num_points
            model = GraphRandomWalkMobility(n, graph, radius_hops=0, holding_probability=0.5)
            t_mix = mixing_time(model.to_markov_chain())
            delta = degree_regularity(graph)
            summary = summarize(samples[f"k={k}"])
            # The flooding trials consumed the first `trials` children of this
            # point's seed stream; the meeting-time estimator historically
            # continued from the very next child — reproduce that offset.
            meeting = expected_meeting_time(
                graph,
                num_trials=meeting_trials,
                rng=advanced_rng(seed, (index,), trials),
            )
            measured.append(summary.mean)
            mixing_times.append(t_mix)
            meeting_times.append(meeting)
            report.add_row(
                k=k,
                num_points=num_points,
                delta=delta,
                T_mix=t_mix,
                measured_mean=summary.mean,
                corollary6_bound=corollary6_bound(n, t_mix, num_points, delta),
                meeting_time=meeting,
                **{"prior_bound_[15]": meeting_time_bound(meeting, n)},
            )
        if len(ks) >= 2:
            drop_mix = mixing_times[0] / mixing_times[-1]
            drop_meet = meeting_times[0] / max(meeting_times[-1], 1e-9)
            report.add_note(
                f"Mixing time drops by a factor {drop_mix:.1f} from k={ks[0]} to "
                f"k={ks[-1]} while the meeting time only drops by {drop_meet:.1f}; "
                "the paper's bound (driven by T_mix) therefore improves on the "
                "meeting-time bound of [15] as k grows."
            )
            report.add_note(
                f"Measured flooding time drops by a factor "
                f"{measured[0] / max(measured[-1], 1e-9):.1f} over the same range."
            )
        return report

    return ExperimentPlan("E6", scale, seed, jobs, assemble)


# --------------------------------------------------------------------------- #
# E7 — Generalised edge-MEG (Appendix A)
# --------------------------------------------------------------------------- #
def plan_edge_meg(scale: str, seed: int) -> ExperimentPlan:
    """E7: classic edge-MEG sweep — our general bound vs the prior bound of [10]."""
    (n, p_multipliers, trials) = _scales(
        scale, (100, [0.5, 1.0, 4.0, 16.0], 5), (300, [0.25, 0.5, 1.0, 4.0, 16.0, 64.0], 10)
    )
    q = 0.5
    jobs = tuple(
        ExperimentJob(
            tag=f"np={multiplier}",
            spec=TrialSpec(
                factory=edge_meg_model,
                args=(n, multiplier / n, q),
                num_trials=trials,
                seed=experiment_seed_sequence(seed, index),
                label=f"E7[np={multiplier}]",
                tags=_tags("E7", scale, f"np={multiplier}"),
            ),
        )
        for index, multiplier in enumerate(p_multipliers)
    )

    def assemble(samples) -> ExperimentReport:
        report = ExperimentReport(
            experiment_id="E7",
            title="Classic edge-MEG: general bound vs the prior bound of [10]",
            paper_reference="Appendix A (generalised edge-MEGs) and Eq. 2",
            columns=[
                "n",
                "p",
                "q",
                "measured_mean",
                "general_bound",
                "prior_bound_[10]",
                "tight_region(q>=np)",
            ],
        )
        for multiplier in p_multipliers:
            p = multiplier / n
            summary = summarize(samples[f"np={multiplier}"])
            report.add_row(
                n=n,
                p=p,
                q=q,
                measured_mean=summary.mean,
                general_bound=classic_edge_meg_bound(n, p, q),
                **{
                    "prior_bound_[10]": classic_edge_meg_prior_bound(n, p),
                    "tight_region(q>=np)": general_bound_is_tight(n, p, q),
                },
            )
        report.add_note(
            "In the q >= n p region the two bounds agree up to polylog factors; for "
            "denser graphs (n p >> q) the prior bound is tighter, as Appendix A states."
        )
        return report

    return ExperimentPlan("E7", scale, seed, jobs, assemble)


# --------------------------------------------------------------------------- #
# E8 — Randomised gossip vs flooding (Section 5 reduction)
# --------------------------------------------------------------------------- #
# (protocol label, spec) pairs; None = plain flooding, the baseline.
_E8_PROTOCOLS = [
    ("flooding", None),
    ("gossip p=0.5", ("probability", 0.5)),
    ("gossip fanout=1", ("fanout", 1)),
    ("SI epidemic p=0.5", ("si", 0.5)),
]


def plan_gossip(scale: str, seed: int) -> ExperimentPlan:
    """E8: push-gossip variants on the same dynamic graphs as plain flooding."""
    (n, trials) = _scales(scale, (100, 5), (300, 10))
    p = 2.0 / n
    q = 0.5
    # Only the flooding baseline is an engine workload; the gossip variants
    # use the randomised-spreading simulators and run in assembly.  The
    # historical code ran flooding as `trials` one-trial batches, each seeded
    # from a per-trial child of the protocol's stream — mirror that exactly.
    jobs = tuple(
        ExperimentJob(
            tag=f"flooding/{trial}",
            spec=TrialSpec(
                factory=edge_meg_model,
                args=(n, p, q),
                num_trials=1,
                seed=experiment_seed_sequence(seed, 0, trial),
                label=f"E8[flooding/{trial}]",
                tags=_tags("E8", scale, f"flooding/{trial}"),
            ),
        )
        for trial in range(trials)
    )

    def assemble(samples) -> ExperimentReport:
        report = ExperimentReport(
            experiment_id="E8",
            title="Randomised gossip reduced to flooding on a virtual dynamic graph",
            paper_reference="Section 5 (conclusions): randomised-subset protocols",
            columns=[
                "protocol",
                "n",
                "mean_completion",
                "max_completion",
                "slowdown_vs_flooding",
            ],
        )
        model = edge_meg_model(n, p, q)
        baseline_mean = None
        for index, (label, spec) in enumerate(_E8_PROTOCOLS):
            if spec is None:
                completions = [samples[f"flooding/{trial}"][0] for trial in range(trials)]
            else:
                kind, value = spec
                completions = []
                for trial_rng in spawn_rngs(experiment_seed_sequence(seed, index), trials):
                    if kind == "probability":
                        result = gossip_spread(
                            model, transmission_probability=value, rng=trial_rng
                        )
                    elif kind == "fanout":
                        result = gossip_spread(model, fanout=value, rng=trial_rng)
                    else:
                        result = si_epidemic(model, infection_probability=value, rng=trial_rng)
                    if result.completion_time is None:
                        raise RuntimeError(f"{label} did not complete")
                    completions.append(result.completion_time)
            summary = summarize(completions)
            if baseline_mean is None:
                baseline_mean = summary.mean
            report.add_row(
                protocol=label,
                n=n,
                mean_completion=summary.mean,
                max_completion=summary.maximum,
                slowdown_vs_flooding=summary.mean / baseline_mean,
            )
        report.add_note(
            "Removing edges at random (transmission probability 1/2) costs only a "
            "small constant slowdown, as predicted by the virtual-dynamic-graph "
            "reduction: the virtual process is still (M, alpha/2, beta)-stationary."
        )
        return report

    return ExperimentPlan("E8", scale, seed, jobs, assemble)


# --------------------------------------------------------------------------- #
# E9 — Expansion machinery of Lemmas 9-11
# --------------------------------------------------------------------------- #
def plan_expansion(scale: str, seed: int) -> ExperimentPlan:
    """E9: empirical check of the expansion quantities used in Theorem 1's proof.

    No flooding trials — the whole experiment is epoch-level sampling of the
    proof quantities, so it compiles to zero engine jobs and runs in assembly
    (one shared generator consumed sequentially, as the sampling helpers'
    interleaved draws require).
    """
    (n, samples_count) = _scales(scale, (120, 60), (400, 200))

    def assemble(samples) -> ExperimentReport:
        p = 2.0 / n
        q = 0.5
        model = EdgeMEG(n, p=p, q=q)
        alpha = model.stationary_edge_probability()
        generator = ensure_rng(seed)
        set_a = set(range(n // 2))
        set_b = set(range(n // 2, n))
        node = n - 1
        report = ExperimentReport(
            experiment_id="E9",
            title="Expansion quantities deg_{i,A}, deg_{A,B}, spread_{A}^{T}",
            paper_reference="Lemmas 9, 10, 11 (proof machinery of Theorem 1)",
            columns=["quantity", "predicted_mean", "measured_mean", "measured_q10"],
        )
        degree_samples = sample_degree_into_set(
            model, node, set_a, samples_count, epoch_length=1, rng=generator
        )
        degree_summary = summarize(degree_samples)
        report.add_row(
            quantity="deg_{i,A} (|A|=n/2)",
            predicted_mean=len(set_a) * alpha,
            measured_mean=degree_summary.mean,
            measured_q10=float(np.quantile(degree_samples, 0.1)),
        )
        expansion_samples = sample_set_expansion(
            model, set_a, set_b, samples_count, epoch_length=1, rng=generator
        )
        expansion_summary = summarize(expansion_samples)
        predicted_expansion = len(set_b) * (1.0 - (1.0 - alpha) ** len(set_a))
        report.add_row(
            quantity="deg_{A,B} (|A|=|B|=n/2)",
            predicted_mean=predicted_expansion,
            measured_mean=expansion_summary.mean,
            measured_q10=float(np.quantile(expansion_samples, 0.1)),
        )
        small_set = set(range(4))
        window = 8
        spread_samples = sample_spread(
            model,
            small_set,
            window=window,
            num_samples=max(10, samples_count // 4),
            rng=generator,
        )
        spread_summary = summarize(spread_samples)
        predicted_spread = (n - len(small_set)) * (
            1.0 - (1.0 - alpha) ** (len(small_set) * window)
        )
        report.add_row(
            quantity=f"spread_A^T (|A|=4, T={window})",
            predicted_mean=predicted_spread,
            measured_mean=spread_summary.mean,
            measured_q10=float(np.quantile(spread_samples, 0.1)),
        )
        report.add_note(
            "Measured means track the independent-edge predictions (beta = 1 for "
            "edge-MEGs) and the lower quantiles stay well above half the mean, the "
            "concentration the Paley-Zygmund step of Lemmas 9-11 requires."
        )
        return report

    return ExperimentPlan("E9", scale, seed, (), assemble)


# --------------------------------------------------------------------------- #
# E10 — Conditions (i)/(ii): stationarity parameters of the concrete models
# --------------------------------------------------------------------------- #
def plan_stationarity(scale: str, seed: int) -> ExperimentPlan:
    """E10: density/independence conditions measured for the concrete models.

    Like E9 this is pure proof-condition sampling (positional densities,
    alpha/beta estimates) with no flooding workload: zero engine jobs,
    everything in assembly over one sequentially consumed generator.
    """
    (waypoint_n, snapshots, mc_samples) = _scales(scale, (60, 120, 80), (200, 400, 300))

    def assemble(samples) -> ExperimentReport:
        report = ExperimentReport(
            experiment_id="E10",
            title="Density and independence conditions of the concrete models",
            paper_reference="Fact 2, Lemma 15, Corollary 4 conditions (a)/(b)",
            columns=["model", "quantity", "value"],
        )
        generator = ensure_rng(seed)

        # Random waypoint: positional density uniformity (Corollary 4 conditions).
        side = math.sqrt(waypoint_n)
        region = SquareRegion(side)
        radius = 1.0
        analytic = uniformity_parameters(
            lambda x, y: waypoint_density(x, y, side), region, radius=radius, resolution=30
        )
        report.add_row(
            model="random waypoint", quantity="delta (analytic density)", value=analytic.delta
        )
        report.add_row(
            model="random waypoint", quantity="lambda (analytic density)", value=analytic.lam
        )
        report.add_row(
            model="random waypoint", quantity="eta = delta^6/lambda^2", value=analytic.eta()
        )
        waypoint = RandomWaypoint(waypoint_n, side=side, radius=radius, v_min=1.0)
        empirical_density = empirical_positional_distribution(
            waypoint, region, resolution=12, num_snapshots=snapshots, spacing=2, rng=generator
        )
        empirical = uniformity_parameters(
            empirical_density, region, radius=radius, resolution=12
        )
        report.add_row(
            model="random waypoint", quantity="delta (empirical density)", value=empirical.delta
        )
        report.add_row(
            model="random waypoint", quantity="lambda (empirical density)", value=empirical.lam
        )

        # Node-MEG: exact alpha / beta vs Monte-Carlo estimates.
        chain = complete_graph_walk(12)
        connection = np.eye(chain.num_states, dtype=bool)
        node_meg = NodeMEG(48, chain, connection)
        exact_alpha, exact_beta = exact_parameters(node_meg)
        report.add_row(
            model="co-location node-MEG", quantity="alpha = P_NM (exact)", value=exact_alpha
        )
        report.add_row(
            model="co-location node-MEG",
            quantity="beta = 17 eta (Lemma 15)",
            value=exact_beta,
        )
        epoch = max(1, mixing_time(chain))
        estimated_alpha = estimate_edge_probability(
            node_meg, epoch_length=epoch, num_samples=mc_samples, rng=generator
        )
        estimated_beta = estimate_beta(
            node_meg, epoch_length=epoch, num_samples=mc_samples, rng=generator
        )
        report.add_row(
            model="co-location node-MEG", quantity="alpha (Monte-Carlo)", value=estimated_alpha
        )
        report.add_row(
            model="co-location node-MEG",
            quantity="beta ratio (Monte-Carlo)",
            value=estimated_beta,
        )

        # Classic edge-MEG: alpha exact, beta = 1 by construction.
        edge_meg = EdgeMEG(80, p=2.0 / 80, q=0.5)
        alpha_edge, beta_edge = exact_parameters(edge_meg)
        report.add_row(
            model="classic edge-MEG", quantity="alpha = p/(p+q)", value=alpha_edge
        )
        report.add_row(
            model="classic edge-MEG", quantity="beta (independent edges)", value=beta_edge
        )

        report.add_note(
            "The waypoint's positional density is bounded by a constant multiple of the "
            "uniform density (condition (a)) and exceeds 1/(delta vol) on a constant "
            "fraction of the square (condition (b)), as Corollary 4 requires."
        )
        report.add_note(
            "Monte-Carlo estimates of alpha and of the pairwise correlation ratio agree "
            "with the exact node-MEG quantities, and the measured beta ratio stays far "
            "below the conservative 17*eta constant of Lemma 15."
        )
        return report

    return ExperimentPlan("E10", scale, seed, (), assemble)


# --------------------------------------------------------------------------- #
# Registry and legacy runner entry points
# --------------------------------------------------------------------------- #
EXPERIMENTS: dict[str, Experiment] = {
    "E1": Experiment("E1", "Theorem 1 on a sparse edge-MEG", "Theorem 1", plan_theorem1),
    "E2": Experiment("E2", "Theorem 3 on a co-location node-MEG", "Theorem 3", plan_node_meg),
    "E3": Experiment(
        "E3", "Random waypoint (sparse regime)", "Corollary 4 / Section 4.1", plan_random_waypoint
    ),
    "E4": Experiment(
        "E4", "Random walk mobility on the grid", "Introduction / Section 4.1", plan_random_walk
    ),
    "E5": Experiment("E5", "Random paths on a grid", "Corollary 5", plan_random_paths),
    "E6": Experiment(
        "E6", "k-augmented grids vs meeting-time bound", "Corollary 6 + [15]", plan_augmented_grid
    ),
    "E7": Experiment("E7", "Classic edge-MEG vs prior bound", "Appendix A", plan_edge_meg),
    "E8": Experiment("E8", "Randomised gossip vs flooding", "Section 5", plan_gossip),
    "E9": Experiment("E9", "Expansion machinery of Lemmas 9-11", "Lemmas 9-11", plan_expansion),
    "E10": Experiment(
        "E10",
        "Stationarity conditions of concrete models",
        "Fact 2 / Lemma 15 / Corollary 4",
        plan_stationarity,
    ),
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up a registered experiment by id (e.g. ``"E3"``)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known ids: {known}") from None


def run_experiment(
    experiment_id: str,
    scale: str = "small",
    seed: int = 0,
    engine: Engine | None = None,
) -> ExperimentReport:
    """Run a registered experiment through the pipeline and return its report.

    ``engine`` configures execution (worker pool, kernel backend, attached
    result store); the default is a serial in-process engine.  The report is
    identical whatever the engine configuration — that is the pipeline's
    determinism contract.
    """
    plan = get_experiment(experiment_id).planner(scale, int(seed))
    report = execute_plan(plan, engine=engine).report
    assert report is not None  # unsharded executions always assemble
    return report


def _run_legacy(
    planner: Callable[[str, int], ExperimentPlan], scale: str, seed: int
) -> ExperimentReport:
    report = execute_plan(planner(scale, seed)).report
    assert report is not None
    return report


def run_theorem1(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E1: flooding time vs n for a sparse edge-MEG against the Theorem-1 bound."""
    return _run_legacy(plan_theorem1, scale, seed)


def run_node_meg(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E2: flooding time of a co-location node-MEG against the Theorem-3 bound."""
    return _run_legacy(plan_node_meg, scale, seed)


def run_random_waypoint(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E3: sparse-regime random waypoint vs the paper's first waypoint bound."""
    return _run_legacy(plan_random_waypoint, scale, seed)


def run_random_walk(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E4: random-walk mobility model on an m x m grid (sanity baseline)."""
    return _run_legacy(plan_random_walk, scale, seed)


def run_random_paths(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E5: shortest-path random-path model on grids vs the Corollary-5 bound."""
    return _run_legacy(plan_random_paths, scale, seed)


def run_augmented_grid(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E6: random walks on k-augmented grids — our bound vs the [15] baseline."""
    return _run_legacy(plan_augmented_grid, scale, seed)


def run_edge_meg(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E7: classic edge-MEG sweep — our general bound vs the prior bound of [10]."""
    return _run_legacy(plan_edge_meg, scale, seed)


def run_gossip(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E8: push-gossip variants on the same dynamic graphs as plain flooding."""
    return _run_legacy(plan_gossip, scale, seed)


def run_expansion(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E9: empirical check of the expansion quantities used in Theorem 1's proof."""
    return _run_legacy(plan_expansion, scale, seed)


def run_stationarity(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E10: density/independence conditions measured for the concrete models."""
    return _run_legacy(plan_stationarity, scale, seed)
