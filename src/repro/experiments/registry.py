"""The registered experiments E1–E10 (see DESIGN.md for the index).

Each experiment is a function ``(scale, seed) -> ExperimentReport`` where
``scale`` is ``"small"`` (seconds — the configuration the test-suite and the
benchmarks use) or ``"full"`` (minutes — larger sweeps with more trials).
The registry maps the experiment id to its metadata and runner so the
benchmark harness and EXPERIMENTS.md generation can iterate over all of
them uniformly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines.edge_meg_bound import (
    classic_edge_meg_prior_bound,
    general_bound_is_tight,
)
from repro.baselines.lower_bounds import (
    diameter_lower_bound,
    geometric_lower_bound,
    sparse_waypoint_lower_bound,
)
from repro.baselines.meeting_time import expected_meeting_time, meeting_time_bound
from repro.core.bounds import (
    classic_edge_meg_bound,
    corollary5_bound,
    corollary6_bound,
    theorem1_bound,
    theorem3_bound,
    waypoint_flooding_bound,
)
from repro.core.epochs import sample_degree_into_set, sample_set_expansion, sample_spread
from repro.core.flooding import flooding_time_samples
from repro.core.spreading import gossip_spread, si_epidemic
from repro.core.stationarity import exact_parameters
from repro.experiments.report import ExperimentReport
from repro.graphs.grid import augmented_grid_graph, grid_graph
from repro.graphs.paths import shortest_path_family
from repro.graphs.properties import degree_regularity, diameter, path_family_regularity
from repro.markov.builders import complete_graph_walk
from repro.markov.mixing import mixing_time
from repro.meg.edge_meg import EdgeMEG
from repro.meg.node_meg import NodeMEG
from repro.mobility.geometry import SquareRegion
from repro.mobility.positional import (
    empirical_positional_distribution,
    uniformity_parameters,
    waypoint_density,
)
from repro.mobility.random_path import GraphRandomWalkMobility, RandomPathModel
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypoint
from repro.util.mathutils import loglog_slope
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.stats import summarize


@dataclass(frozen=True)
class Experiment:
    """Registry entry: metadata plus the runner callable."""

    experiment_id: str
    title: str
    paper_reference: str
    runner: Callable[[str, int], ExperimentReport]


def _scales(scale: str, small, full):
    if scale == "small":
        return small
    if scale == "full":
        return full
    raise ValueError(f"scale must be 'small' or 'full', got {scale!r}")


# --------------------------------------------------------------------------- #
# E1 — Theorem 1 on a controlled (M, alpha, beta)-stationary process
# --------------------------------------------------------------------------- #
def run_theorem1(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E1: flooding time vs n for a sparse edge-MEG against the Theorem-1 bound."""
    sizes, trials = _scales(scale, ([50, 100, 200], 5), ([100, 200, 400, 800], 10))
    q = 0.5
    report = ExperimentReport(
        experiment_id="E1",
        title="Theorem 1 bound on a sparse stationary edge-MEG",
        paper_reference="Theorem 1 (general (M, alpha, beta)-stationary bound)",
        columns=[
            "n",
            "alpha",
            "beta",
            "epoch_length",
            "measured_mean",
            "measured_whp",
            "theorem1_bound",
            "ratio",
        ],
    )
    means = []
    bounds = []
    for n, generator in zip(sizes, spawn_rngs(seed, len(sizes))):
        p = 1.0 / (2.0 * n)
        model = EdgeMEG(n, p=p, q=q)
        alpha, beta = exact_parameters(model)
        epoch = max(1, mixing_time(model.edge_chain()))
        samples = flooding_time_samples(model, trials, rng=generator)
        summary = summarize(samples)
        bound = theorem1_bound(n, epoch, alpha, beta)
        means.append(summary.mean)
        bounds.append(bound)
        report.add_row(
            n=n,
            alpha=alpha,
            beta=beta,
            epoch_length=epoch,
            measured_mean=summary.mean,
            measured_whp=summary.q90,
            theorem1_bound=bound,
            ratio=summary.mean / bound,
        )
    if len(sizes) >= 2:
        report.add_note(
            f"log-log slope of measured flooding time vs n: "
            f"{loglog_slope(sizes, means):.2f} (bound slope "
            f"{loglog_slope(sizes, bounds):.2f}); the bound grows at least as fast."
        )
    return report


# --------------------------------------------------------------------------- #
# E2 — Theorem 3 on an explicit node-MEG
# --------------------------------------------------------------------------- #
def run_node_meg(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E2: flooding time of a co-location node-MEG against the Theorem-3 bound."""
    sizes, trials, num_states = _scales(
        scale, ([40, 80, 160], 5, 16), ([80, 160, 320, 640], 10, 24)
    )
    chain = complete_graph_walk(num_states)
    t_mix = mixing_time(chain)
    connection = np.eye(chain.num_states, dtype=bool)
    report = ExperimentReport(
        experiment_id="E2",
        title="Theorem 3 bound on a co-location node-MEG",
        paper_reference="Theorem 3 (node-MEG flooding bound)",
        columns=[
            "n",
            "P_NM",
            "eta",
            "T_mix",
            "measured_mean",
            "measured_whp",
            "theorem3_bound",
            "ratio",
        ],
    )
    for n, generator in zip(sizes, spawn_rngs(seed, len(sizes))):
        model = NodeMEG(n, chain, connection)
        p_nm = model.edge_probability()
        eta = model.eta()
        samples = flooding_time_samples(model, trials, rng=generator)
        summary = summarize(samples)
        bound = theorem3_bound(n, max(t_mix, 1), p_nm, max(eta, 1.0))
        report.add_row(
            n=n,
            P_NM=p_nm,
            eta=eta,
            T_mix=t_mix,
            measured_mean=summary.mean,
            measured_whp=summary.q90,
            theorem3_bound=bound,
            ratio=summary.mean / bound,
        )
    report.add_note(
        "Connection map: two agents are linked when their hidden states coincide "
        "(agents hopping on a complete graph of meeting points)."
    )
    return report


# --------------------------------------------------------------------------- #
# E3 — Random waypoint (Corollary 4 / Section 4.1)
# --------------------------------------------------------------------------- #
def run_random_waypoint(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E3: sparse-regime random waypoint vs the paper's first waypoint bound."""
    sizes, trials = _scales(scale, ([30, 60, 120], 3), ([60, 120, 240, 480], 6))
    radius = 1.0
    speed = 1.0
    report = ExperimentReport(
        experiment_id="E3",
        title="Random waypoint in the sparse regime (L ~ sqrt(n), r = 1)",
        paper_reference="Corollary 4 + Section 4.1 waypoint bound "
        "O((L/v)(L^2/(n r^2)+1)^2 log^3 n)",
        columns=[
            "n",
            "L",
            "measured_mean",
            "measured_whp",
            "waypoint_bound",
            "lower_bound",
            "ratio_to_lower",
        ],
    )
    sides = []
    means = []
    for n, generator in zip(sizes, spawn_rngs(seed, len(sizes))):
        side = math.sqrt(n)
        model = RandomWaypoint(n, side=side, radius=radius, v_min=speed, v_max=speed)
        samples = flooding_time_samples(model, trials, rng=generator)
        summary = summarize(samples)
        bound = waypoint_flooding_bound(n, side, radius, speed)
        lower = max(geometric_lower_bound(side, radius, speed), 1.0)
        sides.append(side)
        means.append(summary.mean)
        report.add_row(
            n=n,
            L=side,
            measured_mean=summary.mean,
            measured_whp=summary.q90,
            waypoint_bound=bound,
            lower_bound=lower,
            ratio_to_lower=summary.mean / lower,
        )
    if len(sizes) >= 2:
        report.add_note(
            f"log-log slope of flooding time vs n: {loglog_slope(sizes, means):.2f} "
            "(the sparse-regime bound predicts ~0.5 up to polylog factors)."
        )
        report.add_note(
            f"sparse-regime upper bound at the largest n: "
            f"{sparse_waypoint_lower_bound(sizes[-1], speed):.1f} * polylog(n)."
        )
    return report


# --------------------------------------------------------------------------- #
# E4 — Random walk mobility on the grid
# --------------------------------------------------------------------------- #
def run_random_walk(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E4: random-walk mobility model on an m x m grid (sanity baseline)."""
    sizes, trials = _scales(scale, ([36, 64, 100], 3), ([64, 144, 256, 400], 6))
    radius = 1.0
    report = ExperimentReport(
        experiment_id="E4",
        title="Random walk mobility on the grid",
        paper_reference="Introduction / Section 4.1 (random walk model, rho = 1)",
        columns=["n", "grid_side", "measured_mean", "measured_whp", "lower_bound"],
    )
    for n, generator in zip(sizes, spawn_rngs(seed, len(sizes))):
        side = int(round(math.sqrt(n)))
        model = RandomWalkMobility(
            n, grid_side=side, radius=radius, holding_probability=0.2
        )
        samples = flooding_time_samples(model, trials, rng=generator)
        summary = summarize(samples)
        report.add_row(
            n=n,
            grid_side=side,
            measured_mean=summary.mean,
            measured_whp=summary.q90,
            lower_bound=max(1.0, geometric_lower_bound(side - 1.0, radius, 1.0)),
        )
    report.add_note(
        "Prior work gives almost tight Õ(sqrt(n)) bounds for this model; it serves "
        "as a calibration baseline for the simulator."
    )
    return report


# --------------------------------------------------------------------------- #
# E5 — Random paths on a grid (Corollary 5)
# --------------------------------------------------------------------------- #
def run_random_paths(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E5: shortest-path random-path model on grids vs the Corollary-5 bound."""
    sides, trials, agents_per_point = _scales(
        scale, ([3, 4, 5], 3, 2), ([4, 5, 6, 7], 6, 3)
    )
    report = ExperimentReport(
        experiment_id="E5",
        title="Random paths on a grid (all-pairs shortest paths)",
        paper_reference="Corollary 5; O(D polylog n) instance discussed after it",
        columns=[
            "grid_side",
            "num_points",
            "diameter",
            "delta",
            "n",
            "measured_mean",
            "corollary5_bound",
            "diameter_lower_bound",
        ],
    )
    diameters = []
    means = []
    for side, generator in zip(sides, spawn_rngs(seed, len(sides))):
        graph = grid_graph(side)
        family = shortest_path_family(graph)
        delta = path_family_regularity(family)
        num_points = graph.number_of_nodes()
        n = agents_per_point * num_points
        # Lazy variant: the grid is bipartite, so the strict one-hop-per-step
        # model has a parity invariant that prevents opposite-colour agents
        # from ever meeting (see RandomPathModel docs).
        model = RandomPathModel(n, family, radius_hops=0, holding_probability=0.25)
        d = diameter(graph)
        samples = flooding_time_samples(model, trials, rng=generator)
        summary = summarize(samples)
        bound = corollary5_bound(n, mixing_time=max(d, 1), num_points=num_points, delta=delta)
        diameters.append(d)
        means.append(summary.mean)
        report.add_row(
            grid_side=side,
            num_points=num_points,
            diameter=d,
            delta=delta,
            n=n,
            measured_mean=summary.mean,
            corollary5_bound=bound,
            diameter_lower_bound=diameter_lower_bound(d),
        )
    if len(sides) >= 2:
        report.add_note(
            f"log-log slope of flooding time vs grid diameter: "
            f"{loglog_slope(diameters, means):.2f} "
            "(Corollary 5 predicts O(D polylog n), i.e. slope ~1 in D)."
        )
    return report


# --------------------------------------------------------------------------- #
# E6 — k-augmented grids: Corollary 6 vs the meeting-time bound of [15]
# --------------------------------------------------------------------------- #
def run_augmented_grid(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E6: random walks on k-augmented grids — our bound vs the [15] baseline."""
    (side, ks, trials, meeting_trials) = _scales(
        scale, (6, [1, 2, 3], 3, 60), (10, [1, 2, 3, 4, 5], 6, 200)
    )
    report = ExperimentReport(
        experiment_id="E6",
        title="Random walks on k-augmented grids",
        paper_reference="Corollary 6 and the comparison with [15] (meeting-time bound)",
        columns=[
            "k",
            "num_points",
            "delta",
            "T_mix",
            "measured_mean",
            "corollary6_bound",
            "meeting_time",
            "prior_bound_[15]",
        ],
    )
    measured = []
    mixing_times = []
    meeting_times = []
    for k, generator in zip(ks, spawn_rngs(seed, len(ks))):
        graph = augmented_grid_graph(side, k)
        num_points = graph.number_of_nodes()
        n = 2 * num_points
        model = GraphRandomWalkMobility(
            n, graph, radius_hops=0, holding_probability=0.5
        )
        chain = model.to_markov_chain()
        t_mix = mixing_time(chain)
        delta = degree_regularity(graph)
        samples = flooding_time_samples(model, trials, rng=generator)
        summary = summarize(samples)
        meeting = expected_meeting_time(graph, num_trials=meeting_trials, rng=generator)
        measured.append(summary.mean)
        mixing_times.append(t_mix)
        meeting_times.append(meeting)
        report.add_row(
            k=k,
            num_points=num_points,
            delta=delta,
            T_mix=t_mix,
            measured_mean=summary.mean,
            corollary6_bound=corollary6_bound(n, t_mix, num_points, delta),
            meeting_time=meeting,
            **{"prior_bound_[15]": meeting_time_bound(meeting, n)},
        )
    if len(ks) >= 2:
        drop_mix = mixing_times[0] / mixing_times[-1]
        drop_meet = meeting_times[0] / max(meeting_times[-1], 1e-9)
        report.add_note(
            f"Mixing time drops by a factor {drop_mix:.1f} from k={ks[0]} to "
            f"k={ks[-1]} while the meeting time only drops by {drop_meet:.1f}; "
            "the paper's bound (driven by T_mix) therefore improves on the "
            "meeting-time bound of [15] as k grows."
        )
        report.add_note(
            f"Measured flooding time drops by a factor "
            f"{measured[0] / max(measured[-1], 1e-9):.1f} over the same range."
        )
    return report


# --------------------------------------------------------------------------- #
# E7 — Generalised edge-MEG (Appendix A)
# --------------------------------------------------------------------------- #
def run_edge_meg(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E7: classic edge-MEG sweep — our general bound vs the prior bound of [10]."""
    (n, p_multipliers, trials) = _scales(
        scale, (100, [0.5, 1.0, 4.0, 16.0], 5), (300, [0.25, 0.5, 1.0, 4.0, 16.0, 64.0], 10)
    )
    q = 0.5
    report = ExperimentReport(
        experiment_id="E7",
        title="Classic edge-MEG: general bound vs the prior bound of [10]",
        paper_reference="Appendix A (generalised edge-MEGs) and Eq. 2",
        columns=[
            "n",
            "p",
            "q",
            "measured_mean",
            "general_bound",
            "prior_bound_[10]",
            "tight_region(q>=np)",
        ],
    )
    for multiplier, generator in zip(p_multipliers, spawn_rngs(seed, len(p_multipliers))):
        p = multiplier / n
        model = EdgeMEG(n, p=p, q=q)
        samples = flooding_time_samples(model, trials, rng=generator)
        summary = summarize(samples)
        report.add_row(
            n=n,
            p=p,
            q=q,
            measured_mean=summary.mean,
            general_bound=classic_edge_meg_bound(n, p, q),
            **{
                "prior_bound_[10]": classic_edge_meg_prior_bound(n, p),
                "tight_region(q>=np)": general_bound_is_tight(n, p, q),
            },
        )
    report.add_note(
        "In the q >= n p region the two bounds agree up to polylog factors; for "
        "denser graphs (n p >> q) the prior bound is tighter, as Appendix A states."
    )
    return report


# --------------------------------------------------------------------------- #
# E8 — Randomised gossip vs flooding (Section 5 reduction)
# --------------------------------------------------------------------------- #
def run_gossip(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E8: push-gossip variants on the same dynamic graphs as plain flooding."""
    (n, trials) = _scales(scale, (100, 5), (300, 10))
    p = 2.0 / n
    q = 0.5
    protocols = [
        ("flooding", None),
        ("gossip p=0.5", ("probability", 0.5)),
        ("gossip fanout=1", ("fanout", 1)),
        ("SI epidemic p=0.5", ("si", 0.5)),
    ]
    report = ExperimentReport(
        experiment_id="E8",
        title="Randomised gossip reduced to flooding on a virtual dynamic graph",
        paper_reference="Section 5 (conclusions): randomised-subset protocols",
        columns=["protocol", "n", "mean_completion", "max_completion", "slowdown_vs_flooding"],
    )
    model = EdgeMEG(n, p=p, q=q)
    baseline_mean = None
    for (label, spec), generator in zip(protocols, spawn_rngs(seed, len(protocols))):
        completions = []
        for trial_rng in spawn_rngs(generator, trials):
            if spec is None:
                samples = flooding_time_samples(model, 1, rng=trial_rng)
                completions.append(samples[0])
                continue
            kind, value = spec
            if kind == "probability":
                result = gossip_spread(
                    model, transmission_probability=value, rng=trial_rng
                )
            elif kind == "fanout":
                result = gossip_spread(model, fanout=value, rng=trial_rng)
            else:
                result = si_epidemic(model, infection_probability=value, rng=trial_rng)
            if result.completion_time is None:
                raise RuntimeError(f"{label} did not complete")
            completions.append(result.completion_time)
        summary = summarize(completions)
        if baseline_mean is None:
            baseline_mean = summary.mean
        report.add_row(
            protocol=label,
            n=n,
            mean_completion=summary.mean,
            max_completion=summary.maximum,
            slowdown_vs_flooding=summary.mean / baseline_mean,
        )
    report.add_note(
        "Removing edges at random (transmission probability 1/2) costs only a "
        "small constant slowdown, as predicted by the virtual-dynamic-graph "
        "reduction: the virtual process is still (M, alpha/2, beta)-stationary."
    )
    return report


# --------------------------------------------------------------------------- #
# E9 — Expansion machinery of Lemmas 9-11
# --------------------------------------------------------------------------- #
def run_expansion(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E9: empirical check of the expansion quantities used in Theorem 1's proof."""
    (n, samples_count) = _scales(scale, (120, 60), (400, 200))
    p = 2.0 / n
    q = 0.5
    model = EdgeMEG(n, p=p, q=q)
    alpha = model.stationary_edge_probability()
    generator = ensure_rng(seed)
    set_a = set(range(n // 2))
    set_b = set(range(n // 2, n))
    node = n - 1
    report = ExperimentReport(
        experiment_id="E9",
        title="Expansion quantities deg_{i,A}, deg_{A,B}, spread_{A}^{T}",
        paper_reference="Lemmas 9, 10, 11 (proof machinery of Theorem 1)",
        columns=["quantity", "predicted_mean", "measured_mean", "measured_q10"],
    )
    degree_samples = sample_degree_into_set(
        model, node, set_a, samples_count, epoch_length=1, rng=generator
    )
    degree_summary = summarize(degree_samples)
    report.add_row(
        quantity="deg_{i,A} (|A|=n/2)",
        predicted_mean=len(set_a) * alpha,
        measured_mean=degree_summary.mean,
        measured_q10=float(np.quantile(degree_samples, 0.1)),
    )
    expansion_samples = sample_set_expansion(
        model, set_a, set_b, samples_count, epoch_length=1, rng=generator
    )
    expansion_summary = summarize(expansion_samples)
    predicted_expansion = len(set_b) * (1.0 - (1.0 - alpha) ** len(set_a))
    report.add_row(
        quantity="deg_{A,B} (|A|=|B|=n/2)",
        predicted_mean=predicted_expansion,
        measured_mean=expansion_summary.mean,
        measured_q10=float(np.quantile(expansion_samples, 0.1)),
    )
    small_set = set(range(4))
    window = 8
    spread_samples = sample_spread(
        model, small_set, window=window, num_samples=max(10, samples_count // 4), rng=generator
    )
    spread_summary = summarize(spread_samples)
    predicted_spread = (n - len(small_set)) * (
        1.0 - (1.0 - alpha) ** (len(small_set) * window)
    )
    report.add_row(
        quantity=f"spread_A^T (|A|=4, T={window})",
        predicted_mean=predicted_spread,
        measured_mean=spread_summary.mean,
        measured_q10=float(np.quantile(spread_samples, 0.1)),
    )
    report.add_note(
        "Measured means track the independent-edge predictions (beta = 1 for "
        "edge-MEGs) and the lower quantiles stay well above half the mean, the "
        "concentration the Paley-Zygmund step of Lemmas 9-11 requires."
    )
    return report


# --------------------------------------------------------------------------- #
# E10 — Conditions (i)/(ii): stationarity parameters of the concrete models
# --------------------------------------------------------------------------- #
def run_stationarity(scale: str = "small", seed: int = 0) -> ExperimentReport:
    """E10: density/independence conditions measured for the concrete models."""
    (waypoint_n, snapshots, mc_samples) = _scales(scale, (60, 120, 80), (200, 400, 300))
    report = ExperimentReport(
        experiment_id="E10",
        title="Density and independence conditions of the concrete models",
        paper_reference="Fact 2, Lemma 15, Corollary 4 conditions (a)/(b)",
        columns=["model", "quantity", "value"],
    )
    generator = ensure_rng(seed)

    # Random waypoint: positional density uniformity (Corollary 4 conditions).
    side = math.sqrt(waypoint_n)
    region = SquareRegion(side)
    radius = 1.0
    analytic = uniformity_parameters(
        lambda x, y: waypoint_density(x, y, side), region, radius=radius, resolution=30
    )
    report.add_row(model="random waypoint", quantity="delta (analytic density)", value=analytic.delta)
    report.add_row(model="random waypoint", quantity="lambda (analytic density)", value=analytic.lam)
    report.add_row(model="random waypoint", quantity="eta = delta^6/lambda^2", value=analytic.eta())
    waypoint = RandomWaypoint(waypoint_n, side=side, radius=radius, v_min=1.0)
    empirical_density = empirical_positional_distribution(
        waypoint, region, resolution=12, num_snapshots=snapshots, spacing=2, rng=generator
    )
    empirical = uniformity_parameters(empirical_density, region, radius=radius, resolution=12)
    report.add_row(model="random waypoint", quantity="delta (empirical density)", value=empirical.delta)
    report.add_row(model="random waypoint", quantity="lambda (empirical density)", value=empirical.lam)

    # Node-MEG: exact alpha / beta vs Monte-Carlo estimates.
    chain = complete_graph_walk(12)
    connection = np.eye(chain.num_states, dtype=bool)
    node_meg = NodeMEG(48, chain, connection)
    exact_alpha, exact_beta = exact_parameters(node_meg)
    report.add_row(model="co-location node-MEG", quantity="alpha = P_NM (exact)", value=exact_alpha)
    report.add_row(model="co-location node-MEG", quantity="beta = 17 eta (Lemma 15)", value=exact_beta)
    epoch = max(1, mixing_time(chain))
    from repro.core.stationarity import estimate_beta, estimate_edge_probability

    estimated_alpha = estimate_edge_probability(
        node_meg, epoch_length=epoch, num_samples=mc_samples, rng=generator
    )
    estimated_beta = estimate_beta(
        node_meg, epoch_length=epoch, num_samples=mc_samples, rng=generator
    )
    report.add_row(
        model="co-location node-MEG", quantity="alpha (Monte-Carlo)", value=estimated_alpha
    )
    report.add_row(
        model="co-location node-MEG", quantity="beta ratio (Monte-Carlo)", value=estimated_beta
    )

    # Classic edge-MEG: alpha exact, beta = 1 by construction.
    edge_meg = EdgeMEG(80, p=2.0 / 80, q=0.5)
    alpha_edge, beta_edge = exact_parameters(edge_meg)
    report.add_row(model="classic edge-MEG", quantity="alpha = p/(p+q)", value=alpha_edge)
    report.add_row(model="classic edge-MEG", quantity="beta (independent edges)", value=beta_edge)

    report.add_note(
        "The waypoint's positional density is bounded by a constant multiple of the "
        "uniform density (condition (a)) and exceeds 1/(delta vol) on a constant "
        "fraction of the square (condition (b)), as Corollary 4 requires."
    )
    report.add_note(
        "Monte-Carlo estimates of alpha and of the pairwise correlation ratio agree "
        "with the exact node-MEG quantities, and the measured beta ratio stays far "
        "below the conservative 17*eta constant of Lemma 15."
    )
    return report


EXPERIMENTS: dict[str, Experiment] = {
    "E1": Experiment("E1", "Theorem 1 on a sparse edge-MEG", "Theorem 1", run_theorem1),
    "E2": Experiment("E2", "Theorem 3 on a co-location node-MEG", "Theorem 3", run_node_meg),
    "E3": Experiment("E3", "Random waypoint (sparse regime)", "Corollary 4 / Section 4.1", run_random_waypoint),
    "E4": Experiment("E4", "Random walk mobility on the grid", "Introduction / Section 4.1", run_random_walk),
    "E5": Experiment("E5", "Random paths on a grid", "Corollary 5", run_random_paths),
    "E6": Experiment("E6", "k-augmented grids vs meeting-time bound", "Corollary 6 + [15]", run_augmented_grid),
    "E7": Experiment("E7", "Classic edge-MEG vs prior bound", "Appendix A", run_edge_meg),
    "E8": Experiment("E8", "Randomised gossip vs flooding", "Section 5", run_gossip),
    "E9": Experiment("E9", "Expansion machinery of Lemmas 9-11", "Lemmas 9-11", run_expansion),
    "E10": Experiment("E10", "Stationarity conditions of concrete models", "Fact 2 / Lemma 15 / Corollary 4", run_stationarity),
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up a registered experiment by id (e.g. ``"E3"``)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known ids: {known}") from None


def run_experiment(experiment_id: str, scale: str = "small", seed: int = 0) -> ExperimentReport:
    """Run a registered experiment and return its report."""
    return get_experiment(experiment_id).runner(scale, seed)
