"""Rendering of experiment results as plain-text and markdown tables.

:class:`ExperimentReport` is the presentation-layer contract between the
execution pipeline and every consumer (CLI tables, ``EXPERIMENTS.md``, JSON
artifacts): an ordered list of row dicts plus column metadata, with no
simulation state attached.  Renderers here are pure functions of the report
— the same report object always formats to the same bytes, which is what
lets CI diff regenerated markdown against the committed file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class ExperimentReport:
    """The outcome of one registered experiment.

    Attributes
    ----------
    experiment_id:
        The registry id (``"E1"`` … ``"E10"``).
    title:
        Human-readable title.
    paper_reference:
        The theorem/corollary/section of the paper being reproduced.
    columns:
        Ordered column names of the result rows.
    rows:
        One dict per sweep point (keys are the column names).
    notes:
        Free-form remarks: scaling exponents, who-wins verdicts, caveats.
    """

    experiment_id: str
    title: str
    paper_reference: str
    columns: Sequence[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values) -> None:
        """Append a result row (missing columns are rendered blank)."""
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        """Append a free-form remark."""
        self.notes.append(note)

    def column_values(self, column: str) -> list:
        """All values of one column, in row order (missing entries skipped)."""
        return [row[column] for row in self.rows if column in row]

    def as_dict(self) -> dict:
        """Machine-readable form (what the CLI's ``--json`` flag emits)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_reference": self.paper_reference,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "notes": list(self.notes),
        }


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(report: ExperimentReport) -> str:
    """Render a report as an aligned plain-text table."""
    columns = list(report.columns)
    header = [str(c) for c in columns]
    body = [[_format_value(row.get(c, "")) for c in columns] for row in report.rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(columns))
    ]
    lines = [
        f"{report.experiment_id}: {report.title}",
        f"reproduces: {report.paper_reference}",
        "",
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if report.notes:
        lines.append("")
        lines.extend(f"note: {note}" for note in report.notes)
    return "\n".join(lines)


def format_markdown(report: ExperimentReport) -> str:
    """Render a report as a GitHub-flavoured markdown table."""
    columns = list(report.columns)
    lines = [
        f"### {report.experiment_id}: {report.title}",
        "",
        f"*Reproduces:* {report.paper_reference}",
        "",
        "| " + " | ".join(str(c) for c in columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in report.rows:
        lines.append(
            "| " + " | ".join(_format_value(row.get(c, "")) for c in columns) + " |"
        )
    if report.notes:
        lines.append("")
        lines.extend(f"- {note}" for note in report.notes)
    return "\n".join(lines)


def combine_reports(reports: Iterable[ExperimentReport], markdown: bool = False) -> str:
    """Concatenate several reports into one document."""
    renderer = format_markdown if markdown else format_table
    return "\n\n".join(renderer(report) for report in reports)
