"""Engine-routed execution pipeline for the registered experiments (E1-E10).

Every registered experiment used to drive :func:`flooding_time_samples` and
the sampling helpers directly from an ad-hoc loop, which kept the paper's
headline figures outside the engine machinery the sweeps already enjoy.
This module closes that gap: an experiment is *compiled* into an
:class:`ExperimentPlan` — a batch of tagged, declarative
:class:`~repro.engine.TrialSpec` jobs plus a pure assembly function — and
*executed* through :class:`~repro.engine.Engine`, inheriting worker pools,
kernel selection, ``--source-chunk`` and :class:`~repro.engine.ResultStore`
caching for free.

The contract mirrors the sweep sharding contract of :mod:`repro.engine.shard`:

* **Determinism** — every job's seed is an explicitly reconstructed
  ``SeedSequence`` child (:func:`experiment_seed_sequence`), the exact child
  the registry's pre-pipeline code obtained through ``spawn_rngs``, so the
  assembled report is bit-identical to the historical direct-call numbers
  (pinned by the golden-value regression tests).
* **Sharding** — shard ``i`` of ``K`` runs jobs ``i, i+K, i+2K, ...`` of the
  compiled plan, each as a *full* batch record in the store.  ``K`` shard
  stores merged with :meth:`ResultStore.merge
  <repro.engine.store.ResultStore.merge>` are byte-identical to the store an
  unsharded run writes, and :func:`assemble_from_store` rebuilds the exact
  report from the merged store without re-running anything.
* **Resume / replay** — a partial run resumes from whatever records the
  attached store already holds (the engine serves them as cache hits), and a
  re-run against a warm store executes zero trials.

Experiment assembly functions consume the *full* per-trial sample arrays, so
sketch-bearing store records (:mod:`repro.stats.sequential`) pass through
untouched here — the embedded ``"sketch"`` payload is extra metadata, never
a substitute for ``flooding_times`` on the experiment path.  Stopping rules
are likewise a sweep-only feature: experiment jobs always run their declared
fixed trial counts so the golden-value regressions stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.engine import BatchResult, Engine, ResultStore, TrialSpec, batch_store_key
from repro.experiments.report import ExperimentReport
from repro.telemetry import core as telemetry

#: The recognised experiment scales (seconds-fast vs. minutes-thorough).
SCALES = ("small", "full")


class MissingRecordError(LookupError):
    """A store-only assembly found no record for one of the plan's jobs."""


def experiment_seed_sequence(seed: int, *spawn_key: int) -> np.random.SeedSequence:
    """The ``SeedSequence`` child at ``spawn_key`` under ``SeedSequence(seed)``.

    Spawning is purely functional on fresh parents — the child at path
    ``(i, j)`` equals ``SeedSequence(seed).spawn(...)[i].spawn(...)[j]`` — so
    plan builders reconstruct the exact children the registry's pre-pipeline
    code obtained through ``spawn_rngs`` without sharing mutable spawn state
    between compilation, execution and assembly.
    """
    return np.random.SeedSequence(
        entropy=int(seed), spawn_key=tuple(int(k) for k in spawn_key)
    )


def advanced_rng(
    seed: int, spawn_key: Sequence[int], children_spawned: int
) -> np.random.Generator:
    """Generator over a child whose spawn counter already sits at ``children_spawned``.

    Reproduces the generator state the pre-pipeline registry code reached
    after spawning ``children_spawned`` per-trial seeds from a child (E6 does
    this: the flooding trials consume the first children of each per-``k``
    stream, the meeting-time estimator the next ones).
    """
    sequence = np.random.SeedSequence(
        entropy=int(seed),
        spawn_key=tuple(int(k) for k in spawn_key),
        n_children_spawned=int(children_spawned),
    )
    return np.random.default_rng(sequence)


@dataclass(frozen=True)
class ExperimentJob:
    """One engine workload of an experiment: a uniquely tagged trial batch."""

    tag: str
    spec: TrialSpec

    def store_key(self) -> str:
        """Content key of this job's batch record in a result store."""
        return batch_store_key(self.spec)


@dataclass(frozen=True)
class ExperimentPlan:
    """A compiled experiment: declarative jobs plus a pure assembly function.

    Attributes
    ----------
    experiment_id / scale / seed:
        The compilation inputs (re-compiling with the same inputs yields an
        equivalent plan — same specs, same store keys).
    jobs:
        The engine workloads, in deterministic order.  Sharding partitions
        this tuple by stride.
    assemble:
        Maps ``{job tag: flooding-time samples}`` to the final
        :class:`~repro.experiments.report.ExperimentReport`.  Pure given the
        compilation inputs: bounds, mixing times and the non-engine
        Monte-Carlo quantities are derived deterministically from
        ``(scale, seed)``, so assembly from live results and assembly from
        store records produce identical reports.
    """

    experiment_id: str
    scale: str
    seed: int
    jobs: tuple[ExperimentJob, ...]
    assemble: Callable[[Mapping[str, Sequence[int]]], ExperimentReport]

    def __post_init__(self) -> None:
        tags = [job.tag for job in self.jobs]
        if len(set(tags)) != len(tags):
            raise ValueError(f"job tags must be unique, got {tags}")

    def shard_jobs(self, index: int, count: int) -> tuple[ExperimentJob, ...]:
        """Jobs ``index, index+count, index+2*count, ...`` of this plan."""
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        if not 0 <= index < count:
            raise ValueError(f"shard index must lie in [0, {count}), got {index}")
        return self.jobs[index::count]


@dataclass(frozen=True)
class PipelineRun:
    """Outcome of executing (part of) a plan through the engine.

    ``report`` is ``None`` for sharded executions: a shard persists its full
    batch records to the attached store and the report is assembled later,
    from the merged stores, by :func:`assemble_from_store`.
    """

    plan: ExperimentPlan
    batches: dict[str, BatchResult]
    report: Optional[ExperimentReport]
    shard: Optional[tuple[int, int]] = None

    @property
    def num_cached(self) -> int:
        """How many of the executed jobs were served from the store."""
        return sum(1 for batch in self.batches.values() if batch.from_cache)


def compile_experiment(
    experiment_id: str, scale: str = "small", seed: int = 0
) -> ExperimentPlan:
    """Compile a registered experiment id + scale + seed into a plan."""
    # Imported lazily: the registry's plan builders use this module's types.
    from repro.experiments.registry import get_experiment

    return get_experiment(experiment_id).planner(scale, int(seed))


def execute_plan(
    plan: ExperimentPlan,
    engine: Optional[Engine] = None,
    shard: Optional[tuple[int, int]] = None,
) -> PipelineRun:
    """Run a compiled plan (or one shard of it) through an engine.

    With ``shard=(i, K)`` only jobs ``i, i+K, ...`` execute; each persists
    its *full* batch record to the engine's store (when one is attached), so
    merging the ``K`` shard stores is a plain union that reproduces the
    unsharded store byte-for-byte.  An empty shard still touches the store
    file so every shard yields a mergeable artifact.
    """
    if engine is None:
        engine = Engine()
    with telemetry.span(
        "experiment.plan",
        experiment=plan.experiment_id,
        scale=plan.scale,
        shard=None if shard is None else f"{shard[0]}/{shard[1]}",
    ) as plan_span:
        if shard is None:
            jobs = plan.jobs
        else:
            jobs = plan.shard_jobs(*shard)
            if engine.store is not None:
                engine.store.touch()
        batches = {job.tag: engine.run(job.spec) for job in jobs}
        plan_span.add(jobs=len(batches))
        report = None
        if shard is None:
            report = plan.assemble(
                {tag: list(batch.flooding_times) for tag, batch in batches.items()}
            )
        return PipelineRun(plan=plan, batches=batches, report=report, shard=shard)


def run_experiment_pipeline(
    experiment_id: str,
    scale: str = "small",
    seed: int = 0,
    engine: Optional[Engine] = None,
    shard: Optional[tuple[int, int]] = None,
) -> PipelineRun:
    """Compile and execute one experiment (the CLI's ``repro experiment`` path)."""
    plan = compile_experiment(experiment_id, scale=scale, seed=seed)
    return execute_plan(plan, engine=engine, shard=shard)


def plan_store_keys(plan: ExperimentPlan) -> list[str]:
    """The store keys of every job of a plan, in job order.

    The fan-in side of fleet execution uses these as a completeness check: a
    merged store that holds all of them can assemble the report offline; a
    missing key names the job whose shard never ran or never merged.
    """
    return [job.store_key() for job in plan.jobs]


def assemble_from_store(plan: ExperimentPlan, store: ResultStore) -> ExperimentReport:
    """Assemble a plan's report purely from stored records (no execution).

    This is the fan-in path: after ``K`` sharded runs were merged into one
    store, the full report is rebuilt offline.  Raises
    :class:`MissingRecordError` if any job's record is absent (e.g. a shard
    was never run or never merged), naming the job so the operator knows
    which shard to re-run.
    """
    samples: dict[str, list[int]] = {}
    for job in plan.jobs:
        record = store.get(job.store_key())
        if record is None:
            raise MissingRecordError(
                f"store {store.path} holds no record for job {job.tag!r} of "
                f"{plan.experiment_id} (scale={plan.scale}, seed={plan.seed}); "
                f"run or merge the shard owning that job first"
            )
        samples[job.tag] = [int(time) for time in record["flooding_times"]]
    return plan.assemble(samples)
