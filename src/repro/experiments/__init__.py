"""Experiment harness reproducing every analytical result of the paper.

The paper (a PODC theory paper) has no numbered tables or figures; its
"evaluation" is the set of bounds in Theorem 1, Theorem 3, Corollaries 4–6
and Appendix A, plus explicit comparisons against prior bounds.  Each of
those results is reproduced as a registered experiment (E1–E10, see
DESIGN.md): a parameter sweep that measures empirical flooding times and
reports them next to the corresponding bound formula and baselines.

* :mod:`repro.experiments.runner` — generic sweep/measurement machinery;
* :mod:`repro.experiments.registry` — the experiment definitions ``E1``–``E10``
  as declarative plan builders (engine ``TrialSpec`` jobs + assembly);
* :mod:`repro.experiments.pipeline` — compiles an experiment into an
  :class:`~repro.experiments.pipeline.ExperimentPlan` and executes it through
  :class:`repro.engine.Engine` (worker pools, shards, result-store caching,
  store-only assembly);
* :mod:`repro.experiments.report` — text/markdown table rendering used by the
  benchmarks and EXPERIMENTS.md.
"""

from repro.experiments.pipeline import (
    ExperimentJob,
    ExperimentPlan,
    MissingRecordError,
    PipelineRun,
    assemble_from_store,
    compile_experiment,
    execute_plan,
    run_experiment_pipeline,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.report import ExperimentReport, format_markdown, format_table
from repro.experiments.runner import (
    SweepMeasurement,
    measure_flooding_sweep,
    sweep_as_dicts,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentJob",
    "ExperimentPlan",
    "ExperimentReport",
    "MissingRecordError",
    "PipelineRun",
    "SweepMeasurement",
    "assemble_from_store",
    "compile_experiment",
    "execute_plan",
    "format_markdown",
    "format_table",
    "get_experiment",
    "measure_flooding_sweep",
    "run_experiment",
    "run_experiment_pipeline",
    "sweep_as_dicts",
]
