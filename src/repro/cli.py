"""Command-line interface: run experiments and flooding simulations from a shell.

Usage (after ``pip install -e .``)::

    repro experiments list
    repro experiments run E3 --scale small --seed 1
    repro experiments run-all --markdown --output EXPERIMENTS.md --json report.json
    repro experiment E7 --scale small --workers 4 --results-dir .repro-results
    repro experiment E7 --shard 2/4 --results-dir shard2
    repro experiment E7 --results-dir merged --merge shard0 shard1 shard2 shard3
    repro flood edge-meg --nodes 200 --p 0.0025 --q 0.5 --trials 10
    repro flood waypoint --nodes 100 --side 10 --radius 1 --speed 1
    repro flood grid-walk --nodes 64 --grid-side 8 --radius 1
    repro flood edge-meg --nodes 256 --workers 4 --backend vectorized \
        --results-dir .repro-results --json run.json
    repro sweep edge-meg --nodes 64,128,256 --trials 30 --seed 7 \
        --shard 0/3 --results-dir shard0
    repro sweep edge-meg --nodes 64,128,256 --trials 400 --seed 7 \
        --target-ci 5.0 --results-dir .repro-results
    repro merge-results merged.jsonl shard0 shard1 shard2
    repro fleet run sweep edge-meg --nodes 64,128 --trials 30 --seed 7 \
        --shards 6 --local-workers 2 --spool spool --results-dir merged
    repro fleet run experiment E7 --scale small --seed 3 --shards 2 \
        --local-workers 2 --spool exp-spool --results-dir merged-exp
    repro fleet run sweep edge-meg --nodes 64,128 --trials 30 --seed 7 \
        --shards 6 --spool spool --results-dir merged --resume
    repro fleet run sweep edge-meg --nodes 64,128 --trials 400 --seed 7 \
        --target-ci 5.0 --shards 4 --local-workers 2 --spool spool \
        --results-dir merged
    repro worker --spool /mnt/shared/spool
    repro fleet status spool
    repro serve --spool spool --results-dir store --port 8080

The ``flood`` subcommand reports the measured flooding-time statistics next
to the paper's bound for the chosen model, mirroring what the examples do in
code.  All trial execution goes through :class:`repro.engine.Engine`:
``--workers`` fans trials out over a process pool (samples are bit-identical
at any worker count), ``--backend`` selects the flooding kernel, and
``--results-dir`` attaches a persistent result store so re-runs with the
same model, parameters and seed are served from cache.  ``--json`` writes
the run's machine-readable results to a file for cross-run tracking.

The ``sweep`` subcommand runs a node-count sweep of a model family through
the sweep runner, and ``--shard i/K`` restricts the run to every ``K``-th
trial (offset ``i``) of each sweep point *with the exact seeds the unsharded
sweep would use* — so ``K`` shard jobs on ``K`` machines, merged afterwards
with ``merge-results``, store results bit-identical to one unsharded run.
``--target-ci W`` makes the sweep adaptive (:mod:`repro.stats.sequential`):
each point stops as soon as its confidence interval is within ``±W``, with
``--trials`` as the budget cap; the realized trial count depends only on the
seed and the rule, never on worker count.  ``repro fleet run sweep
--target-ci`` instead runs a local pilot round per point and shards a
variance-sized fixed budget across the fleet.

The ``experiment`` subcommand runs one registered experiment (E1-E10)
through the engine pipeline: the experiment compiles into a batch of tagged
``TrialSpec`` jobs, ``--shard i/K`` executes only jobs ``i, i+K, ...`` (each
persisted as a full batch record), and ``--merge`` unions shard stores and
assembles the report purely from store records — the fan-out/fan-in path the
CI experiment matrix exercises per push.

The ``fleet`` and ``worker`` subcommands automate the fan-out/fan-in
entirely (:mod:`repro.fleet`): ``repro fleet run`` compiles a sweep or
experiment into ``K`` shard jobs in a crash-safe file spool, drives local
and/or external ``repro worker`` processes to drain it (leases, heartbeats,
expiry requeue, bounded retries), and fans in to a merged store and report
byte-identical to a one-shot run.  ``--resume`` reuses a partially drained
spool instead of demanding a fresh one.  ``repro fleet status`` inspects a
spool.

``repro serve`` exposes the same workloads over HTTP (:mod:`repro.serve`):
POST a JSON work request and a *warm* query — one whose content-addressed
store keys are already present in ``--results-dir`` — is answered straight
from the store with zero simulation, while a *cold* one is compiled into
fleet jobs on ``--spool`` for external workers to drain, pollable by
ticket.  Every entry point above compiles requests through one seam,
:mod:`repro.api`, so a request means the same store keys whichever door it
comes through.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from typing import Optional, Sequence

from repro import __version__
from repro.api import (
    RequestError,
    compile_request,
    estimator_description,
    experiment_plan,
    experiment_request,
    flood_request,
    sweep_request,
)
from repro.core.bounds import (
    classic_edge_meg_bound,
    corollary6_bound,
    waypoint_flooding_bound,
)
from repro.engine import (
    BACKENDS,
    EXECUTORS,
    Engine,
    MergeConflictError,
    ResultStore,
    jsonify,
    parse_shard,
)
from repro.experiments.pipeline import (
    MissingRecordError,
    assemble_from_store,
    execute_plan,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import format_markdown, format_table
from repro.experiments.runner import run_sweep_specs, sweep_as_dicts
from repro.fleet import (
    FleetError,
    JobSpool,
    assemble_experiment_report,
    format_status,
    gather_frame,
    merge_fleet_stores,
    plan_variance_budgets,
    request_job_payloads,
    run_fleet,
    run_top,
    run_worker,
    spool_metrics,
    spool_status,
    status_as_dict,
    sweep_results_from_store,
)
from repro.fleet.top import DEFAULT_INTERVAL as TOP_DEFAULT_INTERVAL
from repro.serve import DEFAULT_MAX_QUEUE, SimulationService, create_server
from repro.stats.sequential import StoppingRule
# The family factories moved to repro.sweeps (shared with the fleet worker);
# the redundant ``as`` aliases are explicit re-exports keeping the historical
# ``repro.cli`` names importable.
from repro.sweeps import (
    SWEEP_FAMILIES as SWEEP_FAMILIES,
    SWEEP_FAMILY_DEFAULTS,
    sweep_edge_meg_model as sweep_edge_meg_model,
    sweep_grid_walk_model as sweep_grid_walk_model,
    sweep_waypoint_model as sweep_waypoint_model,
)
from repro.telemetry import core as telemetry_core
from repro.telemetry.log import configure as configure_logging
from repro.telemetry.report import format_report, load_events, summarize_events
from repro.telemetry.timeseries import (
    DEFAULT_WINDOW_SECONDS,
    TelemetryTailer,
    validate_exposition,
)
from repro.telemetry.trace import format_trace, list_traces, summarize_trace
from repro.util.stats import halfwidth, summarize

#: Environment fallback for ``--telemetry`` (any command that supports it).
TELEMETRY_ENV = "REPRO_TELEMETRY"


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _telemetry_dir(args: argparse.Namespace) -> Optional[str]:
    """The run's telemetry directory: ``--telemetry`` flag, env fallback."""
    return getattr(args, "telemetry_dir", None) or os.environ.get(TELEMETRY_ENV) or None


def _int_list(text: str) -> list[int]:
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers, got {text!r}")
    if not values:
        raise argparse.ArgumentTypeError("expected at least one integer")
    return values


def _shard_argument(text: str) -> tuple[int, int]:
    try:
        return parse_shard(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Information Spreading in Dynamic Graphs' (PODC 2012)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}",
        help="print the package version and exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Engine options shared by every trial-running subcommand.
    engine_options = argparse.ArgumentParser(add_help=False)
    engine_options.add_argument(
        "--workers", type=_positive_int, default=1,
        help="worker processes for the trial engine (1 = in-process)",
    )
    engine_options.add_argument(
        "--backend", choices=BACKENDS, default="auto",
        help="flooding kernel: auto, set (python loop), vectorized (dense NumPy) "
             "or sparse (CSR matvec)",
    )
    engine_options.add_argument(
        "--executor", choices=EXECUTORS, default="process",
        help="pool kind when --workers > 1: process (CPU parallelism, default) "
             "or thread (cheap start-up, IO-bound models); samples are "
             "bit-identical either way",
    )
    engine_options.add_argument(
        "--results-dir", default=None,
        help="directory of the persistent result store (enables caching)",
    )
    engine_options.add_argument(
        "--source-chunk", type=_positive_int, default=None, metavar="B",
        help="cap the sources flooded per kernel pass; wider batches record "
             "the realization once and replay it (identical results, "
             "bounded memory)",
    )
    engine_options.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="write machine-readable results to PATH",
    )

    # Observability flags shared by every execution subcommand.  Telemetry is
    # strictly opt-in: without --telemetry (or REPRO_TELEMETRY) the tracer is
    # a no-op, and enabling it never changes any computed result.
    observability_options = argparse.ArgumentParser(add_help=False)
    observability_options.add_argument(
        "--telemetry", dest="telemetry_dir", default=None, metavar="DIR",
        help="write per-process telemetry event files (spans, metrics) into "
             "DIR; merge them later with `repro telemetry report DIR` "
             f"(default: the {TELEMETRY_ENV} environment variable)",
    )
    observability_options.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="stdlib logging level for the repro loggers (debug, info, "
             "warning, ...; default: info, or the REPRO_LOG_LEVEL variable)",
    )

    # Batched-source estimators apply to flood/sweep, not to the registered
    # experiments (whose estimators are part of the experiment definition).
    source_parent = argparse.ArgumentParser(add_help=False)
    source_options = source_parent.add_mutually_exclusive_group()
    source_options.add_argument(
        "--all-sources", action="store_true",
        help="flood from every node of each realization in one batch and "
             "report the worst-case flooding time per trial",
    )
    source_options.add_argument(
        "--source-sample", type=_positive_int, default=None, metavar="K",
        help="flood from K sampled sources of each realization in one batch "
             "and report the worst flooding time per trial",
    )

    experiments = subparsers.add_parser(
        "experiments", help="run the registered experiments E1-E10"
    )
    experiments_sub = experiments.add_subparsers(dest="experiments_command", required=True)
    experiments_sub.add_parser("list", help="list the registered experiments")
    run_one = experiments_sub.add_parser("run", help="run a single experiment")
    run_one.add_argument("experiment_id", choices=sorted(EXPERIMENTS, key=lambda e: int(e[1:])))
    run_one.add_argument("--scale", choices=("small", "full"), default="small")
    run_one.add_argument("--seed", type=int, default=0)
    run_one.add_argument("--markdown", action="store_true", help="render as markdown")
    run_one.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="write the report rows as JSON to PATH",
    )
    run_all = experiments_sub.add_parser("run-all", help="run every experiment")
    run_all.add_argument("--scale", choices=("small", "full"), default="small")
    run_all.add_argument("--seed", type=int, default=0)
    run_all.add_argument("--markdown", action="store_true")
    run_all.add_argument("--output", default=None, help="write the report to a file")
    run_all.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="write every report's rows as JSON to PATH",
    )

    experiment = subparsers.add_parser(
        "experiment", parents=[engine_options, observability_options],
        help="run one registered experiment (E1-E10) through the engine "
             "pipeline (shardable across machines)",
    )
    experiment.add_argument(
        "experiment_id", choices=sorted(EXPERIMENTS, key=lambda e: int(e[1:]))
    )
    experiment.add_argument("--scale", choices=("small", "full"), default="small")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument(
        "--shard", type=_shard_argument, default=None, metavar="i/K",
        help="run only jobs i, i+K, i+2K, ... of the compiled experiment, "
             "persisting full batch records to --results-dir (required); "
             "merged shard stores are byte-identical to an unsharded run's",
    )
    experiment.add_argument(
        "--merge", nargs="*", default=None, metavar="STORE",
        help="merge the given shard STOREs into --results-dir (required) and "
             "assemble the report purely from store records, executing "
             "nothing; with no STOREs, assemble from --results-dir as-is",
    )
    experiment.add_argument("--markdown", action="store_true", help="render as markdown")

    flood = subparsers.add_parser("flood", help="measure flooding on a chosen model")
    flood_sub = flood.add_subparsers(dest="model", required=True)

    edge_meg = flood_sub.add_parser(
        "edge-meg", parents=[engine_options, source_parent, observability_options],
        help="classic edge-MEG with birth/death rates",
    )
    edge_meg.add_argument("--nodes", type=int, default=100)
    edge_meg.add_argument("--p", type=float, default=0.01, help="edge birth rate")
    edge_meg.add_argument("--q", type=float, default=0.5, help="edge death rate")
    edge_meg.add_argument("--trials", type=int, default=10)
    edge_meg.add_argument("--seed", type=int, default=0)

    waypoint = flood_sub.add_parser(
        "waypoint", parents=[engine_options, source_parent, observability_options],
        help="random waypoint over a square",
    )
    waypoint.add_argument("--nodes", type=int, default=100)
    waypoint.add_argument("--side", type=float, default=10.0)
    waypoint.add_argument("--radius", type=float, default=1.0)
    waypoint.add_argument("--speed", type=float, default=1.0)
    waypoint.add_argument("--trials", type=int, default=5)
    waypoint.add_argument("--seed", type=int, default=0)

    grid_walk = flood_sub.add_parser(
        "grid-walk", parents=[engine_options, source_parent, observability_options],
        help="random walks over a grid mobility graph",
    )
    grid_walk.add_argument("--nodes", type=int, default=64)
    grid_walk.add_argument("--grid-side", type=int, default=8)
    grid_walk.add_argument("--augment-k", type=int, default=1, help="k-augmentation of the grid")
    grid_walk.add_argument("--trials", type=int, default=5)
    grid_walk.add_argument("--seed", type=int, default=0)

    # Per-family model parameters, shared between `sweep` and `fleet run sweep`.
    # Flags, types and defaults are generated from SWEEP_FAMILY_DEFAULTS — the
    # same table the request facade canonicalizes against — so the CLI can
    # never drift from what `repro serve` and the fleet accept.
    param_help = {
        "q": "edge death rate",
        "avg_degree": "expected stationary degree",
    }
    family_params = {}
    for family, defaults in SWEEP_FAMILY_DEFAULTS.items():
        family_parser = argparse.ArgumentParser(add_help=False)
        for name, default in defaults.items():
            family_parser.add_argument(
                "--" + name.replace("_", "-"), type=type(default), default=default,
                help=param_help.get(name),
            )
        family_params[family] = family_parser
    family_help = {
        "edge-meg": "edge-MEG at constant expected degree",
        "waypoint": "random waypoint over a fixed square",
        "grid-walk": "random walks over a fixed augmented grid",
    }

    sweep_points = argparse.ArgumentParser(add_help=False)
    sweep_points.add_argument(
        "--nodes", type=_int_list, default=[64, 128, 256], metavar="N1,N2,...",
        help="comma-separated node counts (the sweep points)",
    )
    sweep_points.add_argument("--trials", type=_positive_int, default=10)
    sweep_points.add_argument("--seed", type=int, default=0)

    sweep = subparsers.add_parser(
        "sweep",
        help="run a node-count sweep of a model family (shardable across machines)",
    )
    sweep_sub = sweep.add_subparsers(dest="family", required=True)
    sweep_common = argparse.ArgumentParser(add_help=False)
    sweep_common.add_argument(
        "--shard", type=_shard_argument, default=None, metavar="i/K",
        help="run only shard i of K: trials i, i+K, i+2K, ... of every sweep "
             "point, with the exact seeds the unsharded sweep would use",
    )
    adaptive_sweep = argparse.ArgumentParser(add_help=False)
    adaptive_sweep.add_argument(
        "--target-ci", type=float, default=None, metavar="W",
        help="adaptive sampling: stop each sweep point once the confidence "
             "interval around its mean is within ±W (--trials caps the "
             "budget; same seed => same realized trial count at any worker "
             "count)",
    )
    adaptive_sweep.add_argument(
        "--ci-confidence", type=float, default=0.95, metavar="C",
        help="confidence level of the stopping CI (default 0.95)",
    )
    adaptive_sweep.add_argument(
        "--min-trials", type=_positive_int, default=16, metavar="N",
        help="trials to run before the stopping rule may fire (default 16)",
    )
    adaptive_sweep.add_argument(
        "--check-every", type=_positive_int, default=16, metavar="N",
        help="evaluate the stopping rule every N trials (default 16)",
    )
    for family in SWEEP_FAMILIES:
        sweep_sub.add_parser(
            family,
            parents=[engine_options, source_parent, sweep_points, sweep_common,
                     adaptive_sweep, observability_options, family_params[family]],
            help=family_help[family],
        )

    merge = subparsers.add_parser(
        "merge-results",
        help="union result stores (reassembling sharded batches) into one store",
    )
    merge.add_argument(
        "output",
        help="destination store: a .jsonl file or a directory (results.jsonl inside)",
    )
    merge.add_argument(
        "sources", nargs="+",
        help="source stores: .jsonl files or directories holding results.jsonl",
    )

    worker = subparsers.add_parser(
        "worker", parents=[observability_options],
        help="run a fleet worker daemon: lease jobs from a spool, execute, "
             "heartbeat, mark done/failed",
    )
    worker.add_argument("--spool", required=True, help="shared spool directory")
    worker.add_argument(
        "--worker-id", default=None,
        help="identity recorded in lease metadata (default: hostname-pid)",
    )
    worker.add_argument(
        "--poll", type=float, default=0.5, help="seconds between idle spool scans"
    )
    worker.add_argument(
        "--lease-ttl", type=float, default=None, metavar="S",
        help="seconds of heartbeat silence before a lease is presumed dead "
             "(default: the spool's persisted configuration)",
    )
    worker.add_argument(
        "--max-attempts", type=_positive_int, default=None, metavar="N",
        help="total execution attempts per job before it is marked failed "
             "(default: the spool's persisted configuration)",
    )
    worker.add_argument(
        "--max-jobs", type=_positive_int, default=None, metavar="N",
        help="exit after executing N jobs (worker recycling)",
    )
    worker.add_argument(
        "--exit-when-empty", action="store_true",
        help="exit once every job has reached a terminal state instead of "
             "polling forever",
    )
    worker.add_argument(
        "--profile", action="store_true",
        help="run each job under cProfile and write its top hotspots into "
             "the telemetry directory (needs --telemetry)",
    )

    fleet = subparsers.add_parser(
        "fleet", help="drive a whole sharded workload through a worker fleet"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_options = argparse.ArgumentParser(add_help=False)
    fleet_options.add_argument(
        "--spool", required=True,
        help="spool directory (fresh per run; shared across machines for "
             "multi-machine fleets)",
    )
    fleet_options.add_argument(
        "--shards", type=_positive_int, required=True, metavar="K",
        help="number of shard jobs to compile the workload into",
    )
    fleet_options.add_argument(
        "--local-workers", type=int, default=0, metavar="N",
        help="drain-mode worker processes to spawn locally (0 = external "
             "fleet: run `repro worker --spool DIR` elsewhere)",
    )
    fleet_options.add_argument(
        "--lease-ttl", type=float, default=None, metavar="S",
        help="seconds of heartbeat silence before a lease is requeued",
    )
    fleet_options.add_argument(
        "--max-attempts", type=_positive_int, default=None, metavar="N",
        help="total execution attempts per job before it is marked failed",
    )
    fleet_options.add_argument(
        "--poll", type=float, default=0.2, help="monitor seconds between spool scans"
    )
    fleet_options.add_argument(
        "--max-wait", type=float, default=None, metavar="S",
        help="abort (leaving the spool for inspection) after S seconds",
    )
    fleet_options.add_argument(
        "--profile", action="store_true",
        help="spawned local workers run each job under cProfile, writing "
             "hotspots into the telemetry directory (needs --telemetry)",
    )
    fleet_options.add_argument(
        "--resume", action="store_true",
        help="reuse a partially drained spool: keep completed jobs' verified "
             "results, re-enqueue failed or missing ones — instead of "
             "rejecting the workload's deterministic job ids as duplicates",
    )

    fleet_adaptive = argparse.ArgumentParser(add_help=False)
    fleet_adaptive.add_argument(
        "--target-ci", type=float, default=None, metavar="W",
        help="variance-aware sizing: run a local pilot round per sweep "
             "point, then shard a derived fixed budget sized so each CI "
             "half-width lands within ±W (--trials caps each budget)",
    )
    fleet_adaptive.add_argument(
        "--ci-confidence", type=float, default=0.95, metavar="C",
        help="confidence level of the sizing CI (default 0.95)",
    )
    fleet_adaptive.add_argument(
        "--pilot-trials", type=_positive_int, default=16, metavar="N",
        help="pilot trials per sweep point used to estimate variance "
             "(default 16; also the per-point budget floor)",
    )

    fleet_run = fleet_sub.add_parser(
        "run", help="compile, execute and fan in one workload"
    )
    fleet_run_sub = fleet_run.add_subparsers(dest="workload", required=True)
    fleet_sweep = fleet_run_sub.add_parser(
        "sweep", help="fleet-execute a node-count sweep of a model family"
    )
    fleet_sweep_sub = fleet_sweep.add_subparsers(dest="family", required=True)
    for family in SWEEP_FAMILIES:
        fleet_sweep_sub.add_parser(
            family,
            parents=[engine_options, source_parent, sweep_points, fleet_options,
                     fleet_adaptive, observability_options, family_params[family]],
            help=family_help[family],
        )
    fleet_experiment = fleet_run_sub.add_parser(
        "experiment", parents=[engine_options, fleet_options, observability_options],
        help="fleet-execute one registered experiment (E1-E10)",
    )
    fleet_experiment.add_argument(
        "experiment_id", choices=sorted(EXPERIMENTS, key=lambda e: int(e[1:]))
    )
    fleet_experiment.add_argument("--scale", choices=("small", "full"), default="small")
    fleet_experiment.add_argument("--seed", type=int, default=0)
    fleet_experiment.add_argument(
        "--markdown", action="store_true", help="render the report as markdown"
    )

    fleet_status = fleet_sub.add_parser(
        "status",
        help="inspect a spool: progress, leases, heartbeats, failures, "
             "throughput metrics",
    )
    fleet_status.add_argument("spool", help="spool directory to inspect")
    fleet_status.add_argument(
        "--json", dest="as_json", action="store_true",
        help="emit the status snapshot (including jobs/s, requeue rate and "
             "the heartbeat-age distribution) as JSON on stdout",
    )

    fleet_top = fleet_sub.add_parser(
        "top",
        help="live dashboard over a draining spool: queue depths, per-worker "
             "utilization and heartbeat age, throughput, drain ETA, slowest "
             "in-flight jobs (refreshes until Ctrl-C)",
    )
    fleet_top.add_argument("spool", help="spool directory to watch")
    fleet_top.add_argument(
        "--telemetry", dest="telemetry_dir", default=None, metavar="DIR",
        help="the fleet's shared telemetry directory: adds windowed "
             "throughput, latency quantiles, worker utilization and the "
             f"in-flight panel (default: the {TELEMETRY_ENV} variable)",
    )
    fleet_top.add_argument(
        "--interval", type=float, default=TOP_DEFAULT_INTERVAL, metavar="S",
        help=f"seconds between refreshes (default {TOP_DEFAULT_INTERVAL:g})",
    )
    fleet_top.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (no screen clearing)",
    )
    fleet_top.add_argument(
        "--until-drained", action="store_true",
        help="exit once every job has reached a terminal state",
    )
    fleet_top.add_argument(
        "--json", dest="as_json", action="store_true",
        help="with --once: print the frame's data as JSON instead of text",
    )
    fleet_top.add_argument(
        "--width", type=_positive_int, default=80, metavar="COLS",
        help="frame width in columns (default 80)",
    )

    serve = subparsers.add_parser(
        "serve", parents=[observability_options],
        help="serve simulation results over HTTP: warm requests answered "
             "straight from the result store, cold ones enqueued as fleet "
             "jobs and pollable by ticket",
    )
    serve.add_argument(
        "--spool", required=True,
        help="job spool cold requests are enqueued into (drain it with "
             "`repro worker --spool DIR` on any number of machines)",
    )
    serve.add_argument(
        "--results-dir", required=True,
        help="result store warm requests are answered from (and cold "
             "results merged into)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="bind port (0 = pick a free ephemeral port)",
    )
    serve.add_argument(
        "--max-queue", type=_positive_int, default=DEFAULT_MAX_QUEUE, metavar="N",
        help="maximum in-flight spool jobs before cold requests are refused "
             f"with 429 (default {DEFAULT_MAX_QUEUE})",
    )
    serve.add_argument(
        "--default-shards", type=_positive_int, default=1, metavar="K",
        help="shard jobs a cold request compiles into when the request "
             "carries no 'shards' hint (default 1)",
    )
    serve.add_argument(
        "--job-workers", type=_positive_int, default=1, metavar="N",
        help="engine worker processes each fleet job runs with",
    )
    serve.add_argument(
        "--job-backend", choices=BACKENDS, default="auto",
        help="flooding kernel each fleet job runs with",
    )

    telemetry_cmd = subparsers.add_parser(
        "telemetry", help="inspect telemetry directories written with --telemetry"
    )
    telemetry_sub = telemetry_cmd.add_subparsers(dest="telemetry_command", required=True)
    telemetry_report_cmd = telemetry_sub.add_parser(
        "report",
        help="merge a telemetry directory's per-process event files into one "
             "run summary: phase breakdown, store hit rate, worker "
             "utilization, slowest jobs, requeue forensics",
    )
    telemetry_report_cmd.add_argument("directory", help="telemetry directory to merge")
    telemetry_report_cmd.add_argument(
        "--top", type=_positive_int, default=5, metavar="N",
        help="slowest jobs to list (default 5)",
    )
    telemetry_report_cmd.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="write the merged summary as JSON to PATH",
    )
    telemetry_trace_cmd = telemetry_sub.add_parser(
        "trace",
        help="reconstruct one propagated trace across processes: the span "
             "tree (serve request -> spool wait -> worker lease -> engine "
             "chunks) with critical-path timing; omit the id to list the "
             "traces a directory holds",
    )
    telemetry_trace_cmd.add_argument(
        "trace_id", nargs="?", default=None,
        help="trace id (from an X-Trace-Id response header, a ticket "
             "record, or `repro telemetry trace` with no id)",
    )
    telemetry_trace_cmd.add_argument(
        "--telemetry", dest="telemetry_dir", default=None, metavar="DIR",
        help="telemetry directory holding the run's event files "
             f"(default: the {TELEMETRY_ENV} environment variable)",
    )
    telemetry_trace_cmd.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="write the reconstructed trace (or the trace list) as JSON",
    )
    telemetry_export_cmd = telemetry_sub.add_parser(
        "export",
        help="render a telemetry directory as Prometheus text exposition "
             "(counters, gauges, timing summaries, windowed jobs/s + "
             "latency quantiles + requeue rate, cache hit ratio)",
    )
    telemetry_export_cmd.add_argument(
        "--telemetry", dest="telemetry_dir", default=None, metavar="DIR",
        help="telemetry directory holding the run's event files "
             f"(default: the {TELEMETRY_ENV} environment variable)",
    )
    telemetry_export_cmd.add_argument(
        "--window", type=float, default=DEFAULT_WINDOW_SECONDS, metavar="S",
        help="sliding window for rates and latency quantiles "
             f"(default {DEFAULT_WINDOW_SECONDS:g}s)",
    )
    telemetry_export_cmd.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="byte-offset checkpoint file: resume tailing where the last "
             "export stopped instead of re-reading history, and save the "
             "new position on exit",
    )
    telemetry_export_cmd.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the exposition to PATH instead of stdout",
    )
    telemetry_export_cmd.add_argument(
        "--check", action="store_true",
        help="strictly validate the exposition before emitting it "
             "(exit 1 on malformed output; what CI's metrics smoke runs)",
    )

    return parser


def _build_engine(args: argparse.Namespace) -> Engine:
    """Engine configured from the shared --workers/--backend/--results-dir flags."""
    store = None
    if getattr(args, "results_dir", None):
        store = ResultStore(args.results_dir)
    return Engine(
        workers=getattr(args, "workers", 1),
        backend=getattr(args, "backend", "auto"),
        executor=getattr(args, "executor", "process"),
        store=store,
        source_chunk=getattr(args, "source_chunk", None),
    )


def _write_json(path: str, payload) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(jsonify(payload), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")


def _run_experiments(args: argparse.Namespace) -> int:
    renderer = format_markdown if getattr(args, "markdown", False) else format_table
    if args.experiments_command == "list":
        for experiment_id in sorted(EXPERIMENTS, key=lambda e: int(e[1:])):
            experiment = EXPERIMENTS[experiment_id]
            print(f"{experiment_id}: {experiment.title}  [{experiment.paper_reference}]")
        return 0
    if args.experiments_command == "run":
        report = run_experiment(args.experiment_id, scale=args.scale, seed=args.seed)
        print(renderer(report))
        if args.json_path:
            _write_json(args.json_path, report.as_dict())
        return 0
    # run-all
    sections = []
    reports = []
    for experiment_id in sorted(EXPERIMENTS, key=lambda e: int(e[1:])):
        report = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
        reports.append(report)
        sections.append(renderer(report))
    output = "\n\n".join(sections)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(output + "\n")
        print(f"wrote {args.output}")
    else:
        print(output)
    if args.json_path:
        _write_json(args.json_path, [report.as_dict() for report in reports])
    return 0


def _run_experiment_pipeline(args: argparse.Namespace) -> int:
    renderer = format_markdown if args.markdown else format_table
    if args.shard is not None and args.merge is not None:
        print("error: --shard and --merge are mutually exclusive", file=sys.stderr)
        return 2
    if (args.shard is not None or args.merge is not None) and not args.results_dir:
        print(
            "error: --shard and --merge need --results-dir (the store that "
            "carries results between the fan-out and fan-in steps)",
            file=sys.stderr,
        )
        return 2
    engine = _build_engine(args)
    plan = experiment_plan(
        experiment_request(args.experiment_id, scale=args.scale, seed=args.seed)
    )

    if args.merge is not None:
        store = engine.store
        assert store is not None  # enforced above
        if args.merge:
            try:
                merge_report = store.merge(*args.merge)
            except (MergeConflictError, FileNotFoundError) as error:
                print(f"merge failed: {error}", file=sys.stderr)
                return 1
            print(
                f"merged {len(args.merge)} store(s) into {store.path} "
                f"({merge_report.records} records, {merge_report.adopted} adopted)"
            )
        try:
            report = assemble_from_store(plan, store)
        except MissingRecordError as error:
            print(f"assembly failed: {error}", file=sys.stderr)
            return 1
        print(renderer(report))
        if args.json_path:
            _write_json(args.json_path, report.as_dict())
        return 0

    run = execute_plan(plan, engine=engine, shard=args.shard)
    if args.shard is not None:
        index, count = args.shard
        print(
            f"experiment {plan.experiment_id} (scale={plan.scale}, seed={plan.seed}), "
            f"shard {index}/{count}: {len(run.batches)}/{len(plan.jobs)} jobs"
        )
        print(f"engine: workers={engine.workers}, backend={engine.backend}, "
              f"results-dir={args.results_dir}")
        for tag, batch in run.batches.items():
            print(
                f"  {tag:>16}  trials={batch.num_trials:>4}  mean {batch.mean:8.1f}"
                + ("  [cached]" if batch.from_cache else "")
            )
        if args.json_path:
            _write_json(
                args.json_path,
                {
                    "experiment_id": plan.experiment_id,
                    "scale": plan.scale,
                    "seed": plan.seed,
                    "shard": [index, count],
                    "jobs": [
                        {
                            "tag": tag,
                            "num_trials": batch.num_trials,
                            "flooding_times": list(batch.flooding_times),
                            "from_cache": batch.from_cache,
                        }
                        for tag, batch in run.batches.items()
                    ],
                },
            )
        return 0

    assert run.report is not None
    print(renderer(run.report))
    if run.num_cached:
        print(f"\n({run.num_cached}/{len(run.batches)} job(s) served from the result store)")
    if args.json_path:
        _write_json(args.json_path, run.report.as_dict())
    return 0


def _flood_params(args: argparse.Namespace) -> dict:
    """The chosen flood model's parameters as a request params mapping."""
    if args.model == "edge-meg":
        return {"nodes": args.nodes, "p": args.p, "q": args.q}
    if args.model == "waypoint":
        return {
            "nodes": args.nodes, "side": args.side, "radius": args.radius,
            "speed": args.speed,
        }
    return {
        "nodes": args.nodes, "grid_side": args.grid_side,
        "augment_k": args.augment_k,
    }


def _source_options(args: argparse.Namespace) -> tuple[Optional[str], Optional[int]]:
    """The (sources, num_sources) pair of the shared estimator flags."""
    if args.all_sources:
        return "all", None
    if args.source_sample is not None:
        return None, args.source_sample
    return None, None


def _run_flood(args: argparse.Namespace) -> int:
    sources, num_sources = _source_options(args)
    try:
        plan = compile_request(
            flood_request(
                args.model, args.trials, seed=args.seed, sources=sources,
                num_sources=num_sources, params=_flood_params(args),
            )
        )
    except RequestError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    spec = plan.jobs[0].spec
    model = spec.args[0]

    if args.model == "edge-meg":
        bound = classic_edge_meg_bound(args.nodes, args.p, args.q)
        description = f"edge-MEG(n={args.nodes}, p={args.p}, q={args.q})"
    elif args.model == "waypoint":
        bound = waypoint_flooding_bound(args.nodes, args.side, args.radius, args.speed)
        description = (
            f"random waypoint(n={args.nodes}, L={args.side}, r={args.radius}, v={args.speed})"
        )
    else:  # grid-walk
        from repro.graphs.grid import augmented_grid_graph
        from repro.graphs.properties import degree_regularity
        from repro.markov.mixing import mixing_time

        graph = augmented_grid_graph(args.grid_side, args.augment_k)
        bound = corollary6_bound(
            args.nodes,
            mixing_time(model.to_markov_chain()),
            graph.number_of_nodes(),
            degree_regularity(graph),
        )
        description = (
            f"grid random walk(n={args.nodes}, side={args.grid_side}, k={args.augment_k})"
        )

    engine = _build_engine(args)
    estimator = estimator_description(sources, num_sources)
    samples = list(engine.run(spec).flooding_times)
    summary = summarize(samples)
    print(f"model:  {description}")
    print(f"engine: workers={engine.workers}, backend={engine.backend}"
          + (f", results-dir={args.results_dir}" if args.results_dir else ""))
    print(f"estimator: {estimator} per realization")
    print(f"trials: {summary.count}")
    print(
        "flooding time: "
        f"mean {summary.mean:.1f}, median {summary.median:.1f}, "
        f"min {summary.minimum:.0f}, max {summary.maximum:.0f}"
    )
    print(f"paper bound (constant = 1): {bound:.1f}")
    if args.json_path:
        _write_json(
            args.json_path,
            {
                "model": description,
                "seed": args.seed,
                "engine": {"workers": engine.workers, "backend": engine.backend},
                "estimator": estimator,
                "samples": samples,
                "summary": summary.as_dict(),
                "paper_bound": bound,
            },
        )
    return 0


def _sweep_factory_kwargs(args: argparse.Namespace) -> dict:
    """The chosen family's fixed parameters, as passed to its factory."""
    return {name: getattr(args, name) for name in SWEEP_FAMILY_DEFAULTS[args.family]}


def _sweep_stopping(args: argparse.Namespace) -> Optional[StoppingRule]:
    """The stopping rule a ``--target-ci`` sweep invocation asks for."""
    if getattr(args, "target_ci", None) is None:
        return None
    return StoppingRule(
        target_halfwidth=args.target_ci,
        confidence=args.ci_confidence,
        min_trials=args.min_trials,
        check_every=args.check_every,
    )


def _run_sweep(args: argparse.Namespace) -> int:
    if args.shard is not None and args.shard[1] > args.trials:
        print(
            f"error: shard count {args.shard[1]} exceeds --trials {args.trials} "
            f"(some shards would be empty)",
            file=sys.stderr,
        )
        return 2
    if args.target_ci is not None and args.shard is not None:
        print(
            "error: --target-ci cannot be combined with --shard (the stopping "
            "decision at trial t needs all earlier samples; use `repro fleet "
            "run sweep --target-ci` for multi-machine adaptive sweeps)",
            file=sys.stderr,
        )
        return 2
    engine = _build_engine(args)
    factory_kwargs = _sweep_factory_kwargs(args)
    sources, num_sources = _source_options(args)
    estimator = estimator_description(sources, num_sources)
    try:
        stopping = _sweep_stopping(args)
        plan = compile_request(
            sweep_request(
                args.family, args.nodes, args.trials, seed=args.seed,
                sources=sources, num_sources=num_sources, params=factory_kwargs,
                stopping=stopping,
            )
        )
    except (RequestError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    measurements = run_sweep_specs(
        [job.spec for job in plan.jobs], engine=engine, shard=args.shard
    )
    shard_note = f", shard {args.shard[0]}/{args.shard[1]}" if args.shard else ""
    print(f"sweep:  {args.family} over n = {args.nodes}{shard_note}")
    print(f"engine: workers={engine.workers}, backend={engine.backend}"
          + (f", results-dir={args.results_dir}" if args.results_dir else ""))
    print(f"estimator: {estimator} per realization")
    if stopping is not None:
        print(
            f"adaptive: stop at CI half-width <= {stopping.target_halfwidth:g} "
            f"({stopping.confidence:.0%}), budget {args.trials} trials/point"
        )
    for measurement in measurements:
        summary = measurement.summary
        line = (
            f"  n={measurement.parameter:>6}  trials={summary.count:>4}  "
            f"mean {summary.mean:8.1f}  median {summary.median:8.1f}  "
            f"max {summary.maximum:8.0f}"
        )
        if stopping is not None:
            ci = halfwidth(summary.std, summary.count, stopping.confidence)
            line += f"  ci ±{ci:6.2f}"
            line += "  [stopped early]" if measurement.stopped_early else ""
        line += "  [cached]" if measurement.from_cache else ""
        print(line)
    if args.json_path:
        payload = {
            "family": args.family,
            "nodes": args.nodes,
            "trials": args.trials,
            "seed": args.seed,
            "shard": list(args.shard) if args.shard else None,
            "estimator": estimator,
            "factory_kwargs": factory_kwargs,
            "engine": {"workers": engine.workers, "backend": engine.backend},
            "measurements": sweep_as_dicts(measurements),
        }
        if stopping is not None:
            # Emitted only on adaptive runs so fixed-count sweep JSON stays
            # byte-identical to every release before adaptive sampling.
            payload["stopping"] = stopping.as_dict()
        _write_json(args.json_path, payload)
    return 0


def _run_worker(args: argparse.Namespace) -> int:
    telemetry_dir = _telemetry_dir(args)
    if args.profile and not telemetry_dir:
        print(
            "error: --profile needs a telemetry directory (--telemetry DIR or "
            f"{TELEMETRY_ENV}) to write the hotspot reports into",
            file=sys.stderr,
        )
        return 2
    try:
        return run_worker(
            args.spool,
            worker_id=args.worker_id,
            poll=args.poll,
            lease_ttl=args.lease_ttl,
            max_attempts=args.max_attempts,
            exit_when_empty=args.exit_when_empty,
            max_jobs=args.max_jobs,
            profile_dir=telemetry_dir if args.profile else None,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive
        print("worker interrupted", file=sys.stderr)
        return 130


def _fleet_engine_config(args: argparse.Namespace) -> dict:
    """The per-job engine configuration carried in fleet job descriptors."""
    return {
        "workers": args.workers,
        "backend": args.backend,
        "executor": args.executor,
        "source_chunk": args.source_chunk,
    }


def _run_fleet_run(args: argparse.Namespace) -> int:
    if not args.results_dir:
        print(
            "error: fleet run needs --results-dir (the destination the job "
            "stores are merged into)",
            file=sys.stderr,
        )
        return 2
    try:
        sizing_report = None
        if args.workload == "sweep":
            request = sweep_request(
                args.family,
                args.nodes,
                args.trials,
                seed=args.seed,
                sources=_source_options(args)[0],
                num_sources=_source_options(args)[1],
                params=_sweep_factory_kwargs(args),
            )
            if args.target_ci is not None:
                # Variance-aware sizing: a store-less local pilot round per
                # sweep point, then the fleet shards the derived fixed
                # budgets through the normal byte-identical machinery.
                pilot_engine = Engine(
                    workers=args.workers,
                    backend=args.backend,
                    executor=args.executor,
                    source_chunk=args.source_chunk,
                )
                request, sizing_report = plan_variance_budgets(
                    request,
                    args.target_ci,
                    engine=pilot_engine,
                    pilot_trials=args.pilot_trials,
                    confidence=args.ci_confidence,
                )
                print(
                    f"pilot: {args.pilot_trials} trials/point, target CI "
                    f"±{args.target_ci:g} at {args.ci_confidence:.0%} -> "
                    f"{sizing_report['total_budget']} trials total "
                    f"(fixed budget would be {sizing_report['fixed_total']})"
                )
                for point in sizing_report["points"]:
                    print(
                        f"  {point['tag']:<24} pilot std {point['pilot_std']:8.2f}"
                        f"  required {point['required_trials']:>6}"
                        f"  budget {point['budget']:>6} (cap {point['cap']})"
                    )
        else:
            request = experiment_request(
                args.experiment_id, scale=args.scale, seed=args.seed
            )
        payloads = request_job_payloads(
            request, args.shards, engine=_fleet_engine_config(args)
        )
        telemetry_dir = _telemetry_dir(args)
        if args.profile and not telemetry_dir:
            print(
                "error: --profile needs a telemetry directory (--telemetry DIR "
                f"or {TELEMETRY_ENV}) to write the hotspot reports into",
                file=sys.stderr,
            )
            return 2
        spool = JobSpool(args.spool, lease_ttl=args.lease_ttl, max_attempts=args.max_attempts)
        outcome = run_fleet(
            spool,
            payloads,
            local_workers=args.local_workers,
            poll=args.poll,
            max_wait=args.max_wait,
            telemetry_dir=telemetry_dir,
            profile=args.profile,
            log_level=getattr(args, "log_level", None),
            resume=args.resume,
        )
    except (FleetError, ValueError) as error:
        print(f"fleet run failed: {error}", file=sys.stderr)
        return 1
    if not outcome.ok:
        for job_id in outcome.failed:
            print(f"job {job_id} failed: {outcome.errors.get(job_id)}", file=sys.stderr)
        print(
            f"fleet run failed: {len(outcome.failed)} job(s) exhausted their "
            f"retry budget; inspect with: repro fleet status {spool.root}",
            file=sys.stderr,
        )
        return 1

    destination = ResultStore.at(args.results_dir)
    try:
        merge_report = merge_fleet_stores(spool, payloads, destination)
    except (FleetError, MergeConflictError, FileNotFoundError) as error:
        print(f"fleet fan-in failed: {error}", file=sys.stderr)
        return 1
    requeued = f", {len(outcome.requeued)} lease(s) requeued" if outcome.requeued else ""
    print(
        f"fleet: {len(outcome.done)} job(s) done in "
        f"{outcome.elapsed_seconds:.1f}s{requeued}"
    )
    if telemetry_dir and outcome.trace:
        print(
            f"trace: {outcome.trace}  (inspect with: repro telemetry trace "
            f"{outcome.trace} --telemetry {telemetry_dir})"
        )
    print(
        f"merged {len(payloads)} job store(s) into {destination.path} "
        f"({merge_report.records} records, {merge_report.assembled} batches assembled)"
    )

    if args.workload == "sweep":
        measurements = sweep_results_from_store(payloads[0], destination)
        estimator = estimator_description(*_source_options(args))
        print(f"sweep:  {args.family} over n = {args.nodes}  ({args.shards} fleet shards)")
        print(f"estimator: {estimator} per realization")
        for measurement in measurements:
            summary = measurement.summary
            print(
                f"  n={measurement.parameter:>6}  trials={summary.count:>4}  "
                f"mean {summary.mean:8.1f}  median {summary.median:8.1f}  "
                f"max {summary.maximum:8.0f}"
            )
        if args.json_path:
            payload = {
                "family": args.family,
                "nodes": args.nodes,
                "trials": args.trials,
                "seed": args.seed,
                "shards": args.shards,
                "estimator": estimator,
                "factory_kwargs": _sweep_factory_kwargs(args),
                "measurements": sweep_as_dicts(measurements),
            }
            if sizing_report is not None:
                # Only adaptive runs carry the sizing block, so fixed-count
                # fleet JSON stays byte-identical to earlier releases.
                payload["sizing"] = sizing_report
            _write_json(args.json_path, payload)
        return 0

    report = assemble_experiment_report(payloads[0], destination)
    renderer = format_markdown if args.markdown else format_table
    print(renderer(report))
    if args.json_path:
        _write_json(args.json_path, report.as_dict())
    return 0


def _run_fleet_status(args: argparse.Namespace) -> int:
    if not os.path.isdir(args.spool):
        print(f"error: no spool directory at {args.spool}", file=sys.stderr)
        return 2
    spool = JobSpool(args.spool)
    status = spool_status(spool)
    metrics = spool_metrics(spool, status)
    if args.as_json:
        print(json.dumps(status_as_dict(status, metrics), indent=2, sort_keys=True))
    else:
        print(format_status(status, metrics))
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    store = ResultStore.at(args.results_dir)
    spool = JobSpool(args.spool)
    service = SimulationService(
        store,
        spool,
        max_queue=args.max_queue,
        default_shards=args.default_shards,
        engine_config={"workers": args.job_workers, "backend": args.job_backend},
    )
    server = create_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"repro serve: listening on http://{host}:{port}", flush=True)
    print(f"repro serve: store {store.path}  spool {spool.root}", flush=True)
    print(
        "repro serve: POST /v1/requests  GET /v1/requests/<ticket>  "
        "GET /v1/status  GET /metrics  GET /healthz",
        flush=True,
    )

    def _graceful_shutdown(signum, frame):
        raise KeyboardInterrupt

    # Background launches (`repro serve ... &` in scripts and CI steps)
    # inherit SIGINT as ignored; re-arm both stop signals so the server
    # always exits through the finally (socket close, telemetry flush).
    try:
        signal.signal(signal.SIGINT, _graceful_shutdown)
        signal.signal(signal.SIGTERM, _graceful_shutdown)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0


def _run_telemetry_report(args: argparse.Namespace) -> int:
    try:
        events, skipped = load_events(args.directory, with_skipped=True)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not events:
        print(f"no telemetry events under {args.directory}", file=sys.stderr)
        return 1
    summary = summarize_events(events, top=args.top, skipped_lines=skipped)
    print(format_report(summary))
    if args.json_path:
        _write_json(args.json_path, summary)
    return 0


def _telemetry_events_or_error(args: argparse.Namespace):
    """Shared loader of the trace subcommand: (directory, events) or None."""
    directory = _telemetry_dir(args)
    if not directory:
        print(
            "error: no telemetry directory (pass --telemetry DIR or set "
            f"{TELEMETRY_ENV})",
            file=sys.stderr,
        )
        return None
    try:
        events, _ = load_events(directory, with_skipped=True)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return None
    return directory, events


def _run_telemetry_trace(args: argparse.Namespace) -> int:
    loaded = _telemetry_events_or_error(args)
    if loaded is None:
        return 2
    directory, events = loaded
    if args.trace_id is None:
        entries = list_traces(events)
        if not entries:
            print(f"no traced events under {directory}", file=sys.stderr)
            return 1
        print(f"{len(entries)} trace(s) under {directory} (newest first):")
        for entry in entries:
            print(
                f"  {entry['trace']}  {entry['root'] or '?':<16} "
                f"{entry['spans']:>3} span(s)  "
                f"{entry['processes']} process(es)  "
                f"{entry['wall_seconds']:.3f}s"
            )
        if args.json_path:
            _write_json(args.json_path, entries)
        return 0
    summary = summarize_trace(events, args.trace_id)
    if not summary["spans"] and not summary["events"]:
        print(
            f"no events for trace {args.trace_id} under {directory} "
            "(list traces with: repro telemetry trace --telemetry DIR)",
            file=sys.stderr,
        )
        return 1
    print(format_trace(summary), end="")
    if args.json_path:
        _write_json(args.json_path, summary)
    return 0


def _run_telemetry_export(args: argparse.Namespace) -> int:
    directory = _telemetry_dir(args)
    if not directory:
        print(
            "error: no telemetry directory (pass --telemetry DIR or set "
            f"{TELEMETRY_ENV})",
            file=sys.stderr,
        )
        return 2
    if not os.path.isdir(directory):
        print(f"error: no telemetry directory at {directory}", file=sys.stderr)
        return 2
    tailer = TelemetryTailer(directory, window=args.window)
    if args.checkpoint:
        tailer.load_checkpoint(args.checkpoint)
    text = tailer.exposition(version=__version__)
    if args.check:
        try:
            validate_exposition(text)
        except ValueError as error:
            print(f"error: invalid exposition: {error}", file=sys.stderr)
            return 1
    if args.checkpoint:
        tailer.save_checkpoint(args.checkpoint)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _run_fleet_top(args: argparse.Namespace) -> int:
    if not os.path.isdir(args.spool):
        print(f"error: no spool directory at {args.spool}", file=sys.stderr)
        return 2
    if args.interval <= 0:
        print(f"error: --interval must be positive, got {args.interval:g}",
              file=sys.stderr)
        return 2
    telemetry_dir = _telemetry_dir(args)
    if args.as_json:
        if not args.once:
            print("error: --json needs --once (one frame, machine-readable)",
                  file=sys.stderr)
            return 2
        tailer = TelemetryTailer(telemetry_dir) if telemetry_dir else None
        frame = gather_frame(JobSpool(args.spool), tailer)
        print(json.dumps(jsonify(frame), indent=2, sort_keys=True))
        return 0
    return run_top(
        args.spool,
        telemetry_dir=telemetry_dir,
        interval=args.interval,
        once=args.once,
        follow_until_drained=args.until_drained,
        width=args.width,
    )


def _run_merge(args: argparse.Namespace) -> int:
    destination = ResultStore.at(args.output)
    try:
        report = destination.merge(*args.sources)
    except (MergeConflictError, FileNotFoundError) as error:
        print(f"merge failed: {error}", file=sys.stderr)
        return 1
    print(f"merged {len(args.sources)} store(s) into {destination.path}")
    print(
        f"records: {report.records}  adopted: {report.adopted}  "
        f"assembled batches: {report.assembled}  pending shards: {report.pending_shards}"
    )
    return 0


def _dispatch(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    if args.command == "experiments":
        return _run_experiments(args)
    if args.command == "experiment":
        return _run_experiment_pipeline(args)
    if args.command == "flood":
        return _run_flood(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "merge-results":
        return _run_merge(args)
    if args.command == "worker":
        return _run_worker(args)
    if args.command == "fleet":
        if args.fleet_command == "run":
            return _run_fleet_run(args)
        if args.fleet_command == "top":
            return _run_fleet_top(args)
        return _run_fleet_status(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "telemetry":
        if args.telemetry_command == "trace":
            return _run_telemetry_trace(args)
        if args.telemetry_command == "export":
            return _run_telemetry_export(args)
        return _run_telemetry_report(args)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        configure_logging(getattr(args, "log_level", None))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    telemetry_dir = _telemetry_dir(args) if args.command != "telemetry" else None
    if telemetry_dir is not None:
        telemetry_core.enable(telemetry_dir)
    try:
        return _dispatch(parser, args)
    finally:
        if telemetry_dir is not None:
            telemetry_core.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
