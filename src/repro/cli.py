"""Command-line interface: run experiments and flooding simulations from a shell.

Usage (after ``pip install -e .``)::

    python -m repro experiments list
    python -m repro experiments run E3 --scale small --seed 1
    python -m repro experiments run-all --markdown --output EXPERIMENTS.md
    python -m repro flood edge-meg --nodes 200 --p 0.0025 --q 0.5 --trials 10
    python -m repro flood waypoint --nodes 100 --side 10 --radius 1 --speed 1
    python -m repro flood grid-walk --nodes 64 --grid-side 8 --radius 1

The ``flood`` subcommand reports the measured flooding-time statistics next
to the paper's bound for the chosen model, mirroring what the examples do in
code.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.bounds import (
    classic_edge_meg_bound,
    corollary6_bound,
    waypoint_flooding_bound,
)
from repro.core.metrics import flooding_time_statistics
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import format_markdown, format_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Information Spreading in Dynamic Graphs' (PODC 2012)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser(
        "experiments", help="run the registered experiments E1-E10"
    )
    experiments_sub = experiments.add_subparsers(dest="experiments_command", required=True)
    experiments_sub.add_parser("list", help="list the registered experiments")
    run_one = experiments_sub.add_parser("run", help="run a single experiment")
    run_one.add_argument("experiment_id", choices=sorted(EXPERIMENTS, key=lambda e: int(e[1:])))
    run_one.add_argument("--scale", choices=("small", "full"), default="small")
    run_one.add_argument("--seed", type=int, default=0)
    run_one.add_argument("--markdown", action="store_true", help="render as markdown")
    run_all = experiments_sub.add_parser("run-all", help="run every experiment")
    run_all.add_argument("--scale", choices=("small", "full"), default="small")
    run_all.add_argument("--seed", type=int, default=0)
    run_all.add_argument("--markdown", action="store_true")
    run_all.add_argument("--output", default=None, help="write the report to a file")

    flood = subparsers.add_parser("flood", help="measure flooding on a chosen model")
    flood_sub = flood.add_subparsers(dest="model", required=True)

    edge_meg = flood_sub.add_parser("edge-meg", help="classic edge-MEG with birth/death rates")
    edge_meg.add_argument("--nodes", type=int, default=100)
    edge_meg.add_argument("--p", type=float, default=0.01, help="edge birth rate")
    edge_meg.add_argument("--q", type=float, default=0.5, help="edge death rate")
    edge_meg.add_argument("--trials", type=int, default=10)
    edge_meg.add_argument("--seed", type=int, default=0)

    waypoint = flood_sub.add_parser("waypoint", help="random waypoint over a square")
    waypoint.add_argument("--nodes", type=int, default=100)
    waypoint.add_argument("--side", type=float, default=10.0)
    waypoint.add_argument("--radius", type=float, default=1.0)
    waypoint.add_argument("--speed", type=float, default=1.0)
    waypoint.add_argument("--trials", type=int, default=5)
    waypoint.add_argument("--seed", type=int, default=0)

    grid_walk = flood_sub.add_parser("grid-walk", help="random walks over a grid mobility graph")
    grid_walk.add_argument("--nodes", type=int, default=64)
    grid_walk.add_argument("--grid-side", type=int, default=8)
    grid_walk.add_argument("--augment-k", type=int, default=1, help="k-augmentation of the grid")
    grid_walk.add_argument("--trials", type=int, default=5)
    grid_walk.add_argument("--seed", type=int, default=0)

    return parser


def _run_experiments(args: argparse.Namespace) -> int:
    renderer = format_markdown if getattr(args, "markdown", False) else format_table
    if args.experiments_command == "list":
        for experiment_id in sorted(EXPERIMENTS, key=lambda e: int(e[1:])):
            experiment = EXPERIMENTS[experiment_id]
            print(f"{experiment_id}: {experiment.title}  [{experiment.paper_reference}]")
        return 0
    if args.experiments_command == "run":
        report = run_experiment(args.experiment_id, scale=args.scale, seed=args.seed)
        print(renderer(report))
        return 0
    # run-all
    sections = []
    for experiment_id in sorted(EXPERIMENTS, key=lambda e: int(e[1:])):
        report = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
        sections.append(renderer(report))
    output = "\n\n".join(sections)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(output + "\n")
        print(f"wrote {args.output}")
    else:
        print(output)
    return 0


def _run_flood(args: argparse.Namespace) -> int:
    if args.model == "edge-meg":
        from repro.meg.edge_meg import EdgeMEG

        model = EdgeMEG(args.nodes, p=args.p, q=args.q)
        bound = classic_edge_meg_bound(args.nodes, args.p, args.q)
        description = f"edge-MEG(n={args.nodes}, p={args.p}, q={args.q})"
    elif args.model == "waypoint":
        from repro.mobility.random_waypoint import RandomWaypoint

        model = RandomWaypoint(
            args.nodes, side=args.side, radius=args.radius, v_min=args.speed
        )
        bound = waypoint_flooding_bound(args.nodes, args.side, args.radius, args.speed)
        description = (
            f"random waypoint(n={args.nodes}, L={args.side}, r={args.radius}, v={args.speed})"
        )
    else:  # grid-walk
        from repro.graphs.grid import augmented_grid_graph
        from repro.graphs.properties import degree_regularity
        from repro.markov.mixing import mixing_time
        from repro.mobility.random_path import GraphRandomWalkMobility

        graph = augmented_grid_graph(args.grid_side, args.augment_k)
        model = GraphRandomWalkMobility(args.nodes, graph, holding_probability=0.5)
        bound = corollary6_bound(
            args.nodes,
            mixing_time(model.to_markov_chain()),
            graph.number_of_nodes(),
            degree_regularity(graph),
        )
        description = (
            f"grid random walk(n={args.nodes}, side={args.grid_side}, k={args.augment_k})"
        )

    summary = flooding_time_statistics(model, num_trials=args.trials, rng=args.seed)
    print(f"model:  {description}")
    print(f"trials: {summary.count}")
    print(
        "flooding time: "
        f"mean {summary.mean:.1f}, median {summary.median:.1f}, "
        f"min {summary.minimum:.0f}, max {summary.maximum:.0f}"
    )
    print(f"paper bound (constant = 1): {bound:.1f}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "experiments":
        return _run_experiments(args)
    if args.command == "flood":
        return _run_flood(args)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
