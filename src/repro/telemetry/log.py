"""Stdlib ``logging`` wiring for the repro daemons.

The fleet worker and coordinator ran completely silent (beyond bare
``print`` calls) before PR 6; this module gives them — and any other part of
the package — namespaced loggers under the ``repro`` root with one
consistent format, plus the ``--log-level`` CLI wiring.

The handler writes to *the current* ``sys.stdout`` (looked up per emit, not
captured at configuration time), so daemon output composes with shells,
``tee``, CI log capture and pytest's stream redirection alike.  Library use
stays quiet by design: until :func:`configure` runs, the ``repro`` logger
has no handler and emits nothing below WARNING.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional, Union

__all__ = ["LOG_FORMAT", "configure", "get_logger"]

LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_ROOT = "repro"
#: Environment fallback for the CLI's ``--log-level``.
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"


class _CurrentStdoutHandler(logging.StreamHandler):
    """A stream handler bound to whatever ``sys.stdout`` currently is."""

    def __init__(self) -> None:
        super().__init__(stream=sys.stdout)

    @property
    def stream(self):
        return sys.stdout

    @stream.setter
    def stream(self, value) -> None:  # StreamHandler.__init__ assigns it
        pass


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The ``repro`` logger, or the ``repro.<name>`` child for a subsystem."""
    return logging.getLogger(_ROOT if not name else f"{_ROOT}.{name}")


def resolve_level(level: Union[str, int, None]) -> int:
    """A logging level from a CLI string (``--log-level``) or the environment."""
    if level is None:
        level = os.environ.get(LOG_LEVEL_ENV, "info")
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(str(level).upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {level!r}")
    return resolved


def configure(level: Union[str, int, None] = None) -> logging.Logger:
    """Install (once) the stdout handler on the ``repro`` logger and set the level.

    Idempotent: repeated calls adjust the level but never stack handlers, so
    in-process CLI invocations (tests, notebooks) stay single-voiced.
    """
    logger = get_logger()
    logger.setLevel(resolve_level(level))
    if not any(isinstance(handler, _CurrentStdoutHandler) for handler in logger.handlers):
        handler = _CurrentStdoutHandler()
        handler.setFormatter(logging.Formatter(LOG_FORMAT))
        logger.addHandler(handler)
    logger.propagate = False
    return logger
