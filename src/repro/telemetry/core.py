"""Structured tracing and metrics with a provably invisible no-op default.

The telemetry layer gives the execution platform (engine → store → fleet)
shared observability primitives:

* **spans** — named durations with a monotonic start, a process-unique id
  and a parent id (nesting tracked per thread), recorded as one JSONL event
  each;
* **metrics** — counters, gauges and timing aggregates (count/total/min/max)
  accumulated in memory and flushed as a single ``metrics`` event on
  :meth:`Telemetry.close`;
* **events** — one-off structured facts (a queue transition, a merge
  summary).

Everything funnels through one :class:`Telemetry` instance per process,
writing a crash-safe per-process JSONL file (``events-<host>-<pid>.jsonl``,
append + flush per line, no cross-process locking needed) inside a shared
telemetry directory.  ``repro telemetry report DIR`` merges those files into
a run summary (:mod:`repro.telemetry.report`).

Design contract — **disabled means invisible**:

* the module-level helpers (:func:`span`, :func:`count`, :func:`gauge`,
  :func:`timing`, :func:`event`) are the only API instrumentation sites use;
  with no active telemetry each is a single global load and ``None`` check,
  so the default path stays within noise of the un-instrumented code
  (gated by the ``telemetry_overhead`` benchmark in
  ``benchmarks/bench_engine.py``);
* telemetry never touches a random stream and never writes into a result
  store, so enabling it cannot change any computed result — byte-identity
  of stores and reports with telemetry on vs off is pinned by tests and the
  CI ``telemetry-smoke`` job.

A :class:`Telemetry` constructed without a directory aggregates metrics in
memory and drops events: the engine's process-pool children use this to
collect kernel metrics and ship them back to the parent as a snapshot
(:meth:`Telemetry.metrics_snapshot` / :meth:`Telemetry.merge_metrics`).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from typing import Optional

from repro.telemetry import trace as _trace

__all__ = [
    "Telemetry",
    "activate",
    "active",
    "count",
    "current_span_id",
    "deactivate",
    "default_process_id",
    "disable",
    "enable",
    "event",
    "gauge",
    "metrics_snapshot",
    "span",
    "timing",
    "trace_carrier",
]


def default_process_id() -> str:
    """``<hostname>-<pid>``: unique per live process across a fleet."""
    return f"{socket.gethostname()}-{os.getpid()}"


class _NullSpan:
    """The shared, reusable no-op span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, **fields) -> "_NullSpan":
        """Accept and drop extra fields (mirrors :meth:`_Span.add`)."""
        return self


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span: times itself on ``with`` and records a ``span`` event."""

    __slots__ = ("_telemetry", "name", "fields", "span_id", "parent_id", "_started")

    def __init__(self, telemetry: "Telemetry", name: str, fields: dict) -> None:
        self._telemetry = telemetry
        self.name = name
        self.fields = fields
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self._started = 0.0

    def add(self, **fields) -> "_Span":
        """Attach extra fields to the span's event (e.g. an outcome)."""
        self.fields.update(fields)
        return self

    def __enter__(self) -> "_Span":
        self.span_id, self.parent_id = self._telemetry._enter_span()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._started
        self._telemetry._exit_span()
        record = {
            "kind": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration_seconds": duration,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        record.update(self.fields)
        self._telemetry._write(record)
        return False


class _Aggregate:
    """Streaming count/total/min/max of one timing series."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.total / self.count if self.count else 0.0,
        }

    def merge(self, other: dict) -> None:
        """Fold a serialised aggregate (``as_dict`` form) into this one."""
        self.count += int(other["count"])
        self.total += float(other["total"])
        self.minimum = min(self.minimum, float(other["min"]))
        self.maximum = max(self.maximum, float(other["max"]))


class Telemetry:
    """Per-process tracer + metrics registry writing one JSONL event file.

    Parameters
    ----------
    directory:
        Shared telemetry directory.  ``None`` means in-memory only: metrics
        aggregate (for :meth:`metrics_snapshot`) but events are dropped —
        the mode the engine's pool children run in.
    process:
        Identity stamped on every record and used in the event file name
        (defaults to :func:`default_process_id`).
    """

    def __init__(self, directory: Optional[str] = None, process: Optional[str] = None) -> None:
        self.process = process or default_process_id()
        #: PID this instance was created in — a forked pool worker inherits
        #: the parent's instance and must not write through it (the engine
        #: checks this to give such workers their own in-memory registry).
        self.pid = os.getpid()
        self.directory = None if directory is None else str(directory)
        self.path: Optional[str] = None
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)
            self.path = os.path.join(self.directory, f"events-{self.process}.jsonl")
        self._handle = None
        self._lock = threading.RLock()
        self._local = threading.local()
        self._next_span = 0
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timings: dict[str, _Aggregate] = {}
        self._closed = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Telemetry(directory={self.directory!r}, process={self.process!r})"

    # ------------------------------------------------------------------ #
    # spans
    # ------------------------------------------------------------------ #
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter_span(self) -> tuple[str, Optional[str]]:
        with self._lock:
            self._next_span += 1
            span_id = f"{self.process}:{self._next_span}"
        stack = self._stack()
        parent_id = stack[-1] if stack else None
        stack.append(span_id)
        return span_id, parent_id

    def _exit_span(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def span(self, name: str, **fields) -> _Span:
        """A context manager timing ``name``; records one ``span`` event."""
        return _Span(self, name, fields)

    def record_span(self, name: str, duration_seconds: float, **fields) -> None:
        """Record an already-timed span (work that was measured out of band).

        The engine's pool children use this: the chunk is timed around the
        kernel call itself, then recorded in one write — no open span held
        across the chunk, so a child killed mid-chunk loses only its own
        record, never a half-open parent stack.
        """
        span_id, parent_id = self._enter_span()
        self._exit_span()
        self._write(
            {
                "kind": "span",
                "name": name,
                "span_id": span_id,
                "parent_id": parent_id,
                "duration_seconds": float(duration_seconds),
                **fields,
            }
        )

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def count(self, name: str, value: float = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest observation."""
        with self._lock:
            self._gauges[name] = float(value)

    def timing(self, name: str, value: float) -> None:
        """Fold one observation into the timing aggregate ``name``."""
        with self._lock:
            aggregate = self._timings.get(name)
            if aggregate is None:
                aggregate = self._timings[name] = _Aggregate()
            aggregate.add(value)

    def metrics_snapshot(self) -> dict:
        """The registry's current state as a JSON-able dict."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timings": {name: agg.as_dict() for name, agg in self._timings.items()},
            }

    def merge_metrics(self, snapshot: Optional[dict]) -> None:
        """Fold another registry's snapshot (e.g. a pool child's) into this one."""
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[name] = float(value)
            for name, serialized in snapshot.get("timings", {}).items():
                aggregate = self._timings.get(name)
                if aggregate is None:
                    aggregate = self._timings[name] = _Aggregate()
                aggregate.merge(serialized)

    def flush_metrics(self) -> None:
        """Write the registry as one ``metrics`` event (if anything accumulated)."""
        snapshot = self.metrics_snapshot()
        if any(snapshot.values()):
            self._write({"kind": "metrics", **snapshot})

    # ------------------------------------------------------------------ #
    # events and persistence
    # ------------------------------------------------------------------ #
    def event(self, name: str, **fields) -> None:
        """Record one structured ``event`` line."""
        self._write({"kind": "event", "name": name, **fields})

    def _write(self, record: dict) -> None:
        """Append one event line (crash-safe: flushed per line).

        The file is per-process, so there is no cross-process interleaving
        to guard against; the thread lock serialises the worker's heartbeat
        thread against its main loop.
        """
        if self.path is None or self._closed:
            return
        record = {"ts": time.time(), "process": self.process, **record}
        _trace.stamp(record)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line)
            self._handle.flush()

    def close(self, flush: bool = True) -> None:
        """Flush the metrics registry (unless ``flush=False``) and close the file.

        ``flush=False`` is for pool children that already ship their
        registry back to the parent as a snapshot: closing without the
        final ``metrics`` event keeps fleet-wide counters single-counted.
        """
        if self._closed:
            return
        if flush:
            self.flush_metrics()
        with self._lock:
            self._closed = True
            if self._handle is not None:
                self._handle.close()
                self._handle = None


# --------------------------------------------------------------------- #
# the process-global instance and the no-op-by-default helpers
# --------------------------------------------------------------------- #
_active: Optional[Telemetry] = None


def active() -> Optional[Telemetry]:
    """The process's active :class:`Telemetry`, or ``None`` when disabled."""
    return _active


def activate(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` as the process-global instance."""
    global _active
    _active = telemetry
    return telemetry


def deactivate(telemetry: Optional[Telemetry] = None) -> None:
    """Clear the process-global instance (only if it is ``telemetry``, when given)."""
    global _active
    if telemetry is None or _active is telemetry:
        _active = None


def enable(directory: str, process: Optional[str] = None) -> Telemetry:
    """Activate telemetry writing into ``directory`` (closing any prior one)."""
    disable()
    return activate(Telemetry(directory, process=process))


def disable() -> None:
    """Close and clear the active telemetry (a no-op when already disabled)."""
    global _active
    if _active is not None:
        _active.close()
        _active = None


def span(name: str, **fields):
    """A span on the active telemetry, or the shared no-op span when disabled."""
    telemetry = _active
    if telemetry is None:
        return _NULL_SPAN
    return telemetry.span(name, **fields)


def count(name: str, value: float = 1) -> None:
    """Counter increment on the active telemetry (no-op when disabled)."""
    telemetry = _active
    if telemetry is not None:
        telemetry.count(name, value)


def gauge(name: str, value: float) -> None:
    """Gauge update on the active telemetry (no-op when disabled)."""
    telemetry = _active
    if telemetry is not None:
        telemetry.gauge(name, value)


def timing(name: str, value: float) -> None:
    """Timing observation on the active telemetry (no-op when disabled)."""
    telemetry = _active
    if telemetry is not None:
        telemetry.timing(name, value)


def event(name: str, **fields) -> None:
    """Structured event on the active telemetry (no-op when disabled)."""
    telemetry = _active
    if telemetry is not None:
        telemetry.event(name, **fields)


def current_span_id() -> Optional[str]:
    """The calling thread's innermost open span id, or ``None``.

    The hook trace propagation uses to name a remote parent: a process
    about to hand work to another process (serve enqueuing spool jobs, the
    engine shipping chunk payloads to pool children) captures this id into
    the carrier so the receiver's top-level spans can point back at it.
    """
    telemetry = _active
    if telemetry is None:
        return None
    stack = telemetry._stack()
    return stack[-1] if stack else None


def trace_carrier() -> Optional[dict]:
    """The thread's trace context as a JSON-able propagation carrier.

    ``{"id": <trace id>, "parent": <current span id>}`` — the form stamped
    into fleet job descriptors and engine chunk payloads — or ``None``
    when no trace scope is attached (the carrier then simply stays off the
    payload, keeping untraced runs byte-identical to pre-trace builds).
    """
    trace_id = _trace.current_trace_id()
    if trace_id is None:
        return None
    carrier = {"id": trace_id}
    parent = current_span_id()
    if parent is not None:
        carrier["parent"] = parent
    return carrier


def metrics_snapshot() -> Optional[dict]:
    """The active telemetry's aggregated metrics, or ``None`` when disabled.

    Read-only and side-effect free — the ``repro serve`` status endpoint
    surfaces it so operators can watch ``serve.cache.hit`` / ``.miss`` and
    queue counters live without waiting for the run's event files.
    """
    telemetry = _active
    return None if telemetry is None else telemetry.metrics_snapshot()
