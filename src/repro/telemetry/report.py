"""Merge per-process telemetry event files into one run summary.

``repro telemetry report DIR`` is this module: every ``events-*.jsonl`` file
in a telemetry directory (one per process that ran with ``--telemetry DIR``)
is parsed, and the events are folded into a single report:

* **phase breakdown** — wall-clock totals per span name (engine batches,
  worker jobs, fleet fan-in phases);
* **store behaviour** — cache hit rate, puts, lock-wait aggregates;
* **worker utilization** — per process, busy time (job-span seconds) over
  the process's observed wall span;
* **slowest jobs** — the top-N ``worker.job`` / ``engine.run`` spans;
* **requeue forensics** — every ``queue.requeue`` / ``queue.failed`` event
  with its attempt count and error.

Parsing is tolerant: truncated last lines (a crashed process) are skipped,
unknown event kinds are counted but otherwise ignored — forensics must work
on exactly the runs that went wrong.
"""

from __future__ import annotations

import glob
import json
import os

__all__ = ["format_report", "load_events", "summarize_events", "telemetry_report"]

#: Span names treated as "one unit of scheduled work" for utilization/slowest.
JOB_SPANS = ("worker.job", "engine.run", "engine.run_shard")


def load_events(directory: str, with_skipped: bool = False):
    """Every parseable event in ``directory``'s ``events-*.jsonl`` files.

    Events are returned in wall-clock order (the per-process files are
    already ordered; the merge sorts by the ``ts`` stamp).  With
    ``with_skipped=True`` the return value is ``(events, skipped)`` where
    ``skipped`` counts the corrupt or truncated lines that were dropped —
    forensics on a crashed run should say how much evidence went missing
    rather than silently reading past it.
    """
    if not os.path.isdir(directory):
        raise FileNotFoundError(f"no telemetry directory at {directory}")
    events: list[dict] = []
    skipped = 0
    for path in sorted(glob.glob(os.path.join(directory, "events-*.jsonl"))):
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    skipped += 1  # truncated tail of a crashed process
                    continue
                if isinstance(record, dict):
                    events.append(record)
                else:
                    skipped += 1  # parseable but not an event object
    events.sort(key=lambda record: record.get("ts", 0.0))
    if with_skipped:
        return events, skipped
    return events


def _merge_timing(into: dict, name: str, serialized: dict) -> None:
    aggregate = into.get(name)
    if aggregate is None:
        into[name] = dict(serialized)
        return
    aggregate["count"] += int(serialized["count"])
    aggregate["total"] += float(serialized["total"])
    aggregate["min"] = min(aggregate["min"], float(serialized["min"]))
    aggregate["max"] = max(aggregate["max"], float(serialized["max"]))
    aggregate["mean"] = aggregate["total"] / aggregate["count"] if aggregate["count"] else 0.0


def summarize_events(events: list[dict], top: int = 5, skipped_lines: int = 0) -> dict:
    """Fold a merged event list into the report dict (see module docstring).

    ``skipped_lines`` is the unparseable-line count from
    :func:`load_events`; it is surfaced verbatim in the summary so both the
    text and ``--json`` report forms show how lossy the read was.
    """
    processes: dict[str, dict] = {}
    phases: dict[str, dict] = {}
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    timings: dict[str, dict] = {}
    job_spans: list[dict] = []
    requeues: list[dict] = []
    queue_transitions: dict[str, int] = {}

    for record in events:
        process = str(record.get("process", "?"))
        ts = float(record.get("ts", 0.0))
        entry = processes.setdefault(
            process, {"events": 0, "first_ts": ts, "last_ts": ts, "busy_seconds": 0.0}
        )
        entry["events"] += 1
        entry["first_ts"] = min(entry["first_ts"], ts)
        entry["last_ts"] = max(entry["last_ts"], ts)

        kind = record.get("kind")
        if kind == "span":
            name = str(record.get("name", "?"))
            duration = float(record.get("duration_seconds", 0.0))
            phase = phases.setdefault(
                name, {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
            )
            phase["count"] += 1
            phase["total_seconds"] += duration
            phase["max_seconds"] = max(phase["max_seconds"], duration)
            if name in JOB_SPANS:
                job_spans.append(record)
                if name == "worker.job":
                    entry["busy_seconds"] += duration
        elif kind == "metrics":
            for name, value in record.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, value in record.get("gauges", {}).items():
                gauges[name] = value
            for name, serialized in record.get("timings", {}).items():
                _merge_timing(timings, name, serialized)
        elif kind == "event":
            name = str(record.get("name", "?"))
            if name.startswith("queue."):
                queue_transitions[name] = queue_transitions.get(name, 0) + 1
            if name in ("queue.requeue", "queue.failed"):
                requeues.append(record)

    for phase in phases.values():
        phase["mean_seconds"] = (
            phase["total_seconds"] / phase["count"] if phase["count"] else 0.0
        )

    hits = counters.get("engine.store.hit", 0)
    misses = counters.get("engine.store.miss", 0)
    store = {
        "hits": hits,
        "misses": misses,
        "puts": counters.get("engine.store.put", 0),
        "hit_rate": hits / (hits + misses) if hits + misses else None,
        "lock_wait": timings.get("store.lock_wait_seconds"),
    }

    workers = {}
    for process, entry in processes.items():
        wall = entry["last_ts"] - entry["first_ts"]
        busy = entry["busy_seconds"]
        if busy:
            workers[process] = {
                "busy_seconds": busy,
                "wall_seconds": wall,
                "utilization": min(1.0, busy / wall) if wall > 0 else 1.0,
            }

    slowest = sorted(
        job_spans, key=lambda r: float(r.get("duration_seconds", 0.0)), reverse=True
    )[:top]
    slowest_jobs = [
        {
            "name": record.get("name"),
            "job": record.get("job") or record.get("label"),
            "process": record.get("process"),
            "duration_seconds": float(record.get("duration_seconds", 0.0)),
        }
        for record in slowest
    ]

    return {
        "events": len(events),
        "skipped_lines": int(skipped_lines),
        "processes": processes,
        "phases": phases,
        "metrics": {"counters": counters, "gauges": gauges, "timings": timings},
        "store": store,
        "workers": workers,
        "slowest_jobs": slowest_jobs,
        "queue": queue_transitions,
        "requeues": [
            {
                "name": record.get("name"),
                "job": record.get("job"),
                "attempts": record.get("attempts"),
                "error": record.get("error"),
            }
            for record in requeues
        ],
    }


def telemetry_report(directory: str, top: int = 5) -> dict:
    """Load and summarize a telemetry directory in one call."""
    events, skipped = load_events(directory, with_skipped=True)
    return summarize_events(events, top=top, skipped_lines=skipped)


def format_report(summary: dict) -> str:
    """Human-readable rendering of :func:`summarize_events`' dict."""
    lines = [
        f"telemetry: {summary['events']} event(s) from "
        f"{len(summary['processes'])} process(es)"
    ]
    if summary.get("skipped_lines"):
        lines.append(
            f"warning: skipped {summary['skipped_lines']} corrupt/truncated "
            f"line(s) while reading event files"
        )

    if summary["phases"]:
        lines.append("phase wall-clock breakdown:")
        ordered = sorted(
            summary["phases"].items(), key=lambda kv: kv[1]["total_seconds"], reverse=True
        )
        for name, phase in ordered:
            lines.append(
                f"  {name:<24} x{phase['count']:<5} total {phase['total_seconds']:8.3f}s  "
                f"mean {phase['mean_seconds']:8.3f}s  max {phase['max_seconds']:8.3f}s"
            )

    store = summary["store"]
    if store["hits"] or store["misses"] or store["puts"]:
        rate = "n/a" if store["hit_rate"] is None else f"{store['hit_rate']:.0%}"
        lines.append(
            f"store: {store['hits']} hit(s), {store['misses']} miss(es), "
            f"{store['puts']} put(s)  (hit rate {rate})"
        )
        if store["lock_wait"]:
            wait = store["lock_wait"]
            lines.append(
                f"store lock wait: x{wait['count']} total {wait['total']:.4f}s "
                f"max {wait['max']:.4f}s"
            )

    if summary["workers"]:
        lines.append("worker utilization:")
        for process, entry in sorted(summary["workers"].items()):
            lines.append(
                f"  {process:<32} busy {entry['busy_seconds']:8.3f}s / "
                f"{entry['wall_seconds']:8.3f}s  ({entry['utilization']:.0%})"
            )

    if summary["slowest_jobs"]:
        lines.append("slowest jobs:")
        for job in summary["slowest_jobs"]:
            lines.append(
                f"  {job['duration_seconds']:8.3f}s  {job['name']}  "
                f"{job['job'] or '?'}  [{job['process']}]"
            )

    if summary["queue"]:
        transitions = ", ".join(
            f"{name.split('.', 1)[1]}={count}"
            for name, count in sorted(summary["queue"].items())
        )
        lines.append(f"queue transitions: {transitions}")

    if summary["requeues"]:
        lines.append("requeue forensics:")
        for entry in summary["requeues"]:
            lines.append(
                f"  {entry['name']}  job={entry['job']}  "
                f"attempts={entry['attempts']}  {entry['error'] or ''}".rstrip()
            )

    kernels = {
        name.split(".")[-1]: int(value)
        for name, value in summary["metrics"]["counters"].items()
        if name.startswith("engine.backend.")
    }
    if kernels:
        lines.append(
            "kernel dispatch: "
            + ", ".join(f"{name}={count}" for name, count in sorted(kernels.items()))
        )
    return "\n".join(lines)
