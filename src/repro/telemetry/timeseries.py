"""Incremental telemetry tailing and Prometheus text exposition.

:mod:`repro.telemetry.report` is post-hoc: it re-reads whole event files
after a run.  This module is the *live* counterpart — a
:class:`TelemetryTailer` follows the per-process ``events-*.jsonl`` files
with byte-offset checkpoints (only complete, newly appended lines are
consumed; a partial tail line is left for the next poll) and folds what it
sees into:

* merged **cumulative metrics** (the ``metrics`` events flushed by closed
  processes);
* **windowed rates** over the last ``window`` seconds — jobs/s, failure
  and requeue rates, p50/p95 job latency (from live ``worker.job`` span
  events) and per-worker busy fractions;
* **in-flight state** — jobs claimed but not yet done/failed/requeued,
  with claimant and age (the ``repro fleet top`` "slowest in-flight"
  panel);
* liveness — last event timestamp per process, distinct trace ids seen,
  and the count of corrupt/truncated lines skipped.

:func:`render_prometheus` serialises metric families into the Prometheus
text exposition format (version 0.0.4) without any third-party client
library, and :func:`validate_exposition` is the strict parser the CI
``metrics-smoke`` step runs against a real ``GET /metrics`` scrape.
Offsets survive restarts via :meth:`TelemetryTailer.save_checkpoint` /
:meth:`TelemetryTailer.load_checkpoint`, so ``repro telemetry export
--checkpoint`` can be scraped repeatedly without re-reading history.
"""

from __future__ import annotations

import glob
import json
import os
import re
import time
from collections import deque
from typing import Optional

__all__ = [
    "DEFAULT_WINDOW_SECONDS",
    "TelemetryTailer",
    "metric_name",
    "render_prometheus",
    "validate_exposition",
]

#: Window (seconds) over which rates and latency quantiles are computed.
DEFAULT_WINDOW_SECONDS = 60.0

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_EVENT_GLOB = "events-*.jsonl"


def metric_name(name: str, prefix: str = "repro") -> str:
    """A telemetry metric name as a valid Prometheus identifier.

    ``serve.cache.hit`` -> ``repro_serve_cache_hit``; a leading digit after
    sanitisation is guarded with an underscore.
    """
    sanitized = _NAME_RE.sub("_", str(name))
    full = f"{prefix}_{sanitized}" if prefix else sanitized
    if full[0].isdigit():
        full = "_" + full
    return full


def _format_value(value: float) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.10g}"


def _escape_label(value: str) -> str:
    return str(value).replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _escape_help(value: str) -> str:
    # HELP text escapes only backslash and newline (no quote escaping).
    return str(value).replace("\\", r"\\").replace("\n", r"\n")


def render_prometheus(families: list[dict]) -> str:
    """Serialise metric families into Prometheus text exposition format.

    Each family: ``{"name", "type", "help", "samples"}`` where a sample is
    ``{"value", "labels"?, "suffix"?}`` — the suffix carries summary
    children (``_sum`` / ``_count``) under the parent family name.
    """
    lines: list[str] = []
    for family in families:
        name = family["name"]
        lines.append(f"# HELP {name} {_escape_help(family.get('help', name))}")
        lines.append(f"# TYPE {name} {family.get('type', 'untyped')}")
        for sample in family.get("samples", []):
            labels = sample.get("labels") or {}
            rendered = ""
            if labels:
                pairs = ",".join(
                    f'{key}="{_escape_label(value)}"'
                    for key, value in sorted(labels.items())
                )
                rendered = "{" + pairs + "}"
            lines.append(
                f"{name}{sample.get('suffix', '')}{rendered} "
                f"{_format_value(sample['value'])}"
            )
    return "\n".join(lines) + "\n"


_METRIC_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))"
    r"(?: [0-9]+)?$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
_HEADER_RE = re.compile(r"^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)(?: (.*))?$")
_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def validate_exposition(text: str) -> int:
    """Strictly validate Prometheus text exposition; returns the sample count.

    Raises :class:`ValueError` naming the first offending line.  Checks the
    line grammar, label pair syntax, declared metric types, and that every
    sample belongs to the most recently declared ``# TYPE`` family (modulo
    the ``_sum`` / ``_count`` / ``_bucket`` children summaries and
    histograms are allowed).
    """
    samples = 0
    declared: dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            header = _HEADER_RE.match(line)
            if header is None:
                raise ValueError(f"line {number}: malformed comment {line!r}")
            if header.group(1) == "TYPE":
                kind = (header.group(3) or "").strip()
                if kind not in _VALID_TYPES:
                    raise ValueError(
                        f"line {number}: invalid metric type {kind!r}"
                    )
                declared[header.group(2)] = kind
            continue
        match = _METRIC_LINE_RE.match(line)
        if match is None:
            raise ValueError(f"line {number}: malformed sample {line!r}")
        labels = match.group("labels")
        if labels:
            for pair in _split_label_pairs(labels):
                if not _LABEL_RE.match(pair):
                    raise ValueError(
                        f"line {number}: malformed label pair {pair!r}"
                    )
        name = match.group("name")
        base = re.sub(r"_(sum|count|bucket|min|max)$", "", name)
        if name not in declared and base not in declared:
            raise ValueError(f"line {number}: sample {name!r} has no # TYPE")
        samples += 1
    if samples == 0:
        raise ValueError("exposition contains no samples")
    return samples


def _split_label_pairs(labels: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted label values."""
    pairs, buffer, quoted, escaped = [], [], False, False
    for char in labels:
        if escaped:
            buffer.append(char)
            escaped = False
            continue
        if char == "\\":
            buffer.append(char)
            escaped = True
            continue
        if char == '"':
            quoted = not quoted
        if char == "," and not quoted:
            pairs.append("".join(buffer))
            buffer = []
        else:
            buffer.append(char)
    if buffer:
        pairs.append("".join(buffer))
    return pairs


def _quantile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank quantile of an already-sorted sample list."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[index]


class TelemetryTailer:
    """Incrementally follow a telemetry directory's event files.

    Parameters
    ----------
    directory:
        The shared telemetry directory (``events-*.jsonl`` files).
    window:
        Sliding window in seconds for rates and latency quantiles.
    """

    def __init__(
        self, directory: str, window: float = DEFAULT_WINDOW_SECONDS
    ) -> None:
        self.directory = str(directory)
        self.window = float(window)
        self._offsets: dict[str, int] = {}
        # cumulative state
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.timings: dict[str, dict] = {}
        self.events_total = 0
        self.skipped_lines = 0
        self.trace_ids: set[str] = set()
        self.last_seen: dict[str, float] = {}
        self.active_jobs: dict[str, dict] = {}
        # windowed samples (pruned against ``window``)
        self._completions: deque = deque()
        self._failures: deque = deque()
        self._requeues: deque = deque()
        self._job_samples: deque = deque()  # (end_ts, duration, process)

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def poll(self) -> int:
        """Consume newly appended complete lines; returns events ingested."""
        ingested = 0
        pattern = os.path.join(self.directory, _EVENT_GLOB)
        for path in sorted(glob.glob(pattern)):
            name = os.path.basename(path)
            offset = self._offsets.get(name, 0)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            if size < offset:
                offset = 0  # file was truncated/replaced: start over
            if size == offset:
                continue
            with open(path, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
            # Only complete lines are consumed; a partial tail (a process
            # mid-write or mid-crash) stays unread until it gains its "\n".
            last_newline = chunk.rfind(b"\n")
            if last_newline < 0:
                continue
            complete, consumed = chunk[: last_newline + 1], last_newline + 1
            self._offsets[name] = offset + consumed
            for raw in complete.splitlines():
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    record = json.loads(raw.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    self.skipped_lines += 1
                    continue
                if isinstance(record, dict):
                    self._ingest(record)
                    ingested += 1
                else:
                    self.skipped_lines += 1
        return ingested

    def _ingest(self, record: dict) -> None:
        self.events_total += 1
        ts = float(record.get("ts", 0.0))
        process = str(record.get("process", "?"))
        if ts > self.last_seen.get(process, 0.0):
            self.last_seen[process] = ts
        trace_id = record.get("trace")
        if trace_id:
            self.trace_ids.add(str(trace_id))
        kind = record.get("kind")
        if kind == "metrics":
            self._merge_metrics(record)
        elif kind == "span":
            if record.get("name") == "worker.job":
                duration = float(record.get("duration_seconds", 0.0))
                self._job_samples.append((ts, duration, process))
                job = record.get("job")
                if job is not None:
                    self.active_jobs.pop(str(job), None)
        elif kind == "event":
            self._ingest_event(record, ts)

    def _ingest_event(self, record: dict, ts: float) -> None:
        name = record.get("name")
        job = record.get("job")
        if name == "queue.claim" and job is not None:
            self.active_jobs[str(job)] = {
                "worker": record.get("worker"),
                "since": ts,
                "attempts": record.get("attempts"),
            }
            return
        if name in ("queue.done", "queue.requeue", "queue.failed"):
            if job is not None:
                self.active_jobs.pop(str(job), None)
            bucket = {
                "queue.done": self._completions,
                "queue.requeue": self._requeues,
                "queue.failed": self._failures,
            }[name]
            bucket.append(ts)

    def _merge_metrics(self, record: dict) -> None:
        for name, value in record.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in record.get("gauges", {}).items():
            self.gauges[name] = float(value)
        for name, serialized in record.get("timings", {}).items():
            aggregate = self.timings.get(name)
            if aggregate is None:
                self.timings[name] = dict(serialized)
                continue
            aggregate["count"] += int(serialized["count"])
            aggregate["total"] += float(serialized["total"])
            aggregate["min"] = min(aggregate["min"], float(serialized["min"]))
            aggregate["max"] = max(aggregate["max"], float(serialized["max"]))
            aggregate["mean"] = (
                aggregate["total"] / aggregate["count"] if aggregate["count"] else 0.0
            )

    # ------------------------------------------------------------------ #
    # checkpoints
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> dict:
        """The tailer's resumable read position (JSON-able)."""
        return {"version": 1, "offsets": dict(self._offsets)}

    def save_checkpoint(self, path: str) -> None:
        """Persist :meth:`checkpoint` atomically to ``path``."""
        staging = f"{path}.tmp"
        with open(staging, "w", encoding="utf-8") as handle:
            json.dump(self.checkpoint(), handle, sort_keys=True)
        os.replace(staging, path)

    def load_checkpoint(self, path: str) -> bool:
        """Adopt offsets saved by a prior run; ``False`` if absent/corrupt."""
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            offsets = payload["offsets"]
        except (OSError, ValueError, KeyError, TypeError):
            return False
        if not isinstance(offsets, dict):
            return False
        self._offsets = {str(name): int(offset) for name, offset in offsets.items()}
        return True

    # ------------------------------------------------------------------ #
    # windowed statistics
    # ------------------------------------------------------------------ #
    def _prune(self, now: float) -> None:
        horizon = now - self.window
        for bucket in (self._completions, self._failures, self._requeues):
            while bucket and bucket[0] < horizon:
                bucket.popleft()
        while self._job_samples and self._job_samples[0][0] < horizon:
            self._job_samples.popleft()

    def window_stats(self, now: Optional[float] = None) -> dict:
        """Rates over the sliding window, ending at ``now`` (wall clock)."""
        now = time.time() if now is None else float(now)
        self._prune(now)
        done = len(self._completions)
        requeues = len(self._requeues)
        failures = len(self._failures)
        durations = sorted(sample[1] for sample in self._job_samples)
        transitions = done + requeues + failures
        busy: dict[str, float] = {}
        horizon = now - self.window
        for end, duration, process in self._job_samples:
            overlap = min(end, now) - max(end - duration, horizon)
            if overlap > 0:
                busy[process] = busy.get(process, 0.0) + overlap
        return {
            "window_seconds": self.window,
            "jobs_completed": done,
            "jobs_failed": failures,
            "jobs_requeued": requeues,
            "jobs_per_second": done / self.window if self.window > 0 else 0.0,
            "requeue_rate": requeues / transitions if transitions else 0.0,
            "job_latency_p50_seconds": _quantile(durations, 0.50),
            "job_latency_p95_seconds": _quantile(durations, 0.95),
            "job_latency_sum_seconds": sum(durations),
            "job_latency_count": len(durations),
            "worker_busy_seconds": busy,
        }

    def cache_hit_ratio(self, extra: Optional[dict] = None) -> Optional[float]:
        """Cumulative store/serve cache hit ratio across all sources seen."""
        counters = dict(self.counters)
        for name, value in ((extra or {}).get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        hits = counters.get("engine.store.hit", 0) + counters.get("serve.cache.hit", 0)
        misses = (
            counters.get("engine.store.miss", 0) + counters.get("serve.cache.miss", 0)
        )
        return hits / (hits + misses) if hits + misses else None

    # ------------------------------------------------------------------ #
    # exposition
    # ------------------------------------------------------------------ #
    def prometheus_families(
        self,
        extra: Optional[dict] = None,
        now: Optional[float] = None,
        version: Optional[str] = None,
    ) -> list[dict]:
        """Metric families for :func:`render_prometheus`.

        ``extra`` is a live in-process registry snapshot (the ``repro
        serve`` process's own counters, which are not flushed to disk until
        shutdown); its counters add to, and its gauges override, the tailed
        cumulative state.
        """
        counters = dict(self.counters)
        gauges = dict(self.gauges)
        timings = {name: dict(agg) for name, agg in self.timings.items()}
        if extra:
            for name, value in (extra.get("counters") or {}).items():
                counters[name] = counters.get(name, 0) + value
            gauges.update(extra.get("gauges") or {})
            for name, serialized in (extra.get("timings") or {}).items():
                self._merge_extra_timing(timings, name, serialized)

        families = []
        if version is not None:
            families.append(
                {
                    "name": "repro_build_info",
                    "type": "gauge",
                    "help": "Package version of the exporting process.",
                    "samples": [{"labels": {"version": version}, "value": 1}],
                }
            )
        for name in sorted(counters):
            families.append(
                {
                    "name": metric_name(name) + "_total",
                    "type": "counter",
                    "help": f"Cumulative telemetry counter {name}.",
                    "samples": [{"value": counters[name]}],
                }
            )
        for name in sorted(gauges):
            families.append(
                {
                    "name": metric_name(name),
                    "type": "gauge",
                    "help": f"Telemetry gauge {name}.",
                    "samples": [{"value": gauges[name]}],
                }
            )
        for name in sorted(timings):
            aggregate = timings[name]
            base = metric_name(name)
            families.append(
                {
                    "name": base,
                    "type": "summary",
                    "help": f"Telemetry timing aggregate {name}.",
                    "samples": [
                        {"suffix": "_sum", "value": aggregate["total"]},
                        {"suffix": "_count", "value": aggregate["count"]},
                        {"suffix": "_min", "value": aggregate["min"]},
                        {"suffix": "_max", "value": aggregate["max"]},
                    ],
                }
            )

        stats = self.window_stats(now=now)
        families.extend(self._window_families(stats))
        ratio = self.cache_hit_ratio(extra)
        if ratio is not None:
            families.append(
                {
                    "name": "repro_cache_hit_ratio",
                    "type": "gauge",
                    "help": "Cumulative cache hit ratio (store + serve).",
                    "samples": [{"value": ratio}],
                }
            )
        families.extend(
            [
                {
                    "name": "repro_telemetry_events_total",
                    "type": "counter",
                    "help": "Telemetry events ingested by the tailer.",
                    "samples": [{"value": self.events_total}],
                },
                {
                    "name": "repro_telemetry_skipped_lines_total",
                    "type": "counter",
                    "help": "Corrupt or truncated telemetry lines skipped.",
                    "samples": [{"value": self.skipped_lines}],
                },
                {
                    "name": "repro_traces_total",
                    "type": "counter",
                    "help": "Distinct trace ids observed.",
                    "samples": [{"value": len(self.trace_ids)}],
                },
                {
                    "name": "repro_jobs_in_flight",
                    "type": "gauge",
                    "help": "Jobs claimed but not yet done/failed/requeued.",
                    "samples": [{"value": len(self.active_jobs)}],
                },
            ]
        )
        return families

    @staticmethod
    def _merge_extra_timing(timings: dict, name: str, serialized: dict) -> None:
        aggregate = timings.get(name)
        if aggregate is None:
            timings[name] = dict(serialized)
            return
        aggregate["count"] += int(serialized["count"])
        aggregate["total"] += float(serialized["total"])
        aggregate["min"] = min(aggregate["min"], float(serialized["min"]))
        aggregate["max"] = max(aggregate["max"], float(serialized["max"]))

    @staticmethod
    def _window_families(stats: dict) -> list[dict]:
        window = {"window_seconds": stats["window_seconds"]}
        return [
            {
                "name": "repro_jobs_per_second",
                "type": "gauge",
                "help": "Job completion rate over the sliding window.",
                "samples": [{"labels": window, "value": stats["jobs_per_second"]}],
            },
            {
                "name": "repro_requeue_rate",
                "type": "gauge",
                "help": "Requeues over job transitions in the sliding window.",
                "samples": [{"labels": window, "value": stats["requeue_rate"]}],
            },
            {
                "name": "repro_job_latency_seconds",
                "type": "summary",
                "help": "worker.job span durations over the sliding window.",
                "samples": [
                    {
                        "labels": {"quantile": "0.5"},
                        "value": stats["job_latency_p50_seconds"],
                    },
                    {
                        "labels": {"quantile": "0.95"},
                        "value": stats["job_latency_p95_seconds"],
                    },
                    {"suffix": "_sum", "value": stats["job_latency_sum_seconds"]},
                    {"suffix": "_count", "value": stats["job_latency_count"]},
                ],
            },
        ]

    def exposition(
        self,
        extra: Optional[dict] = None,
        now: Optional[float] = None,
        version: Optional[str] = None,
    ) -> str:
        """One :meth:`poll` + the rendered Prometheus exposition text."""
        self.poll()
        return render_prometheus(
            self.prometheus_families(extra=extra, now=now, version=version)
        )
