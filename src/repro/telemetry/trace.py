"""Trace-context propagation and cross-process trace reconstruction.

A *trace* follows one unit of platform work — an HTTP request accepted by
``repro serve``, or one ``repro fleet run`` invocation — across every
process that touches it.  The model is deliberately small:

* a **trace id** is 16 hex characters minted from :func:`os.urandom` (no
  simulation RNG stream is ever touched, preserving the telemetry
  invisibility contract);
* the id travels *in band* as execution metadata — stamped into fleet job
  descriptors and engine chunk payloads, never into a
  :class:`~repro.api.WorkRequest` — so tickets, ETags and store keys are
  byte-identical with tracing on or off;
* inside a process the id lives in a thread-local **trace scope**
  (:func:`attach` / :func:`attach_carrier`); while a scope is active,
  every record the process's :class:`~repro.telemetry.core.Telemetry`
  writes is stamped with ``"trace"``, and top-level spans additionally
  record the remote parent span id as ``"trace_parent"`` — the
  cross-process edge.

Reconstruction reads the merged event files back
(:func:`~repro.telemetry.report.load_events`) and rebuilds the tree:
:func:`summarize_trace` links spans by in-process ``parent_id`` first and
``trace_parent`` across processes, synthesises per-job spool-wait times
from traced ``queue.enqueue`` events, and computes the critical path (the
chain of spans that determines the trace's wall time).  ``repro telemetry
trace <id>`` renders the result via :func:`format_trace`.
"""

from __future__ import annotations

import os
import threading
from typing import Iterable, Optional, Sequence

__all__ = [
    "TRACE_FIELD",
    "attach_carrier",
    "attach_trace",
    "current_parent",
    "current_trace_id",
    "format_trace",
    "list_traces",
    "mint_trace_id",
    "stamp",
    "summarize_trace",
]

#: Field name stamped on telemetry records (and carried by job payloads).
TRACE_FIELD = "trace"

_local = threading.local()


def mint_trace_id() -> str:
    """A fresh 16-hex-char trace id (entropy from the OS, not any sim RNG)."""
    return os.urandom(8).hex()


def _scopes() -> list:
    scopes = getattr(_local, "scopes", None)
    if scopes is None:
        scopes = _local.scopes = []
    return scopes


def current_trace_id() -> Optional[str]:
    """The innermost attached trace id, or ``None`` outside any scope."""
    scopes = getattr(_local, "scopes", None)
    return scopes[-1][0] if scopes else None


def current_parent() -> Optional[str]:
    """The innermost scope's remote parent span id (``None`` when absent)."""
    scopes = getattr(_local, "scopes", None)
    return scopes[-1][1] if scopes else None


class _NullScope:
    """No-op scope returned for an empty carrier (keeps call sites branchless)."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class _TraceScope:
    """Thread-local activation of one trace id (+ optional remote parent)."""

    __slots__ = ("trace_id", "parent")

    def __init__(self, trace_id: str, parent: Optional[str]) -> None:
        self.trace_id = trace_id
        self.parent = parent

    def __enter__(self) -> "_TraceScope":
        _scopes().append((self.trace_id, self.parent))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        scopes = _scopes()
        if scopes:
            scopes.pop()
        return False


def attach_trace(trace_id: Optional[str], parent: Optional[str] = None):
    """A context manager activating ``trace_id`` for the current thread.

    ``parent`` is the span id (in another process) that logically invoked
    this work; top-level spans recorded inside the scope are stamped with
    it as ``trace_parent``.  A falsy ``trace_id`` yields a no-op scope.
    """
    if not trace_id:
        return _NULL_SCOPE
    return _TraceScope(str(trace_id), parent)


def attach_carrier(carrier):
    """Activate a propagated carrier: a trace id string or ``{"id", "parent"}``."""
    if not carrier:
        return _NULL_SCOPE
    if isinstance(carrier, str):
        return attach_trace(carrier)
    try:
        return attach_trace(carrier.get("id"), carrier.get("parent"))
    except AttributeError:
        return _NULL_SCOPE


def stamp(record: dict) -> None:
    """Stamp the active scope onto one telemetry record (in place).

    Called from :meth:`Telemetry._write <repro.telemetry.core.Telemetry>`
    on the already-enabled path only, so the disabled fast path never pays
    for it.  Spans with no in-process parent get the scope's remote parent
    as ``trace_parent`` — the edge :func:`summarize_trace` follows across
    process boundaries.
    """
    scopes = getattr(_local, "scopes", None)
    if not scopes:
        return
    trace_id, parent = scopes[-1]
    record.setdefault(TRACE_FIELD, trace_id)
    if (
        parent is not None
        and record.get("kind") == "span"
        and record.get("parent_id") is None
        and "trace_parent" not in record
    ):
        record["trace_parent"] = parent


# --------------------------------------------------------------------- #
# reconstruction
# --------------------------------------------------------------------- #
def list_traces(events: Sequence[dict]) -> list[dict]:
    """Every trace id seen in ``events``, newest first, with a one-line shape.

    Each entry: ``trace``, ``root`` (name of the earliest-starting root
    span, or ``None``), ``spans``, ``processes``, ``started`` (epoch
    seconds) and ``wall_seconds``.
    """
    by_trace: dict[str, list[dict]] = {}
    for event in events:
        trace_id = event.get(TRACE_FIELD)
        if trace_id:
            by_trace.setdefault(str(trace_id), []).append(event)
    entries = []
    for trace_id, records in by_trace.items():
        summary = summarize_trace(records, trace_id)
        entries.append(
            {
                "trace": trace_id,
                "root": summary["roots"][0]["name"] if summary["roots"] else None,
                "spans": summary["spans"],
                "processes": len(summary["processes"]),
                "started": summary["started"],
                "wall_seconds": summary["wall_seconds"],
            }
        )
    entries.sort(key=lambda entry: -(entry["started"] or 0.0))
    return entries


def _span_nodes(events: Iterable[dict], trace_id: str) -> list[dict]:
    """Span records of one trace as mutable tree nodes (children unset)."""
    nodes = []
    for event in events:
        if event.get("kind") != "span" or event.get(TRACE_FIELD) != trace_id:
            continue
        end = float(event.get("ts", 0.0))
        duration = float(event.get("duration_seconds", 0.0))
        node = {
            "name": event.get("name", "?"),
            "span_id": event.get("span_id"),
            "parent_id": event.get("parent_id"),
            "trace_parent": event.get("trace_parent"),
            "process": event.get("process", "?"),
            "start": end - duration,
            "end": end,
            "duration_seconds": duration,
            "children": [],
        }
        for key, value in event.items():
            if key not in node and key not in (
                "kind", "ts", TRACE_FIELD, "duration_seconds",
            ):
                node[key] = value
        nodes.append(node)
    return nodes


def _link(nodes: list[dict]) -> list[dict]:
    """Wire parent/child edges; returns the roots sorted by start time."""
    by_id = {}
    for node in nodes:
        span_id = node["span_id"]
        if span_id is not None and span_id not in by_id:
            by_id[span_id] = node
    roots = []
    for node in nodes:
        parent = by_id.get(node["parent_id"]) or by_id.get(node["trace_parent"])
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    for node in nodes:
        node["children"].sort(key=lambda child: child["start"])
    roots.sort(key=lambda node: node["start"])
    return roots


def _attach_queue_waits(events: Iterable[dict], trace_id: str, nodes: list[dict]) -> dict:
    """Fold traced ``queue.enqueue`` events into per-job spool-wait times."""
    enqueued: dict[str, float] = {}
    for event in events:
        if (
            event.get("kind") == "event"
            and event.get("name") == "queue.enqueue"
            and event.get(TRACE_FIELD) == trace_id
            and event.get("job")
        ):
            enqueued[str(event["job"])] = float(event.get("ts", 0.0))
    waits = []
    for node in nodes:
        job = node.get("job")
        if node["name"] == "worker.job" and job in enqueued:
            wait = max(0.0, node["start"] - enqueued[job])
            node["queue_wait_seconds"] = wait
            waits.append(wait)
    summary = {"jobs_enqueued": len(enqueued), "jobs_executed": len(waits)}
    if waits:
        summary["mean_wait_seconds"] = sum(waits) / len(waits)
        summary["max_wait_seconds"] = max(waits)
    return summary


def _critical_path(roots: list[dict]) -> list[dict]:
    """The chain of spans that determines the trace's end time.

    Starting from the root that finishes last, repeatedly descend into the
    child that finishes last: the resulting spine is the sequence of spans
    on which the trace's wall-clock completion actually waited.
    """
    if not roots:
        return []
    path = []
    node = max(roots, key=lambda candidate: candidate["end"])
    while node is not None:
        path.append(
            {
                "name": node["name"],
                "process": node["process"],
                "span_id": node["span_id"],
                "duration_seconds": node["duration_seconds"],
            }
        )
        children = node["children"]
        node = max(children, key=lambda child: child["end"]) if children else None
    return path


def summarize_trace(events: Sequence[dict], trace_id: str) -> dict:
    """Reconstruct one trace from merged telemetry events.

    Returns a JSON-able dict: ``trace``, ``spans``, ``events`` (non-span
    records carrying the trace), ``processes`` (sorted), ``started`` /
    ``wall_seconds`` (earliest span start / overall extent), ``roots``
    (the span forest, children nested), ``critical_path`` and ``queue``
    (spool-wait statistics for the trace's jobs).
    """
    trace_id = str(trace_id)
    nodes = _span_nodes(events, trace_id)
    plain = [
        event
        for event in events
        if event.get(TRACE_FIELD) == trace_id and event.get("kind") != "span"
    ]
    roots = _link(nodes)
    queue = _attach_queue_waits(events, trace_id, nodes)
    processes = sorted({node["process"] for node in nodes})
    started = min((node["start"] for node in nodes), default=None)
    finished = max((node["end"] for node in nodes), default=None)
    return {
        "trace": trace_id,
        "spans": len(nodes),
        "events": len(plain),
        "processes": processes,
        "started": started,
        "wall_seconds": (finished - started) if nodes else 0.0,
        "roots": roots,
        "critical_path": _critical_path(roots),
        "queue": queue,
    }


def _format_node(node: dict, origin: float, depth: int, lines: list[str]) -> None:
    offset = node["start"] - origin
    detail = [f"+{offset:.3f}s", f"{node['duration_seconds']:.3f}s"]
    for key in ("job", "worker", "label", "shard", "outcome", "error"):
        if node.get(key) is not None:
            detail.append(f"{key}={node[key]}")
    if node.get("queue_wait_seconds") is not None:
        detail.append(f"queue_wait={node['queue_wait_seconds']:.3f}s")
    lines.append(
        f"{'  ' * depth}{node['name']} [{node['process']}]  " + "  ".join(detail)
    )
    for child in node["children"]:
        _format_node(child, origin, depth + 1, lines)


def format_trace(summary: dict) -> str:
    """Human-readable rendering of a :func:`summarize_trace` summary."""
    lines = [
        f"trace {summary['trace']}: {summary['spans']} spans across "
        f"{len(summary['processes'])} process(es), "
        f"{summary['wall_seconds']:.3f}s wall"
    ]
    if summary["processes"]:
        lines.append("processes: " + ", ".join(summary["processes"]))
    queue = summary.get("queue") or {}
    if queue.get("jobs_executed"):
        lines.append(
            f"spool: {queue['jobs_executed']}/{queue['jobs_enqueued']} traced "
            f"job(s) executed, mean wait {queue.get('mean_wait_seconds', 0.0):.3f}s, "
            f"max {queue.get('max_wait_seconds', 0.0):.3f}s"
        )
    if not summary["roots"]:
        lines.append("no spans recorded for this trace")
        return "\n".join(lines) + "\n"
    origin = summary["started"] or 0.0
    lines.append("")
    for root in summary["roots"]:
        _format_node(root, origin, 0, lines)
    path = summary["critical_path"]
    if path:
        lines.append("")
        total = sum(step["duration_seconds"] for step in path)
        steps = " -> ".join(
            f"{step['name']}({step['duration_seconds']:.3f}s)" for step in path
        )
        lines.append(f"critical path ({total:.3f}s): {steps}")
    return "\n".join(lines) + "\n"
