"""repro.telemetry — structured tracing, metrics, and run reporting.

See :mod:`repro.telemetry.core` for the tracer/metrics registry,
:mod:`repro.telemetry.trace` for cross-process trace propagation and
reconstruction, :mod:`repro.telemetry.timeseries` for the incremental
event tailer and Prometheus exposition, :mod:`repro.telemetry.report` for
the ``repro telemetry report`` merger, and :mod:`repro.telemetry.log` for
stdlib ``logging`` wiring.
"""

from repro.telemetry.core import (
    Telemetry,
    activate,
    active,
    count,
    current_span_id,
    deactivate,
    default_process_id,
    disable,
    enable,
    event,
    gauge,
    span,
    timing,
    trace_carrier,
)
from repro.telemetry.log import LOG_FORMAT, configure, get_logger
from repro.telemetry.report import (
    format_report,
    load_events,
    summarize_events,
    telemetry_report,
)
from repro.telemetry.timeseries import (
    TelemetryTailer,
    render_prometheus,
    validate_exposition,
)
from repro.telemetry.trace import (
    attach_carrier,
    attach_trace,
    current_trace_id,
    format_trace,
    list_traces,
    mint_trace_id,
    summarize_trace,
)

__all__ = [
    "LOG_FORMAT",
    "Telemetry",
    "TelemetryTailer",
    "activate",
    "active",
    "attach_carrier",
    "attach_trace",
    "configure",
    "count",
    "current_span_id",
    "current_trace_id",
    "deactivate",
    "default_process_id",
    "disable",
    "enable",
    "event",
    "format_report",
    "format_trace",
    "gauge",
    "get_logger",
    "list_traces",
    "load_events",
    "mint_trace_id",
    "render_prometheus",
    "span",
    "summarize_events",
    "summarize_trace",
    "telemetry_report",
    "timing",
    "trace_carrier",
    "validate_exposition",
]
