"""repro.telemetry — structured tracing, metrics, and run reporting.

See :mod:`repro.telemetry.core` for the tracer/metrics registry,
:mod:`repro.telemetry.report` for the ``repro telemetry report`` merger, and
:mod:`repro.telemetry.log` for stdlib ``logging`` wiring.
"""

from repro.telemetry.core import (
    Telemetry,
    activate,
    active,
    count,
    deactivate,
    default_process_id,
    disable,
    enable,
    event,
    gauge,
    span,
    timing,
)
from repro.telemetry.log import LOG_FORMAT, configure, get_logger
from repro.telemetry.report import (
    format_report,
    load_events,
    summarize_events,
    telemetry_report,
)

__all__ = [
    "LOG_FORMAT",
    "Telemetry",
    "activate",
    "active",
    "configure",
    "count",
    "deactivate",
    "default_process_id",
    "disable",
    "enable",
    "event",
    "format_report",
    "gauge",
    "get_logger",
    "load_events",
    "span",
    "summarize_events",
    "telemetry_report",
    "timing",
]
