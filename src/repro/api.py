"""Unified work-request facade: one boundary where requests become plans.

Historically, request-to-:class:`~repro.engine.TrialSpec` compilation was
smeared across three call sites — the argparse handlers in
:mod:`repro.cli`, the sweep factories in :mod:`repro.sweeps` and the fleet
job descriptors in :mod:`repro.fleet.jobs` — and adding a fourth consumer
(the ``repro serve`` HTTP boundary) would have meant a fourth copy.  This
module is the single seam instead:

:class:`WorkRequest`
    A JSON-able description of a sweep, experiment or flood workload, with
    schema-versioned :meth:`~WorkRequest.to_json` / :meth:`~WorkRequest
    .from_json` round-tripping and strict validation.  Family parameters
    are *canonicalized* on construction — unknown names rejected, missing
    ones filled with the family's defaults, values coerced to the default's
    numeric type — so two requests that mean the same workload compile to
    the same specs and therefore the same content-addressed store keys.
:func:`compile_request`
    ``WorkRequest -> CompiledPlan``: the tagged :class:`~repro.engine
    .TrialSpec` jobs, their expected store keys, the shard semantics
    (``"trials"`` vs ``"jobs"``) and a pure assembly function mapping store
    records to the request's JSON result payload.

Validation failures raise the :class:`RequestError` taxonomy (all
``ValueError`` subclasses): :class:`SchemaError` for malformed payloads,
:class:`UnknownFamilyError` / :class:`UnknownExperimentError` for bad
identifiers, :class:`InvalidParameterError` for bad values.  ``repro
serve`` maps exactly these onto structured HTTP 400 bodies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.engine import TrialSpec, batch_store_key
from repro.experiments.pipeline import SCALES, ExperimentPlan, compile_experiment
from repro.experiments.runner import (
    measurement_from_record,
    sweep_as_dicts,
    sweep_trial_specs,
)
from repro.stats.sequential import StoppingRule
from repro.sweeps import SWEEP_FAMILY_DEFAULTS, resolve_family
from repro.util.stats import summarize

#: Version stamped into (and required of) serialized request payloads.
SCHEMA_VERSION = 1

#: The request kinds this facade compiles.
REQUEST_KINDS = ("sweep", "experiment", "flood")

#: Canonical parameters (and defaults) of a flood request per family.  These
#: mirror the ``repro flood`` CLI defaults; sweep families use
#: :data:`repro.sweeps.SWEEP_FAMILY_DEFAULTS`.
FLOOD_FAMILY_DEFAULTS: dict[str, dict] = {
    "edge-meg": {"nodes": 100, "p": 0.01, "q": 0.5},
    "waypoint": {"nodes": 100, "side": 10.0, "radius": 1.0, "speed": 1.0},
    "grid-walk": {"nodes": 64, "grid_side": 8, "augment_k": 1},
}

_KIND_FIELDS = {
    "sweep": (
        "family", "nodes", "trials", "seed", "sources", "num_sources", "params",
        "stopping",
    ),
    "experiment": ("experiment_id", "scale", "seed"),
    "flood": ("family", "trials", "seed", "sources", "num_sources", "params"),
}


class RequestError(ValueError):
    """A work request that cannot be compiled (the HTTP 400 family)."""


class SchemaError(RequestError):
    """A request payload that is structurally malformed."""


class UnknownFamilyError(RequestError):
    """A request naming a model family that is not registered."""


class UnknownExperimentError(RequestError):
    """A request naming an experiment id that is not registered."""


class InvalidParameterError(RequestError):
    """A request carrying an unknown parameter or an invalid value."""


def estimator_description(sources: Optional[str], num_sources: Optional[int]) -> str:
    """The human-readable estimator line shared by the CLI and API payloads."""
    if sources == "all":
        return "worst case over all sources"
    if num_sources is not None:
        return f"worst case over {num_sources} sampled sources"
    return "single source"


def _coerce_like(name: str, value: object, default: object, context: str) -> object:
    """``value`` coerced to the type of ``default`` (strict for integers)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InvalidParameterError(
            f"{context} parameter {name!r} must be a number, got {value!r}"
        )
    if isinstance(default, bool):  # pragma: no cover - no boolean params today
        raise InvalidParameterError(f"{context} parameter {name!r} is not settable")
    if isinstance(default, int):
        if float(value) != int(value):
            raise InvalidParameterError(
                f"{context} parameter {name!r} must be an integer, got {value!r}"
            )
        return int(value)
    return float(value)


def _canonical_params(
    params: Optional[Mapping], defaults: Mapping, context: str
) -> dict:
    """Validated params: unknown names rejected, gaps filled from defaults."""
    given = dict(params or {})
    unknown = set(given) - set(defaults)
    if unknown:
        raise InvalidParameterError(
            f"unknown {context} parameter(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(defaults))}"
        )
    canonical = {}
    for name, default in defaults.items():
        if name in given:
            canonical[name] = _coerce_like(name, given[name], default, context)
        else:
            canonical[name] = default
    return canonical


def _require_int(name: str, value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InvalidParameterError(f"{name} must be an integer, got {value!r}")
    if float(value) != int(value):
        raise InvalidParameterError(f"{name} must be an integer, got {value!r}")
    return int(value)


@dataclass(frozen=True, eq=True)
class WorkRequest:
    """One JSON-able unit of simulation work (sweep, experiment or flood).

    Construction *is* validation: any instance that exists compiles.  Use
    the :func:`sweep_request` / :func:`experiment_request` /
    :func:`flood_request` conveniences, or :meth:`from_dict` /
    :meth:`from_json` at serialization boundaries.
    """

    kind: str
    family: Optional[str] = None
    experiment_id: Optional[str] = None
    scale: str = "small"
    nodes: tuple = ()
    #: One trial count for every point, or (sweeps only) a per-point tuple —
    #: how the fleet's variance-aware pilot sizes noisy points individually.
    trials: object = 0
    seed: int = 0
    sources: Optional[str] = None
    num_sources: Optional[int] = None
    params: dict = field(default_factory=dict)
    #: Optional sequential stopping rule (sweeps only); ``trials`` then caps
    #: the per-point budget.  Accepts a mapping at the JSON boundary.
    stopping: Optional[StoppingRule] = None

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise SchemaError(
                f"request kind must be one of {REQUEST_KINDS}, got {self.kind!r}"
            )
        {
            "sweep": self._normalize_sweep,
            "experiment": self._normalize_experiment,
            "flood": self._normalize_flood,
        }[self.kind]()

    # -------------------------------------------------------------- #
    # per-kind normalization (runs once, under __post_init__)
    # -------------------------------------------------------------- #
    def _set(self, **fields) -> None:
        for name, value in fields.items():
            object.__setattr__(self, name, value)

    def _normalize_sources(self) -> None:
        if self.sources is not None and self.sources != "all":
            raise InvalidParameterError(
                f"{self.kind} sources must be 'all' or None (use num_sources "
                f"to sample), got {self.sources!r}"
            )
        if self.num_sources is not None:
            if self.sources is not None:
                raise InvalidParameterError(
                    "sources and num_sources are mutually exclusive"
                )
            num_sources = _require_int("num_sources", self.num_sources)
            if num_sources < 1:
                raise InvalidParameterError(
                    f"num_sources must be >= 1, got {num_sources}"
                )
            self._set(num_sources=num_sources)

    def _normalize_trials_seed(self) -> None:
        trials = _require_int("trials", self.trials)
        if trials < 1:
            raise InvalidParameterError(f"trials must be >= 1, got {trials}")
        self._set(trials=trials, seed=_require_int("seed", self.seed))

    def _forbid(self, *names: str) -> None:
        blank = {"family": None, "experiment_id": None, "nodes": (), "trials": 0,
                 "sources": None, "num_sources": None, "params": {},
                 "stopping": None}
        for name in names:
            if getattr(self, name) not in (blank[name], None):
                raise SchemaError(
                    f"{name!r} does not apply to {self.kind} requests"
                )

    def _normalize_sweep(self) -> None:
        self._forbid("experiment_id")
        if not self.family:
            raise SchemaError("a sweep request needs a family")
        try:
            resolve_family(self.family)
        except ValueError as error:
            raise UnknownFamilyError(str(error)) from None
        nodes = self.nodes
        if not isinstance(nodes, (list, tuple)) or not nodes:
            raise InvalidParameterError(
                f"nodes must be a non-empty list of node counts, got {nodes!r}"
            )
        nodes = tuple(_require_int("nodes entry", n) for n in nodes)
        if any(n < 1 for n in nodes):
            raise InvalidParameterError(f"node counts must be >= 1, got {list(nodes)}")
        if isinstance(self.trials, (list, tuple)):
            trials = tuple(_require_int("trials entry", t) for t in self.trials)
            if len(trials) != len(nodes):
                raise InvalidParameterError(
                    f"a per-point trials list needs one count per node count: "
                    f"got {len(trials)} counts for {len(nodes)} points"
                )
            if any(t < 1 for t in trials):
                raise InvalidParameterError(
                    f"trial counts must be >= 1, got {list(trials)}"
                )
            self._set(trials=trials, seed=_require_int("seed", self.seed))
        else:
            self._normalize_trials_seed()
        if self.stopping is not None:
            if isinstance(self.stopping, Mapping):
                try:
                    rule = StoppingRule.from_dict(dict(self.stopping))
                except ValueError as error:
                    raise InvalidParameterError(
                        f"invalid stopping rule: {error}"
                    ) from None
            elif isinstance(self.stopping, StoppingRule):
                rule = self.stopping
            else:
                raise InvalidParameterError(
                    f"stopping must be a StoppingRule or mapping, "
                    f"got {type(self.stopping).__name__}"
                )
            self._set(stopping=rule)
        self._normalize_sources()
        self._set(
            nodes=nodes,
            params=_canonical_params(
                self.params, SWEEP_FAMILY_DEFAULTS[self.family], self.family
            ),
        )

    def _normalize_experiment(self) -> None:
        self._forbid(
            "family", "nodes", "trials", "sources", "num_sources", "params", "stopping"
        )
        if not self.experiment_id:
            raise SchemaError("an experiment request needs an experiment_id")
        from repro.experiments.registry import EXPERIMENTS

        if self.experiment_id not in EXPERIMENTS:
            known = ", ".join(sorted(EXPERIMENTS, key=lambda e: int(e[1:])))
            raise UnknownExperimentError(
                f"unknown experiment {self.experiment_id!r}; known ids: {known}"
            )
        if self.scale not in SCALES:
            raise InvalidParameterError(
                f"scale must be one of {SCALES}, got {self.scale!r}"
            )
        self._set(seed=_require_int("seed", self.seed))

    def _normalize_flood(self) -> None:
        self._forbid("experiment_id", "nodes", "stopping")
        if not self.family:
            raise SchemaError("a flood request needs a family")
        if self.family not in FLOOD_FAMILY_DEFAULTS:
            raise UnknownFamilyError(
                f"unknown flood family {self.family!r}; known families: "
                f"{', '.join(sorted(FLOOD_FAMILY_DEFAULTS))}"
            )
        self._normalize_trials_seed()
        self._normalize_sources()
        self._set(
            params=_canonical_params(
                self.params, FLOOD_FAMILY_DEFAULTS[self.family], self.family
            )
        )

    # -------------------------------------------------------------- #
    # serialization
    # -------------------------------------------------------------- #
    def as_dict(self) -> dict:
        """The canonical JSON-able payload (round-trips via :meth:`from_dict`)."""
        payload: dict = {"schema": SCHEMA_VERSION, "kind": self.kind}
        if self.kind == "experiment":
            payload.update(
                experiment_id=self.experiment_id, scale=self.scale, seed=self.seed
            )
            return payload
        trials = list(self.trials) if isinstance(self.trials, tuple) else self.trials
        payload.update(
            family=self.family, trials=trials, seed=self.seed,
            params=dict(self.params),
        )
        if self.kind == "sweep":
            payload["nodes"] = list(self.nodes)
        if self.sources is not None:
            payload["sources"] = self.sources
        if self.num_sources is not None:
            payload["num_sources"] = self.num_sources
        if self.stopping is not None:
            payload["stopping"] = self.stopping.as_dict()
        return payload

    def to_json(self) -> str:
        """Compact canonical JSON (stable across processes and machines)."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: object) -> "WorkRequest":
        """Parse and validate a request payload (strict: unknown keys fail)."""
        if not isinstance(payload, Mapping):
            raise SchemaError(
                f"a work request must be a JSON object, got {type(payload).__name__}"
            )
        data = dict(payload)
        schema = data.pop("schema", SCHEMA_VERSION)
        if schema != SCHEMA_VERSION:
            raise SchemaError(
                f"unsupported request schema {schema!r} "
                f"(this build speaks schema {SCHEMA_VERSION})"
            )
        kind = data.pop("kind", None)
        if kind not in REQUEST_KINDS:
            raise SchemaError(
                f"request kind must be one of {REQUEST_KINDS}, got {kind!r}"
            )
        unknown = set(data) - set(_KIND_FIELDS[kind])
        if unknown:
            raise SchemaError(
                f"unknown {kind} request field(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(_KIND_FIELDS[kind])}"
            )
        return cls(kind=kind, **data)

    @classmethod
    def from_json(cls, text: str) -> "WorkRequest":
        """Parse a serialized request (the HTTP body / spool descriptor form)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SchemaError(f"request is not valid JSON: {error}") from None
        return cls.from_dict(payload)


def sweep_request(
    family: str,
    nodes: Sequence[int],
    trials: object,
    seed: int = 0,
    sources: Optional[str] = None,
    num_sources: Optional[int] = None,
    params: Optional[Mapping] = None,
    stopping: Optional[object] = None,
) -> WorkRequest:
    """A node-count sweep request (the ``repro sweep`` workload).

    ``trials`` is one count for all points or a per-point sequence;
    ``stopping`` (a :class:`~repro.stats.sequential.StoppingRule` or its
    mapping form) makes the sweep adaptive with ``trials`` as the budget.
    """
    if isinstance(trials, (list, tuple)):
        trials = tuple(trials)
    return WorkRequest(
        kind="sweep", family=family, nodes=tuple(nodes), trials=trials, seed=seed,
        sources=sources, num_sources=num_sources, params=dict(params or {}),
        stopping=stopping,
    )


def experiment_request(
    experiment_id: str, scale: str = "small", seed: int = 0
) -> WorkRequest:
    """A registered-experiment request (the ``repro experiment`` workload)."""
    return WorkRequest(kind="experiment", experiment_id=experiment_id, scale=scale, seed=seed)


def flood_request(
    family: str,
    trials: int,
    seed: int = 0,
    sources: Optional[str] = None,
    num_sources: Optional[int] = None,
    params: Optional[Mapping] = None,
) -> WorkRequest:
    """A single-model flooding request (the ``repro flood`` workload)."""
    return WorkRequest(
        kind="flood", family=family, trials=trials, seed=seed,
        sources=sources, num_sources=num_sources, params=dict(params or {}),
    )


@dataclass(frozen=True)
class RequestJob:
    """One tagged engine workload of a compiled request."""

    tag: str
    spec: TrialSpec

    def store_key(self) -> str:
        """Content key of this job's full batch record in a result store."""
        return batch_store_key(self.spec)


@dataclass(frozen=True)
class CompiledPlan:
    """A compiled request: specs, store keys, shard semantics, assembly.

    Attributes
    ----------
    request:
        The compiled :class:`WorkRequest`.
    jobs:
        The tagged engine workloads, in deterministic order.
    shard_mode:
        ``"trials"`` — a fleet shard ``i/K`` runs trials ``i, i+K, ...`` of
        *every* job (sweeps and floods); ``"jobs"`` — a shard runs whole
        jobs ``i, i+K, ...`` of the list (experiments, whose per-job trial
        counts differ).
    assemble:
        ``{job tag: store record} -> result payload`` — pure given the
        request, so assembly from a warm store is byte-identical to
        assembly right after execution.
    """

    request: WorkRequest
    jobs: tuple[RequestJob, ...]
    shard_mode: str
    assemble: Callable[[Mapping[str, dict]], dict]

    @property
    def store_keys(self) -> list[str]:
        """Every job's expected parent-batch store key, in job order."""
        return [job.store_key() for job in self.jobs]


def _flood_model(family: str, params: Mapping):
    """The built model of a flood request (parameters already canonical)."""
    try:
        if family == "edge-meg":
            from repro.meg.edge_meg import EdgeMEG

            return EdgeMEG(params["nodes"], p=params["p"], q=params["q"])
        if family == "waypoint":
            from repro.mobility.random_waypoint import RandomWaypoint

            return RandomWaypoint(
                params["nodes"], side=params["side"], radius=params["radius"],
                v_min=params["speed"],
            )
        from repro.graphs.grid import augmented_grid_graph
        from repro.mobility.random_path import GraphRandomWalkMobility

        graph = augmented_grid_graph(params["grid_side"], params["augment_k"])
        return GraphRandomWalkMobility(params["nodes"], graph, holding_probability=0.5)
    except ValueError as error:
        raise InvalidParameterError(f"{family} model rejected its parameters: {error}") from None


def _compile_sweep(request: WorkRequest) -> CompiledPlan:
    trials = (
        list(request.trials) if isinstance(request.trials, tuple) else request.trials
    )
    specs = sweep_trial_specs(
        resolve_family(request.family),
        list(request.nodes),
        trials,
        sources=request.sources,
        num_sources=request.num_sources,
        rng=request.seed,
        factory_kwargs=dict(request.params),
        stopping=request.stopping,
    )
    jobs = tuple(
        RequestJob(tag=f"n={nodes}", spec=spec)
        for nodes, spec in zip(request.nodes, specs)
    )

    def assemble(records: Mapping[str, dict]) -> dict:
        measurements = [
            measurement_from_record(job.spec, records[job.tag]) for job in jobs
        ]
        payload = {
            "kind": "sweep",
            "family": request.family,
            "nodes": list(request.nodes),
            "trials": trials,
            "seed": request.seed,
            "estimator": estimator_description(request.sources, request.num_sources),
            "params": dict(request.params),
            "measurements": sweep_as_dicts(measurements),
        }
        # Adaptive-only key: fixed-count payloads keep their exact shape.
        if request.stopping is not None:
            payload["stopping"] = request.stopping.as_dict()
        return payload

    return CompiledPlan(request=request, jobs=jobs, shard_mode="trials", assemble=assemble)


def _compile_experiment(request: WorkRequest) -> CompiledPlan:
    plan = experiment_plan(request)
    jobs = tuple(RequestJob(tag=job.tag, spec=job.spec) for job in plan.jobs)

    def assemble(records: Mapping[str, dict]) -> dict:
        samples = {
            job.tag: [int(t) for t in records[job.tag]["flooding_times"]]
            for job in jobs
        }
        report = plan.assemble(samples)
        return {
            "kind": "experiment",
            "scale": request.scale,
            "seed": request.seed,
            "report": report.as_dict(),
        }

    return CompiledPlan(request=request, jobs=jobs, shard_mode="jobs", assemble=assemble)


def _compile_flood(request: WorkRequest) -> CompiledPlan:
    model = _flood_model(request.family, request.params)
    spec = TrialSpec.from_model(
        model,
        num_trials=request.trials,
        sources=request.sources,
        num_sources=request.num_sources,
        seed=request.seed,
        label=f"flood[{request.family}]",
    )
    jobs = (RequestJob(tag="flood", spec=spec),)

    def assemble(records: Mapping[str, dict]) -> dict:
        samples = [int(t) for t in records["flood"]["flooding_times"]]
        return {
            "kind": "flood",
            "family": request.family,
            "params": dict(request.params),
            "trials": request.trials,
            "seed": request.seed,
            "estimator": estimator_description(request.sources, request.num_sources),
            "samples": samples,
            "summary": summarize(samples).as_dict(),
        }

    return CompiledPlan(request=request, jobs=jobs, shard_mode="trials", assemble=assemble)


def compile_request(request: WorkRequest) -> CompiledPlan:
    """Compile a validated request into its engine plan.

    The single compilation seam: the CLI, the fleet job executor and the
    ``repro serve`` boundary all obtain their specs, store keys and result
    payloads from here, so identical requests produce identical
    content-addressed keys whoever asks.
    """
    if not isinstance(request, WorkRequest):
        raise SchemaError(
            f"compile_request needs a WorkRequest, got {type(request).__name__}"
        )
    return {
        "sweep": _compile_sweep,
        "experiment": _compile_experiment,
        "flood": _compile_flood,
    }[request.kind](request)


def experiment_plan(request: WorkRequest) -> ExperimentPlan:
    """The underlying pipeline plan of an experiment request.

    The CLI's ``repro experiment`` path needs the raw
    :class:`~repro.experiments.pipeline.ExperimentPlan` (for sharded
    execution and store-only assembly); it routes id/scale/seed validation
    through the request facade and picks up the plan here.
    """
    if request.kind != "experiment":
        raise SchemaError(f"expected an experiment request, got kind {request.kind!r}")
    return compile_experiment(
        request.experiment_id, scale=request.scale, seed=request.seed
    )
