"""Bit-packed flooding kernel (word-wise boolean algebra over ``uint64``).

The dense kernels of :mod:`repro.engine.kernel` spend their rounds reducing
boolean adjacency rows — one byte per entry.  Packing the same matrix into
``uint64`` words (64 adjacency entries per word, ``np.packbits`` with
``bitorder="little"``) turns a flooding round into a word-wise OR over the
packed rows of the informed nodes followed by a popcount: an ``n x
ceil(n/64)`` pass instead of an ``n x n`` one.

:func:`flood_bitset` is an exact drop-in for
:func:`~repro.engine.kernel.flood_vectorized`: the informed-set update is the
same boolean function and the model consumes its random stream identically,
so flooding times and histories are bit-identical.  The kernel pulls its
packed rows through :meth:`~repro.meg.base.DynamicGraph.packed_reach_mask`,
whose default packs the dense adjacency on the fly — correct for every model,
but the packing itself costs about as much as one dense reach, so the engine
only auto-selects this kernel for models that override
:meth:`~repro.meg.base.DynamicGraph.packed_adjacency` with a cached or
incrementally maintained bit-matrix (e.g. static snapshots).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.flooding import FloodingResult, default_max_steps
from repro.engine.kernel import _record_flood
from repro.meg.base import DynamicGraph
from repro.util.rng import RNGLike

__all__ = [
    "flood_bitset",
    "pack_bool_matrix",
    "pack_bool_vector",
    "packed_width",
    "popcount",
    "unpack_bit_vector",
]


def packed_width(num_bits: int) -> int:
    """Number of ``uint64`` words needed to hold ``num_bits`` bits."""
    if num_bits < 0:
        raise ValueError(f"num_bits must be non-negative, got {num_bits}")
    return -(-num_bits // 64)


def pack_bool_matrix(matrix: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(r, c)`` matrix into ``(r, ceil(c/64))`` ``uint64`` words.

    Bit ``j`` of row ``i`` (little-endian within each word) is ``matrix[i, j]``;
    the padding bits beyond column ``c`` are zero.
    """
    matrix = np.ascontiguousarray(matrix, dtype=bool)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    pad = (-matrix.shape[1]) % 64
    if pad:
        matrix = np.concatenate(
            [matrix, np.zeros((matrix.shape[0], pad), dtype=bool)], axis=1
        )
    return np.packbits(matrix, axis=1, bitorder="little").view(np.uint64)


def pack_bool_vector(vector: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(c,)`` vector into ``ceil(c/64)`` ``uint64`` words."""
    vector = np.ascontiguousarray(vector, dtype=bool)
    if vector.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {vector.shape}")
    pad = (-vector.size) % 64
    if pad:
        vector = np.concatenate([vector, np.zeros(pad, dtype=bool)])
    return np.packbits(vector, bitorder="little").view(np.uint64)


def unpack_bit_vector(packed: np.ndarray, num_bits: int) -> np.ndarray:
    """The first ``num_bits`` bits of a packed ``uint64`` vector, as booleans."""
    return np.unpackbits(
        np.ascontiguousarray(packed).view(np.uint8), count=num_bits, bitorder="little"
    ).view(bool)


if hasattr(np, "bitwise_count"):

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element population count of an unsigned integer array."""
        return np.bitwise_count(words)

else:  # pragma: no cover - exercised only on NumPy < 2
    _POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element population count of an unsigned integer array."""
        counts = _POPCOUNT_TABLE[np.ascontiguousarray(words).view(np.uint8)]
        return counts.reshape(words.shape + (-1,)).sum(axis=-1, dtype=np.intp)


def flood_bitset(
    process: DynamicGraph,
    source: int = 0,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    reset: bool = True,
) -> FloodingResult:
    """Bit-packed drop-in replacement for :func:`repro.core.flooding.flood`.

    Same contract and same results as
    :func:`~repro.engine.kernel.flood_vectorized`; the informed set lives in
    packed ``uint64`` words and each round ORs in the model's
    :meth:`~repro.meg.base.DynamicGraph.packed_reach_mask`, counting informed
    nodes with a word popcount.
    """
    n = process.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} nodes")
    if max_steps is None:
        max_steps = default_max_steps(n)
    if max_steps < 0:
        raise ValueError(f"max_steps must be non-negative, got {max_steps}")
    if reset:
        process.reset(rng)

    history = [1]
    if n == 1:
        return FloodingResult(source, n, tuple(history), 0)

    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    packed_informed = np.zeros(packed_width(n), dtype=np.uint64)
    packed_informed[source // 64] = np.uint64(1) << np.uint64(source % 64)
    flooding_time_value: Optional[int] = None
    for t in range(max_steps):
        packed_informed |= process.packed_reach_mask(informed)
        count = int(popcount(packed_informed).sum())
        history.append(count)
        process.step()
        if count == n:
            flooding_time_value = t + 1
            break
        informed = unpack_bit_vector(packed_informed, n)
    _record_flood("bitset", history)
    return FloodingResult(source, n, tuple(history), flooding_time_value)
