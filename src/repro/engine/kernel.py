"""Vectorized flooding kernels (dense NumPy and sparse CSR).

The set-based simulator in :mod:`repro.core.flooding` advances the informed
set one Python-level union at a time.  The kernels here represent the
informed set as a boolean vector (or, for whole batches of sources, a boolean
``n x B`` matrix) and advance it against the snapshot's adjacency instead:
:func:`flood_vectorized` against the dense boolean matrix, :func:`flood_sparse`
against the CSR form (a sparse matvec costs ``O(m)`` per step instead of the
dense kernel's ``O(n^2)``, which wins on large sparse snapshots — exactly the
regime where the paper's asymptotics bite).

All kernels are *exact*: given the same model and the same seed they produce
bit-identical flooding times and informed-count histories as the set-based
loop, because the informed-set update is deterministic given the snapshot and
the model consumes its random stream identically either way.  The engine
therefore treats the kernel purely as a speed choice (``backend="auto"``
picks a vectorized kernel whenever the model overrides
:meth:`~repro.meg.base.DynamicGraph.adjacency_matrix` with a fast array
implementation, and upgrades to the sparse kernel on large, sparse models).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.sparse

from repro.core.flooding import FloodingResult, default_max_steps
from repro.engine.jit import NUMBA_AVAILABLE, csr_reach
from repro.meg.base import DynamicGraph
from repro.telemetry import core as telemetry
from repro.util.rng import RNGLike


def _record_flood(kernel: str, history: Sequence[int]) -> None:
    """Fold one completed flood into the active telemetry (no-op when off).

    Records the kernel chosen, the number of rounds run and the peak frontier
    (largest one-round gain of the informed-count history) — the round-level
    raw material for analysing the spreading dynamics of a run.
    """
    tel = telemetry.active()
    if tel is None:
        return
    tel.count(f"kernel.flood.{kernel}")
    rounds = len(history) - 1
    tel.timing("kernel.rounds", rounds)
    if rounds:
        tel.timing(
            "kernel.frontier_peak",
            max(later - earlier for earlier, later in zip(history, history[1:])),
        )


def has_fast_adjacency(process: DynamicGraph) -> bool:
    """Whether ``process`` overrides the generic (edge-scan) adjacency matrix."""
    return type(process).adjacency_matrix is not DynamicGraph.adjacency_matrix


def has_fast_sparse_adjacency(process: DynamicGraph) -> bool:
    """Whether ``process`` overrides the generic (edge-scan) CSR adjacency."""
    return type(process).sparse_adjacency is not DynamicGraph.sparse_adjacency


def has_fast_reach_mask(process: DynamicGraph) -> bool:
    """Whether ``process`` overrides the generic (adjacency-row) reach mask."""
    return type(process).reach_mask is not DynamicGraph.reach_mask


def has_fast_packed_adjacency(process: DynamicGraph) -> bool:
    """Whether ``process`` overrides the generic (pack-per-call) bit adjacency."""
    return type(process).packed_adjacency is not DynamicGraph.packed_adjacency


def has_fast_reach_mask_batch(process: DynamicGraph) -> bool:
    """Whether ``process`` overrides the generic (dense-matmul) batched reach."""
    return type(process).reach_mask_batch is not DynamicGraph.reach_mask_batch


def has_fast_trial_batch(process: DynamicGraph) -> bool:
    """Whether ``process`` provides a fast batched-trial runner."""
    return type(process).trial_batch is not DynamicGraph.trial_batch


def _as_count_csr(matrix) -> scipy.sparse.csr_matrix:
    """CSR with an ``intp`` data dtype (no wrap-around when counts accumulate)."""
    if not scipy.sparse.issparse(matrix):
        raise TypeError(
            f"sparse_adjacency must return a scipy sparse matrix, got {type(matrix).__name__}"
        )
    matrix = matrix.tocsr()
    if matrix.dtype != np.intp:
        matrix = matrix.astype(np.intp)
    return matrix


def flood_vectorized(
    process: DynamicGraph,
    source: int = 0,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    reset: bool = True,
) -> FloodingResult:
    """Vectorized drop-in replacement for :func:`repro.core.flooding.flood`.

    Same contract and same results; the informed set lives in a boolean
    vector and each step applies the model's
    :meth:`~repro.meg.base.DynamicGraph.reach_mask` — by default an OR over
    the adjacency rows of the currently informed nodes, overridden by the
    state-induced families (node-MEGs, graph mobility models) with an update
    that never touches the dense matrix.
    """
    n = process.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} nodes")
    if max_steps is None:
        max_steps = default_max_steps(n)
    if max_steps < 0:
        raise ValueError(f"max_steps must be non-negative, got {max_steps}")
    if reset:
        process.reset(rng)

    history = [1]
    if n == 1:
        return FloodingResult(source, n, tuple(history), 0)

    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    flooding_time_value: Optional[int] = None
    for t in range(max_steps):
        informed |= process.reach_mask(informed)
        count = int(informed.sum())
        history.append(count)
        process.step()
        if count == n:
            flooding_time_value = t + 1
            break
    _record_flood("vectorized", history)
    return FloodingResult(source, n, tuple(history), flooding_time_value)


def flood_sparse(
    process: DynamicGraph,
    source: int = 0,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    reset: bool = True,
) -> FloodingResult:
    """Sparse-matvec drop-in replacement for :func:`repro.core.flooding.flood`.

    Same contract and same results as :func:`flood_vectorized`, but each step
    multiplies the snapshot's CSR adjacency against the informed vector —
    ``O(m)`` work per step — instead of touching the dense ``n x n`` matrix.
    """
    n = process.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} nodes")
    if max_steps is None:
        max_steps = default_max_steps(n)
    if max_steps < 0:
        raise ValueError(f"max_steps must be non-negative, got {max_steps}")
    if reset:
        process.reset(rng)

    history = [1]
    if n == 1:
        return FloodingResult(source, n, tuple(history), 0)

    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    flooding_time_value: Optional[int] = None
    # Scratch hoisted out of the round loop: the JIT path reuses one boolean
    # reach vector, the fallback one intp count vector (the per-round
    # ``informed.astype`` allocations used to dominate small-model rounds).
    # The CSR conversion is memoized by the identity of the returned matrix,
    # so models serving a cached snapshot convert once, not once per round.
    reach_scratch = np.empty(n, dtype=bool)
    count_scratch = None if NUMBA_AVAILABLE else np.empty(n, dtype=np.intp)
    raw_cached = matrix = None
    for t in range(max_steps):
        raw = process.sparse_adjacency()
        if raw is not raw_cached:
            matrix = _as_count_csr(raw)
            raw_cached = raw
        if NUMBA_AVAILABLE:
            informed |= csr_reach(matrix, informed, reach_scratch)
        else:
            np.copyto(count_scratch, informed)
            informed |= (matrix @ count_scratch) != 0
        count = int(informed.sum())
        history.append(count)
        process.step()
        if count == n:
            flooding_time_value = t + 1
            break
    if NUMBA_AVAILABLE:
        tel = telemetry.active()
        if tel is not None:
            tel.count("kernel.jit.csr")
    _record_flood("sparse", history)
    return FloodingResult(source, n, tuple(history), flooding_time_value)


def flood_sources_batch(
    process: DynamicGraph,
    sources: Sequence[int],
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    reset: bool = True,
    backend: str = "dense",
    chunk_size: Optional[int] = None,
) -> list[Optional[int]]:
    """Flood from every source in ``sources`` over *one shared realization*.

    All sources ride the same evolving graph: the informed sets form the
    columns of an ``n x B`` boolean matrix and one matrix product advances
    every flood per time step.  Returns the per-source flooding times (in
    input order), with ``None`` for floods that hit the step cap.

    Note this is a different estimator from
    :func:`repro.core.flooding.worst_case_flooding_time`, which draws an
    independent realization per source; sharing the realization is what makes
    the batch vectorizable and is the natural object for studying how the
    flooding time depends on the source within a fixed evolution.

    ``backend`` selects the per-step product: ``"dense"`` multiplies the
    dense boolean adjacency, ``"sparse"`` the CSR adjacency (same results).

    ``chunk_size`` bounds the number of sources advanced per pass (the
    ``n x B`` informed matrix is the memory hot spot for huge batches).  The
    realization is recorded on the first chunk through a
    :class:`~repro.engine.replay.SnapshotReplay` and *replayed* for the rest,
    so later chunks never re-step the stochastic model; results are
    bit-identical to the unchunked pass because each source's column evolves
    independently of the others.
    """
    if backend not in ("dense", "sparse"):
        raise ValueError(f"backend must be 'dense' or 'sparse', got {backend!r}")
    n = process.num_nodes
    source_array = np.asarray(list(sources), dtype=int)
    if source_array.size == 0:
        raise ValueError("at least one source is required")
    if source_array.min() < 0 or source_array.max() >= n:
        raise ValueError(f"sources out of range for {n} nodes")
    if max_steps is None:
        max_steps = default_max_steps(n)
    if max_steps < 0:
        raise ValueError(f"max_steps must be non-negative, got {max_steps}")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if chunk_size is not None and source_array.size > chunk_size:
        from repro.engine.replay import SnapshotReplay

        replay = process if isinstance(process, SnapshotReplay) else SnapshotReplay(process)
        if reset:
            replay.reset(rng)
        # Every chunk must flood the same realization window, which starts at
        # the replay's position *now* — frame 0 only after a reset, but a
        # caller may hand over a replay mid-playback.
        origin = replay.cursor
        times: list[Optional[int]] = []
        for start in range(0, source_array.size, chunk_size):
            if start:
                replay.rewind(origin)
            times.extend(
                flood_sources_batch(
                    replay,
                    source_array[start : start + chunk_size].tolist(),
                    max_steps=max_steps,
                    reset=False,
                    backend=backend,
                )
            )
        return times
    if reset:
        process.reset(rng)

    batch = source_array.size
    if n == 1:
        return [0] * batch

    informed = np.zeros((n, batch), dtype=bool)
    informed[source_array, np.arange(batch)] = True
    times = np.full(batch, -1, dtype=int)
    # The accumulator must hold neighbour counts up to n exactly: a uint8
    # product would wrap when a node has a multiple of 256 informed
    # neighbours and silently drop the update.  float32 holds every integer
    # below 2**24 exactly and rides the BLAS matmul; huge graphs fall back
    # to the (slower, unbounded) intp product.
    accumulator = np.float32 if n < 2**24 else np.intp
    # Models with a state-level batched reach skip the dense product
    # entirely; for the rest, every per-round buffer is hoisted here (the
    # astype allocations used to dominate small-model rounds).
    state_batch = backend == "dense" and has_fast_reach_mask_batch(process)
    if backend == "sparse":
        count_buffer = np.empty((n, batch), dtype=np.intp)
        raw_cached = matrix = None
    elif not state_batch:
        matrix_buffer = np.empty((n, n), dtype=accumulator)
        informed_buffer = np.empty((n, batch), dtype=accumulator)
        product_buffer = np.empty((n, batch), dtype=accumulator)
    for t in range(max_steps):
        if backend == "sparse":
            raw = process.sparse_adjacency()
            if raw is not raw_cached:
                matrix = _as_count_csr(raw)
                raw_cached = raw
            np.copyto(count_buffer, informed)
            reached = (matrix @ count_buffer) != 0
        elif state_batch:
            reached = process.reach_mask_batch(informed)
        else:
            np.copyto(matrix_buffer, process.adjacency_matrix())
            np.copyto(informed_buffer, informed)
            np.matmul(matrix_buffer, informed_buffer, out=product_buffer)
            reached = product_buffer != 0
        informed |= reached
        process.step()
        counts = informed.sum(axis=0)
        newly_complete = (counts == n) & (times < 0)
        times[newly_complete] = t + 1
        if (times >= 0).all():
            break
    tel = telemetry.active()
    if tel is not None:
        tel.count(f"kernel.flood.batch_{backend}", batch)
        tel.timing("kernel.batch_width", batch)
        finished = times[times >= 0]
        if finished.size:
            tel.timing("kernel.rounds", int(finished.max()))
    return [int(t) if t >= 0 else None for t in times]
