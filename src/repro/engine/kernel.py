"""Vectorized flooding kernels.

The set-based simulator in :mod:`repro.core.flooding` advances the informed
set one Python-level union at a time.  The kernels here represent the
informed set as a boolean vector (or, for whole batches of sources, a boolean
``n x B`` matrix) and advance it against the snapshot's boolean adjacency
matrix with NumPy reductions instead.

Both kernels are *exact*: given the same model and the same seed they
produce bit-identical flooding times and informed-count histories as the
set-based loop, because the informed-set update is deterministic given the
snapshot and the model consumes its random stream identically either way.
The engine therefore treats the kernel purely as a speed choice
(``backend="auto"`` picks the vectorized kernel whenever the model overrides
:meth:`~repro.meg.base.DynamicGraph.adjacency_matrix` with a fast array
implementation).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.flooding import FloodingResult, default_max_steps
from repro.meg.base import DynamicGraph
from repro.util.rng import RNGLike


def has_fast_adjacency(process: DynamicGraph) -> bool:
    """Whether ``process`` overrides the generic (edge-scan) adjacency matrix."""
    return type(process).adjacency_matrix is not DynamicGraph.adjacency_matrix


def flood_vectorized(
    process: DynamicGraph,
    source: int = 0,
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    reset: bool = True,
) -> FloodingResult:
    """Vectorized drop-in replacement for :func:`repro.core.flooding.flood`.

    Same contract and same results; the informed set lives in a boolean
    vector and each step ORs together the adjacency rows of the currently
    informed nodes.
    """
    n = process.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} nodes")
    if max_steps is None:
        max_steps = default_max_steps(n)
    if max_steps < 0:
        raise ValueError(f"max_steps must be non-negative, got {max_steps}")
    if reset:
        process.reset(rng)

    history = [1]
    if n == 1:
        return FloodingResult(source, n, tuple(history), 0)

    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    flooding_time_value: Optional[int] = None
    for t in range(max_steps):
        matrix = process.adjacency_matrix()
        informed |= matrix[informed].any(axis=0)
        count = int(informed.sum())
        history.append(count)
        process.step()
        if count == n:
            flooding_time_value = t + 1
            break
    return FloodingResult(source, n, tuple(history), flooding_time_value)


def flood_sources_batch(
    process: DynamicGraph,
    sources: Sequence[int],
    rng: RNGLike = None,
    max_steps: Optional[int] = None,
    reset: bool = True,
) -> list[Optional[int]]:
    """Flood from every source in ``sources`` over *one shared realization*.

    All sources ride the same evolving graph: the informed sets form the
    columns of an ``n x B`` boolean matrix and one matrix product advances
    every flood per time step.  Returns the per-source flooding times (in
    input order), with ``None`` for floods that hit the step cap.

    Note this is a different estimator from
    :func:`repro.core.flooding.worst_case_flooding_time`, which draws an
    independent realization per source; sharing the realization is what makes
    the batch vectorizable and is the natural object for studying how the
    flooding time depends on the source within a fixed evolution.
    """
    n = process.num_nodes
    source_array = np.asarray(list(sources), dtype=int)
    if source_array.size == 0:
        raise ValueError("at least one source is required")
    if source_array.min() < 0 or source_array.max() >= n:
        raise ValueError(f"sources out of range for {n} nodes")
    if max_steps is None:
        max_steps = default_max_steps(n)
    if max_steps < 0:
        raise ValueError(f"max_steps must be non-negative, got {max_steps}")
    if reset:
        process.reset(rng)

    batch = source_array.size
    if n == 1:
        return [0] * batch

    informed = np.zeros((n, batch), dtype=bool)
    informed[source_array, np.arange(batch)] = True
    times = np.full(batch, -1, dtype=int)
    for t in range(max_steps):
        # intp accumulator: a uint8 product would wrap when a node has a
        # multiple of 256 informed neighbours and silently drop the update.
        matrix = process.adjacency_matrix().astype(np.intp)
        reached = (matrix @ informed.astype(np.intp)) != 0
        informed |= reached
        process.step()
        counts = informed.sum(axis=0)
        newly_complete = (counts == n) & (times < 0)
        times[newly_complete] = t + 1
        if (times >= 0).all():
            break
    return [int(t) if t >= 0 else None for t in times]
