"""Declarative trial specifications for the Monte-Carlo engine.

A :class:`TrialSpec` pins down everything one batch of independent flooding
trials needs — how to build the model, how many trials (a hard count, or a
budget governed by an optional sequential
:class:`~repro.stats.sequential.StoppingRule`), which source or source
batch, the step cap, provenance tags and the seed material — without
executing anything.  The
:class:`repro.engine.Engine` turns a spec into a :class:`BatchResult`, either
serially or on a worker pool, and the spec's :meth:`TrialSpec.cache_token`
is what keys the batch in the persistent result store.

The engine builds the model exactly once per run — whatever the worker
count — and ships the *built model* to workers (one pickled copy per
worker chunk).  A stochastic factory therefore contributes one realization
shared by every trial of the batch, and ``workers > 1`` requires the model
(not the factory) to be picklable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.meg.base import DynamicGraph
from repro.stats.sequential import StoppingRule
from repro.util.rng import RNGLike


def _identity_factory(model: DynamicGraph) -> DynamicGraph:
    """Module-level identity used by :meth:`TrialSpec.from_model` (picklable)."""
    return model


@dataclass(frozen=True)
class TrialSpec:
    """One batch of independent flooding trials, described declaratively.

    Attributes
    ----------
    factory:
        Callable building a fresh :class:`DynamicGraph` from ``args`` and
        ``kwargs``.  Called exactly once per engine run.
    args / kwargs:
        Positional and keyword arguments of ``factory``.
    num_trials:
        Number of independent trials.
    source:
        The initially informed node (single-source trials).
    sources:
        Optional source batch for batched-source trials: either an explicit
        sequence of node indices or the string ``"all"`` (every node).  Each
        trial floods the whole batch over *one shared realization* (see
        :func:`repro.engine.kernel.flood_sources_batch`) and records the
        worst flooding time across the batch — the per-realization estimate
        of ``F(G) = max_s F(G, s)``.  Mutually exclusive with
        ``num_sources``; when either is set, ``source`` is ignored.
    num_sources:
        Optional number of distinct sources sampled uniformly per trial (a
        cheaper batched estimate of the worst case for large ``n``).
    max_steps:
        Per-trial step cap (``None`` for the generous default of
        :func:`repro.core.flooding.default_max_steps`).
    seed:
        Seed material (``None``, int, ``SeedSequence`` or ``Generator``).
        Per-trial seeds are spawned from it through one ``SeedSequence``, so
        results are bit-identical regardless of worker count.
    stopping:
        Optional :class:`~repro.stats.sequential.StoppingRule`.  When set,
        ``num_trials`` becomes the *maximum* budget: the engine evaluates
        the rule between trial chunks and stops as soon as the running
        confidence interval is narrow enough, recording the realized trial
        count in the stored record.  The realized count depends only on
        the per-trial samples — which are worker-invariant — so stopped
        runs are bit-identical at any worker count and fully reproducible
        from their stored records.  Enters the cache token (a stopped
        batch and a fixed-count batch are different records).
    label:
        Free-form tag carried into results and logs.
    tags:
        Optional structured provenance tags — a mapping (or tuple of
        ``(key, value)`` pairs) of short strings, e.g.
        ``{"experiment": "E7", "scale": "small", "point": "p=0.01"}``.  When
        present, the tags enter the spec's cache token (so records of
        different experiments never collide) and are persisted verbatim in
        the stored payload, making every store record self-describing.  Specs
        without tags keep the exact keys they had before tags existed.
    """

    factory: Callable[..., DynamicGraph]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    num_trials: int = 1
    source: int = 0
    sources: Optional[object] = None
    num_sources: Optional[int] = None
    max_steps: Optional[int] = None
    seed: RNGLike = None
    stopping: Optional[StoppingRule] = None
    label: str = ""
    tags: tuple = ()

    def __post_init__(self) -> None:
        if not callable(self.factory):
            raise TypeError("factory must be callable")
        if self.num_trials < 1:
            raise ValueError(f"num_trials must be >= 1, got {self.num_trials}")
        if self.source < 0:
            raise ValueError(f"source must be non-negative, got {self.source}")
        if self.sources is not None and self.num_sources is not None:
            raise ValueError("sources and num_sources are mutually exclusive")
        if isinstance(self.sources, str) and self.sources != "all":
            raise ValueError(f"sources must be 'all' or a node sequence, got {self.sources!r}")
        if self.sources is not None and not isinstance(self.sources, str):
            batch = tuple(int(s) for s in self.sources)
            if not batch:
                raise ValueError("sources must name at least one node")
            if min(batch) < 0:
                raise ValueError("sources must be non-negative node indices")
            object.__setattr__(self, "sources", batch)
        if self.num_sources is not None and self.num_sources < 1:
            raise ValueError(f"num_sources must be >= 1, got {self.num_sources}")
        if self.max_steps is not None and self.max_steps < 0:
            raise ValueError(f"max_steps must be non-negative, got {self.max_steps}")
        if self.stopping is not None:
            if isinstance(self.stopping, dict):
                object.__setattr__(self, "stopping", StoppingRule.from_dict(self.stopping))
            elif not isinstance(self.stopping, StoppingRule):
                raise TypeError(
                    f"stopping must be a StoppingRule or mapping, "
                    f"got {type(self.stopping).__name__}"
                )
        object.__setattr__(self, "args", tuple(self.args))
        pairs = self.tags.items() if isinstance(self.tags, dict) else self.tags
        normalized = tuple((str(k), str(v)) for k, v in pairs)
        if len(dict(normalized)) != len(normalized):
            raise ValueError(f"tags must have unique keys, got {normalized}")
        object.__setattr__(self, "tags", normalized)

    @classmethod
    def from_model(
        cls,
        model: DynamicGraph,
        num_trials: int,
        source: int = 0,
        sources: Optional[object] = None,
        num_sources: Optional[int] = None,
        max_steps: Optional[int] = None,
        seed: RNGLike = None,
        stopping: Optional[StoppingRule] = None,
        label: str = "",
        tags: tuple = (),
    ) -> "TrialSpec":
        """Wrap an already-built model as a spec (the common library path)."""
        if not isinstance(model, DynamicGraph):
            raise TypeError(
                f"model must be a DynamicGraph, got {type(model).__name__}"
            )
        return cls(
            factory=_identity_factory,
            args=(model,),
            num_trials=num_trials,
            source=source,
            sources=sources,
            num_sources=num_sources,
            max_steps=max_steps,
            seed=seed,
            stopping=stopping,
            label=label or type(model).__name__,
            tags=tags,
        )

    @property
    def wraps_model(self) -> bool:
        """Whether this spec wraps a prototype model instance."""
        return self.factory is _identity_factory

    def build_model(self) -> DynamicGraph:
        """Instantiate the dynamic graph this spec describes."""
        model = self.factory(*self.args, **self.kwargs)
        if not isinstance(model, DynamicGraph):
            raise TypeError(
                f"factory returned {type(model).__name__}, expected a DynamicGraph"
            )
        return model

    def cache_token(self) -> dict:
        """Seed-independent part of the result-store key for this spec."""
        if self.wraps_model:
            model_token = self.args[0].cache_token()
        else:
            factory = self.factory
            model_token = {
                "factory": f"{factory.__module__}.{getattr(factory, '__qualname__', repr(factory))}",
                "args": repr(self.args),
                "kwargs": repr(sorted(self.kwargs.items())),
            }
        token = {
            "model": model_token,
            "num_trials": self.num_trials,
            "source": self.source,
            "max_steps": self.max_steps,
        }
        # Only batched-source specs carry these keys, so the keys of every
        # single-source result stored before the batched estimators existed
        # stay valid.
        if self.sources is not None:
            token["sources"] = (
                "all" if isinstance(self.sources, str) else list(self.sources)
            )
        if self.num_sources is not None:
            token["num_sources"] = self.num_sources
        # Tagged specs get tag-scoped keys (records of different experiments
        # never collide); untagged specs keep their pre-tags keys.
        if self.tags:
            token["tags"] = dict(self.tags)
        # An adaptive batch answers a different question than a fixed-count
        # one (its realized count is data-dependent), so the rule scopes the
        # key; rule-less specs keep their pre-stopping keys.
        if self.stopping is not None:
            token["stopping"] = self.stopping.cache_token()
        return token


@dataclass(frozen=True)
class BatchResult:
    """Outcome of running one :class:`TrialSpec`.

    ``flooding_times`` is ordered by trial index, so two runs of the same
    spec (at any worker count) can be compared element-wise.  For adaptive
    specs, ``flooding_times`` holds only the realized trials and
    ``stopped_early`` records whether the stopping rule fired before the
    ``num_trials`` budget was exhausted.
    """

    label: str
    num_nodes: int
    flooding_times: tuple[int, ...]
    backend: str
    workers: int
    from_cache: bool
    elapsed_seconds: float
    stopped_early: bool = False

    @property
    def num_trials(self) -> int:
        """Number of trials in the batch."""
        return len(self.flooding_times)

    @property
    def mean(self) -> float:
        """Mean flooding time across the batch."""
        return sum(self.flooding_times) / len(self.flooding_times)

    def as_dict(self) -> dict:
        """Plain-dict form (what the result store persists)."""
        return {
            "label": self.label,
            "num_nodes": self.num_nodes,
            "flooding_times": list(self.flooding_times),
            "backend": self.backend,
            "workers": self.workers,
            "from_cache": self.from_cache,
            "elapsed_seconds": self.elapsed_seconds,
            "stopped_early": self.stopped_early,
        }
