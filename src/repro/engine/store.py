"""Persistent, content-addressed storage of engine results.

The store is a single append-only JSONL file: one record per line, each
carrying the content hash of the trial spec that produced it (model + trial
parameters + seed material) and the stored payload.  Re-running a sweep with
the same spec and seed therefore costs one dictionary lookup instead of a
simulation, and reporting tools can regenerate their output offline from the
file alone.

Keys are computed with :meth:`ResultStore.compute_key` — a SHA-256 over the
canonical (sorted-keys) JSON encoding of the token — so any change to the
model parameters, trial count, source, step cap or seed invalidates the
entry naturally by changing its address.  Duplicate keys are legal in the
file; the *last* record wins, which doubles as a crude update mechanism.

The file is scanned exactly once, lazily, on the first lookup — every later
``get``/``put`` is an in-memory dictionary operation — and
:meth:`ResultStore.compact` rewrites the file with one line per live key,
dropping superseded duplicates and corrupt/truncated lines.

Concurrency
-----------
Several processes may share one store file (that is the whole point of
sharded execution).  Every mutation is serialised through an ``fcntl`` lock
on a sidecar ``<file>.lock``: appends take the lock and open the data file
*after* acquiring it (so they always append to the current inode, never to a
file that a concurrent :meth:`compact` has just replaced), and ``compact``
re-scans the file from disk under the same lock instead of trusting the
lazily built in-memory index — records appended by other processes after
this instance's lazy scan are therefore never dropped.  Reads stay lock-free:
a stale in-memory index can at worst miss a record another process just
wrote, which costs a recomputation, never data.

Because the keys are content hashes of the full spec (location-independent),
stores written on different machines can be unioned mechanically;
:meth:`ResultStore.merge` does exactly that, reassembling sharded partial
batches (see :mod:`repro.engine.shard`) and refusing to merge conflicting
payloads for the same key.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Iterator, Optional, Union

import numpy as np

from repro.stats.sequential import merge_sketch_payloads
from repro.telemetry import core as telemetry

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None


def jsonify(value):
    """Recursively convert numpy scalars/arrays so ``json`` can encode them."""
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


class MergeConflictError(RuntimeError):
    """Two stores carry different payloads for the same content key."""


@dataclass(frozen=True)
class MergeReport:
    """Summary of one :meth:`ResultStore.merge` call.

    Attributes
    ----------
    records:
        Live records in the merged store after the merge.
    adopted:
        Records taken from the source stores that were new to this store.
    assembled:
        Full batches reassembled from complete groups of shard partials.
    pending_shards:
        Shard partial records kept because their group is still incomplete
        (a later merge can complete them).
    """

    records: int
    adopted: int
    assembled: int
    pending_shards: int


def _is_shard_record(record) -> bool:
    """Whether a stored payload is a well-formed shard partial.

    Requires every field assembly reads (see :func:`_assemble_shard_groups`),
    so malformed or foreign records are carried through a merge verbatim
    instead of crashing it.
    """
    if not isinstance(record, dict) or "parent_key" not in record:
        return False
    shard = record.get("shard")
    if not isinstance(shard, dict) or not isinstance(record.get("flooding_times"), list):
        return False
    try:
        int(shard["index"])
        int(shard["count"])
        int(shard["num_trials"])
    except (KeyError, TypeError, ValueError):
        return False
    return True


class ResultStore:
    """JSONL-backed map from spec content hashes to result payloads.

    Parameters
    ----------
    directory:
        Directory holding the store file (created if missing).
    filename:
        Name of the JSONL file inside ``directory``.
    """

    def __init__(self, directory: str, filename: str = "results.jsonl") -> None:
        self._directory = str(directory)
        os.makedirs(self._directory, exist_ok=True)
        self._path = os.path.join(self._directory, filename)
        self._lock_path = self._path + ".lock"
        # Built lazily on the first lookup; None means "not scanned yet".
        self._index: Optional[dict[str, dict]] = None
        self._line_count = 0

    @classmethod
    def at(cls, path: Union[str, os.PathLike]) -> "ResultStore":
        """Store addressed by a path: a ``.jsonl`` file or a directory.

        ``shard0/`` means the default ``results.jsonl`` inside ``shard0/``;
        ``out.jsonl`` means that exact file.  This is what the CLI's
        ``merge-results`` arguments go through.
        """
        path = str(path)
        if path.endswith(".jsonl"):
            directory, filename = os.path.split(path)
            return cls(directory or ".", filename)
        return cls(path)

    @classmethod
    def _existing_source(cls, path: Union[str, os.PathLike]) -> "ResultStore":
        """``at(path)``, but the store file must already exist.

        Merge sources go through this: a typo'd shard path must fail loudly,
        not be silently treated as an empty store (and ``at`` would even
        create the directory as a side effect).
        """
        text = str(path)
        file_path = text if text.endswith(".jsonl") else os.path.join(text, "results.jsonl")
        if not os.path.exists(file_path):
            raise FileNotFoundError(f"no result store at {text} (expected {file_path})")
        return cls.at(text)

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #
    @staticmethod
    def compute_key(token: dict) -> str:
        """SHA-256 content hash of a token dict (canonical JSON encoding)."""
        canonical = json.dumps(jsonify(token), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # locking
    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def _locked(self):
        """Exclusive inter-process lock over the store file's mutations.

        The lock lives on a sidecar file, not the data file itself: compact
        replaces the data file's inode, so a lock on the old inode would not
        exclude writers that open the file afterwards.  The sidecar is stable
        across compactions.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        with open(self._lock_path, "a", encoding="utf-8") as lock:
            tel = telemetry.active()
            if tel is None:
                fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
            else:
                waited = time.perf_counter()
                fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
                tel.timing("store.lock_wait_seconds", time.perf_counter() - waited)
            try:
                yield
            finally:
                fcntl.flock(lock.fileno(), fcntl.LOCK_UN)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _ensure_index(self) -> dict[str, dict]:
        """Scan the file into the in-memory key index (once, on first use)."""
        if self._index is None:
            self._index, self._line_count = self._scan()
        return self._index

    def _scan(self) -> tuple[dict[str, dict], int]:
        """Parse the file from disk: ``(key -> record, non-empty lines)``."""
        index: dict[str, dict] = {}
        lines = 0
        if not os.path.exists(self._path):
            return index, 0
        with open(self._path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                lines += 1
                # A run killed mid-append can leave a truncated last line;
                # treat unreadable lines as absent entries (they will simply
                # be recomputed) instead of refusing to load the store.
                try:
                    entry = json.loads(line)
                    index[entry["key"]] = entry["record"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue
        return index, lines

    def refresh(self) -> None:
        """Drop the in-memory index; the next lookup re-scans the file."""
        self._index = None
        self._line_count = 0

    @property
    def path(self) -> str:
        """Path of the backing JSONL file."""
        return self._path

    def touch(self) -> None:
        """Ensure the backing file exists (as an empty store if new).

        A shard that happens to own zero jobs still needs a store file on
        disk so downstream tooling (artifact upload, ``merge-results``) can
        treat every shard uniformly.
        """
        if not os.path.exists(self._path):
            with self._locked():
                with open(self._path, "a", encoding="utf-8"):
                    pass

    def get(self, key: str) -> Optional[dict]:
        """The stored record for ``key``, or ``None`` on a cache miss."""
        return self._ensure_index().get(key)

    def put(self, key: str, record: dict) -> None:
        """Store ``record`` under ``key`` (appended durably, last write wins).

        The append happens under the store lock and the data file is opened
        after the lock is taken, so concurrent writers never interleave
        partial lines and never append to a just-compacted stale inode.
        """
        index = self._ensure_index()
        record = jsonify(record)
        line = json.dumps({"key": key, "record": record}, sort_keys=True) + "\n"
        with self._locked():
            with open(self._path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
        index[key] = record
        self._line_count += 1

    def _rewrite(self, index: dict[str, dict]) -> None:
        """Atomically replace the file with one line per ``index`` entry.

        Records are written in sorted-key order, so the on-disk form of a
        given record set is deterministic (merged stores can be compared
        byte-for-byte against reference runs after sorting their lines).
        Callers must hold the store lock.
        """
        temp_path = self._path + ".compact"
        with open(temp_path, "w", encoding="utf-8") as handle:
            for key in sorted(index):
                handle.write(
                    json.dumps({"key": key, "record": index[key]}, sort_keys=True) + "\n"
                )
        os.replace(temp_path, self._path)

    def compact(self) -> int:
        """Rewrite the file with one line per live key; returns lines dropped.

        Superseded duplicates (older writes to the same key) and
        corrupt/truncated lines are removed.  The file is re-scanned from
        disk under the store lock — not served from the lazy in-memory index
        — so records appended by *other* processes since this instance's
        index was built survive the compaction.  The rewrite goes through a
        temporary file and an atomic replace, so a crash mid-compaction
        leaves the original file intact.
        """
        with self._locked():
            index, lines = self._scan()
            self._rewrite(index)
        self._index = index
        self._line_count = len(index)
        return lines - len(index)

    # ------------------------------------------------------------------ #
    # merging
    # ------------------------------------------------------------------ #
    def merge(self, *sources: Union["ResultStore", str, os.PathLike]) -> MergeReport:
        """Union ``sources`` into this store, reassembling sharded batches.

        Records are unioned by content key.  A path source whose store file
        does not exist raises :class:`FileNotFoundError` (a typo'd shard path
        must not silently produce a partial merge).  Two different payloads
        under the same key — in a source, or between a source and this store
        — raise :class:`MergeConflictError` (identical payloads deduplicate
        silently).  Complete groups of shard partials (all ``count`` shards
        of one parent batch, see :mod:`repro.engine.shard`) are reassembled
        into the full batch record under the parent key, and the partials are
        dropped; incomplete groups are kept verbatim so a later merge can
        finish the job.  The merged store is compacted (rewritten with one
        sorted line per live key) before returning.
        """
        resolved = [
            source if isinstance(source, ResultStore) else ResultStore._existing_source(source)
            for source in sources
        ]
        # Each source is scanned fresh from disk under *its own* lock, so a
        # concurrent writer's in-flight append is never seen as a torn (and
        # silently skipped) line.  Source locks are taken one at a time and
        # released before this store's lock, so no two locks are ever held
        # together — no ordering constraints, no deadlock.
        snapshots = []
        for store in resolved:
            with store._locked():
                incoming, _ = store._scan()
            snapshots.append((store, incoming))
        # One lock span for scan -> union -> rewrite: a concurrent put into
        # this store cannot land between the scan and the rewrite and be
        # clobbered.
        with self._locked():
            merged, _ = self._scan()
            before = len(merged)
            for store, incoming in snapshots:
                for key, record in incoming.items():
                    if key in merged and merged[key] != record:
                        raise MergeConflictError(
                            f"conflicting payloads for key {key} while merging "
                            f"{store.path} into {self.path}"
                        )
                    merged[key] = record
            adopted = len(merged) - before
            assembled, pending = _assemble_shard_groups(merged)
            self._rewrite(merged)
        self._index = merged
        self._line_count = len(merged)
        telemetry.count("store.merges")
        telemetry.event(
            "store.merge",
            path=self._path,
            sources=len(resolved),
            records=len(merged),
            adopted=adopted,
            assembled=assembled,
            pending_shards=pending,
        )
        return MergeReport(
            records=len(merged),
            adopted=adopted,
            assembled=assembled,
            pending_shards=pending,
        )

    def __contains__(self, key: str) -> bool:
        return key in self._ensure_index()

    def __len__(self) -> int:
        return len(self._ensure_index())

    def keys(self) -> Iterator[str]:
        """Iterate over the stored keys."""
        return iter(self._ensure_index())


def _assemble_shard_groups(merged: dict[str, dict]) -> tuple[int, int]:
    """Reassemble complete shard groups in ``merged`` (mutated in place).

    Returns ``(assembled_batches, pending_shard_records)``.  A group is the
    set of shard partials sharing one ``(parent_key, count)`` pair; it is
    complete when all ``count`` shard indices are present with consistent
    metadata and trial counts.  Assembly interleaves the partial
    ``flooding_times`` back into trial order (shard ``i`` of ``K`` holds
    trials ``i, i+K, i+2K, ...``), producing a record bit-identical to what
    an unsharded run of the same spec would have stored.
    """
    groups: dict[tuple[str, int], dict[int, tuple[str, dict]]] = {}
    for key, record in merged.items():
        if not _is_shard_record(record):
            continue
        shard = record["shard"]
        index, count = int(shard["index"]), int(shard["count"])
        groups.setdefault((record["parent_key"], count), {})[index] = (key, record)

    assembled = 0
    pending = 0
    for (parent_key, count), members in groups.items():
        if set(members) != set(range(count)):
            pending += len(members)
            continue
        totals = {int(rec["shard"]["num_trials"]) for _, rec in members.values()}
        if len(totals) != 1:
            raise MergeConflictError(
                f"shards of parent {parent_key} disagree on the batch trial count"
            )
        total = totals.pop()
        full: list = [None] * total
        identity: Optional[tuple] = None
        backends = set()
        for index, (_, record) in members.items():
            expected = len(range(index, total, count))
            times = record["flooding_times"]
            if len(times) != expected:
                raise MergeConflictError(
                    f"shard {index}/{count} of parent {parent_key} holds "
                    f"{len(times)} trials, expected {expected}"
                )
            full[index::count] = times
            fields = (record.get("label"), record.get("num_nodes"), record.get("tags"))
            if identity is None:
                identity = fields
            elif identity != fields:
                raise MergeConflictError(
                    f"shards of parent {parent_key} disagree on batch metadata"
                )
            backends.add(record.get("backend"))
        assert identity is not None
        label, num_nodes, tags = identity
        # The kernel choice never changes samples (the engine's core
        # contract), so shards executed with different backends still
        # assemble; the heterogeneous provenance is recorded as "mixed".
        backend = backends.pop() if len(backends) == 1 else "mixed"
        parent_record = {
            "label": label,
            "num_nodes": num_nodes,
            "flooding_times": full,
            "backend": backend,
        }
        if tags is not None:
            parent_record["tags"] = tags
        # Sketch fan-in: when every shard embeds a sketch, the parent gets
        # their merge — byte-identical to the sketch an unsharded run embeds,
        # because shard reservoirs share the parent's salt and priorities
        # (see repro.stats.sequential).  A group with partial sketch coverage
        # assembles without one rather than publishing a sketch of a subset.
        sketches = [rec.get("sketch") for _, (_, rec) in sorted(members.items())]
        if all(s is not None for s in sketches):
            parent_record["sketch"] = merge_sketch_payloads(sketches)
        if parent_key in merged and merged[parent_key] != parent_record:
            raise MergeConflictError(
                f"assembled batch for parent {parent_key} conflicts with an "
                f"existing record under that key"
            )
        merged[parent_key] = parent_record
        for shard_key, _ in members.values():
            del merged[shard_key]
        assembled += 1
    return assembled, pending
