"""Persistent, content-addressed storage of engine results.

The store is a single append-only JSONL file: one record per line, each
carrying the content hash of the trial spec that produced it (model + trial
parameters + seed material) and the stored payload.  Re-running a sweep with
the same spec and seed therefore costs one dictionary lookup instead of a
simulation, and reporting tools can regenerate their output offline from the
file alone.

Keys are computed with :meth:`ResultStore.compute_key` — a SHA-256 over the
canonical (sorted-keys) JSON encoding of the token — so any change to the
model parameters, trial count, source, step cap or seed invalidates the
entry naturally by changing its address.  Duplicate keys are legal in the
file; the *last* record wins, which doubles as a crude update mechanism.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterator, Optional

import numpy as np


def jsonify(value):
    """Recursively convert numpy scalars/arrays so ``json`` can encode them."""
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


class ResultStore:
    """JSONL-backed map from spec content hashes to result payloads.

    Parameters
    ----------
    directory:
        Directory holding the store file (created if missing).
    filename:
        Name of the JSONL file inside ``directory``.
    """

    def __init__(self, directory: str, filename: str = "results.jsonl") -> None:
        self._directory = str(directory)
        os.makedirs(self._directory, exist_ok=True)
        self._path = os.path.join(self._directory, filename)
        self._index: dict[str, dict] = {}
        if os.path.exists(self._path):
            self._load()

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #
    @staticmethod
    def compute_key(token: dict) -> str:
        """SHA-256 content hash of a token dict (canonical JSON encoding)."""
        canonical = json.dumps(jsonify(token), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        with open(self._path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                # A run killed mid-append can leave a truncated last line;
                # treat unreadable lines as absent entries (they will simply
                # be recomputed) instead of refusing to load the store.
                try:
                    entry = json.loads(line)
                    self._index[entry["key"]] = entry["record"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue

    @property
    def path(self) -> str:
        """Path of the backing JSONL file."""
        return self._path

    def get(self, key: str) -> Optional[dict]:
        """The stored record for ``key``, or ``None`` on a cache miss."""
        return self._index.get(key)

    def put(self, key: str, record: dict) -> None:
        """Store ``record`` under ``key`` (appended durably, last write wins)."""
        record = jsonify(record)
        entry = {"key": key, "record": record}
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._index[key] = record

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self) -> Iterator[str]:
        """Iterate over the stored keys."""
        return iter(self._index)
