"""Persistent, content-addressed storage of engine results.

The store is a single append-only JSONL file: one record per line, each
carrying the content hash of the trial spec that produced it (model + trial
parameters + seed material) and the stored payload.  Re-running a sweep with
the same spec and seed therefore costs one dictionary lookup instead of a
simulation, and reporting tools can regenerate their output offline from the
file alone.

Keys are computed with :meth:`ResultStore.compute_key` — a SHA-256 over the
canonical (sorted-keys) JSON encoding of the token — so any change to the
model parameters, trial count, source, step cap or seed invalidates the
entry naturally by changing its address.  Duplicate keys are legal in the
file; the *last* record wins, which doubles as a crude update mechanism.

The file is scanned exactly once, lazily, on the first lookup — every later
``get``/``put`` is an in-memory dictionary operation — and
:meth:`ResultStore.compact` rewrites the file with one line per live key,
dropping superseded duplicates and corrupt/truncated lines.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterator, Optional

import numpy as np


def jsonify(value):
    """Recursively convert numpy scalars/arrays so ``json`` can encode them."""
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


class ResultStore:
    """JSONL-backed map from spec content hashes to result payloads.

    Parameters
    ----------
    directory:
        Directory holding the store file (created if missing).
    filename:
        Name of the JSONL file inside ``directory``.
    """

    def __init__(self, directory: str, filename: str = "results.jsonl") -> None:
        self._directory = str(directory)
        os.makedirs(self._directory, exist_ok=True)
        self._path = os.path.join(self._directory, filename)
        # Built lazily on the first lookup; None means "not scanned yet".
        self._index: Optional[dict[str, dict]] = None
        self._line_count = 0

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #
    @staticmethod
    def compute_key(token: dict) -> str:
        """SHA-256 content hash of a token dict (canonical JSON encoding)."""
        canonical = json.dumps(jsonify(token), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _ensure_index(self) -> dict[str, dict]:
        """Scan the file into the in-memory key index (once, on first use)."""
        if self._index is None:
            self._index = {}
            self._line_count = 0
            if os.path.exists(self._path):
                self._load()
        return self._index

    def _load(self) -> None:
        assert self._index is not None
        with open(self._path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                self._line_count += 1
                # A run killed mid-append can leave a truncated last line;
                # treat unreadable lines as absent entries (they will simply
                # be recomputed) instead of refusing to load the store.
                try:
                    entry = json.loads(line)
                    self._index[entry["key"]] = entry["record"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue

    @property
    def path(self) -> str:
        """Path of the backing JSONL file."""
        return self._path

    def get(self, key: str) -> Optional[dict]:
        """The stored record for ``key``, or ``None`` on a cache miss."""
        return self._ensure_index().get(key)

    def put(self, key: str, record: dict) -> None:
        """Store ``record`` under ``key`` (appended durably, last write wins)."""
        index = self._ensure_index()
        record = jsonify(record)
        entry = {"key": key, "record": record}
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
        index[key] = record
        self._line_count += 1

    def compact(self) -> int:
        """Rewrite the file with one line per live key; returns lines dropped.

        Superseded duplicates (older writes to the same key) and
        corrupt/truncated lines are removed.  The rewrite goes through a
        temporary file and an atomic replace, so a crash mid-compaction
        leaves the original file intact.
        """
        index = self._ensure_index()
        temp_path = self._path + ".compact"
        with open(temp_path, "w", encoding="utf-8") as handle:
            for key, record in index.items():
                handle.write(
                    json.dumps({"key": key, "record": record}, sort_keys=True) + "\n"
                )
        os.replace(temp_path, self._path)
        dropped = self._line_count - len(index)
        self._line_count = len(index)
        return dropped

    def __contains__(self, key: str) -> bool:
        return key in self._ensure_index()

    def __len__(self) -> int:
        return len(self._ensure_index())

    def keys(self) -> Iterator[str]:
        """Iterate over the stored keys."""
        return iter(self._ensure_index())
