"""Parallel Monte-Carlo execution engine.

The execution backbone all trial-running code routes through:

``repro.engine.spec``
    :class:`TrialSpec` (declarative batch description) and
    :class:`BatchResult`.
``repro.engine.engine``
    :class:`Engine` — serial or multiprocess scheduling with
    ``SeedSequence``-derived per-trial seeds (bit-identical results at any
    worker count) and transparent result caching.
``repro.engine.kernel``
    The vectorized NumPy flooding kernels (single source and whole source
    batches) plus the backend-selection predicate.
``repro.engine.store``
    :class:`ResultStore` — JSONL-backed persistent results with
    content-hashed keys.
"""

from repro.engine.engine import BACKENDS, Engine, resolve_backend
from repro.engine.kernel import (
    flood_sources_batch,
    flood_vectorized,
    has_fast_adjacency,
)
from repro.engine.spec import BatchResult, TrialSpec
from repro.engine.store import ResultStore, jsonify

__all__ = [
    "BACKENDS",
    "BatchResult",
    "Engine",
    "ResultStore",
    "TrialSpec",
    "flood_sources_batch",
    "flood_vectorized",
    "has_fast_adjacency",
    "jsonify",
    "resolve_backend",
]
