"""Parallel Monte-Carlo execution engine.

The execution backbone all trial-running code routes through:

``repro.engine.spec``
    :class:`TrialSpec` (declarative batch description) and
    :class:`BatchResult`.
``repro.engine.engine``
    :class:`Engine` — serial or multiprocess scheduling with
    ``SeedSequence``-derived per-trial seeds (bit-identical results at any
    worker count) and transparent result caching.
``repro.engine.kernel``
    The vectorized flooding kernels — dense NumPy and sparse CSR, single
    source and whole source batches — plus the backend-selection predicates.
``repro.engine.store``
    :class:`ResultStore` — JSONL-backed persistent results with
    content-hashed keys, a lazily built in-memory index and a
    :meth:`~ResultStore.compact` maintenance helper.
"""

from repro.engine.engine import (
    BACKENDS,
    SPARSE_AUTO_MAX_DENSITY,
    SPARSE_AUTO_MIN_NODES,
    Engine,
    estimated_snapshot_density,
    resolve_backend,
)
from repro.engine.kernel import (
    flood_sources_batch,
    flood_sparse,
    flood_vectorized,
    has_fast_adjacency,
    has_fast_reach_mask,
    has_fast_sparse_adjacency,
)
from repro.engine.spec import BatchResult, TrialSpec
from repro.engine.store import ResultStore, jsonify

__all__ = [
    "BACKENDS",
    "BatchResult",
    "Engine",
    "ResultStore",
    "SPARSE_AUTO_MAX_DENSITY",
    "SPARSE_AUTO_MIN_NODES",
    "TrialSpec",
    "estimated_snapshot_density",
    "flood_sources_batch",
    "flood_sparse",
    "flood_vectorized",
    "has_fast_adjacency",
    "has_fast_reach_mask",
    "has_fast_sparse_adjacency",
    "jsonify",
    "resolve_backend",
]
