"""Parallel Monte-Carlo execution engine.

The execution backbone all trial-running code routes through:

``repro.engine.spec``
    :class:`TrialSpec` (declarative batch description) and
    :class:`BatchResult`.
``repro.engine.engine``
    :class:`Engine` — serial or multiprocess scheduling with
    ``SeedSequence``-derived per-trial seeds (bit-identical results at any
    worker count) and transparent result caching.
``repro.engine.shard``
    :class:`ShardSpec` and helpers — deterministic partition of a batch into
    ``K`` self-describing shards (shard ``i`` runs trials ``i, i+K, ...``
    with the unsharded run's exact seeds), executable on any machine and
    mergeable back into the full batch.
``repro.engine.kernel``
    The vectorized flooding kernels — dense NumPy and sparse CSR, single
    source and whole source batches — plus the backend-selection predicates.
``repro.engine.bitset``
    The bit-packed kernel — informed vectors and adjacency packed into
    ``uint64`` words so one flooding round is a word-wise OR/popcount sweep.
``repro.engine.batch``
    The realization-batch kernel — many trials of one family flooded as a
    single tensor pass (state-level fast paths for node-MEGs).
``repro.engine.jit``
    Optional Numba-JIT CSR frontier expansion with a pure-NumPy fallback.
``repro.engine.replay``
    :class:`SnapshotReplay` — record one realization's snapshots, replay
    them bit-identically (chunked source batches never re-step the model).
``repro.engine.store``
    :class:`ResultStore` — JSONL-backed persistent results with
    content-hashed keys, concurrency-safe appends, a lazily built in-memory
    index, a :meth:`~ResultStore.compact` maintenance helper and
    :meth:`~ResultStore.merge` for unioning shard stores.
"""

from repro.engine.batch import flood_trials_batch
from repro.engine.bitset import (
    flood_bitset,
    pack_bool_matrix,
    pack_bool_vector,
    packed_width,
    unpack_bit_vector,
)
from repro.engine.engine import (
    BACKENDS,
    BATCH_AUTO_MAX_NODES,
    BATCH_AUTO_MIN_TRIALS,
    BITSET_AUTO_MIN_NODES,
    EXECUTORS,
    SPARSE_AUTO_MAX_DENSITY,
    SPARSE_AUTO_MIN_NODES,
    Engine,
    estimated_snapshot_density,
    resolve_backend,
)
from repro.engine.jit import NUMBA_AVAILABLE
from repro.engine.kernel import (
    flood_sources_batch,
    flood_sparse,
    flood_vectorized,
    has_fast_adjacency,
    has_fast_packed_adjacency,
    has_fast_reach_mask,
    has_fast_reach_mask_batch,
    has_fast_sparse_adjacency,
    has_fast_trial_batch,
)
from repro.engine.replay import SnapshotReplay
from repro.engine.shard import (
    ShardSpec,
    batch_store_key,
    parse_shard,
    seed_token,
    shard_specs,
    shard_store_key,
)
from repro.engine.spec import BatchResult, TrialSpec
from repro.engine.store import (
    MergeConflictError,
    MergeReport,
    ResultStore,
    jsonify,
)
from repro.stats.sequential import StoppingRule

__all__ = [
    "BACKENDS",
    "BATCH_AUTO_MAX_NODES",
    "BATCH_AUTO_MIN_TRIALS",
    "BITSET_AUTO_MIN_NODES",
    "BatchResult",
    "EXECUTORS",
    "Engine",
    "MergeConflictError",
    "MergeReport",
    "NUMBA_AVAILABLE",
    "ResultStore",
    "SPARSE_AUTO_MAX_DENSITY",
    "SPARSE_AUTO_MIN_NODES",
    "ShardSpec",
    "SnapshotReplay",
    "StoppingRule",
    "TrialSpec",
    "batch_store_key",
    "estimated_snapshot_density",
    "flood_bitset",
    "flood_sources_batch",
    "flood_sparse",
    "flood_trials_batch",
    "flood_vectorized",
    "has_fast_adjacency",
    "has_fast_packed_adjacency",
    "has_fast_reach_mask",
    "has_fast_reach_mask_batch",
    "has_fast_sparse_adjacency",
    "has_fast_trial_batch",
    "jsonify",
    "pack_bool_matrix",
    "pack_bool_vector",
    "packed_width",
    "parse_shard",
    "resolve_backend",
    "seed_token",
    "shard_specs",
    "shard_store_key",
    "unpack_bit_vector",
]
