"""Parallel Monte-Carlo execution engine.

The execution backbone all trial-running code routes through:

``repro.engine.spec``
    :class:`TrialSpec` (declarative batch description) and
    :class:`BatchResult`.
``repro.engine.engine``
    :class:`Engine` — serial or multiprocess scheduling with
    ``SeedSequence``-derived per-trial seeds (bit-identical results at any
    worker count) and transparent result caching.
``repro.engine.shard``
    :class:`ShardSpec` and helpers — deterministic partition of a batch into
    ``K`` self-describing shards (shard ``i`` runs trials ``i, i+K, ...``
    with the unsharded run's exact seeds), executable on any machine and
    mergeable back into the full batch.
``repro.engine.kernel``
    The vectorized flooding kernels — dense NumPy and sparse CSR, single
    source and whole source batches — plus the backend-selection predicates.
``repro.engine.replay``
    :class:`SnapshotReplay` — record one realization's snapshots, replay
    them bit-identically (chunked source batches never re-step the model).
``repro.engine.store``
    :class:`ResultStore` — JSONL-backed persistent results with
    content-hashed keys, concurrency-safe appends, a lazily built in-memory
    index, a :meth:`~ResultStore.compact` maintenance helper and
    :meth:`~ResultStore.merge` for unioning shard stores.
"""

from repro.engine.engine import (
    BACKENDS,
    EXECUTORS,
    SPARSE_AUTO_MAX_DENSITY,
    SPARSE_AUTO_MIN_NODES,
    Engine,
    estimated_snapshot_density,
    resolve_backend,
)
from repro.engine.kernel import (
    flood_sources_batch,
    flood_sparse,
    flood_vectorized,
    has_fast_adjacency,
    has_fast_reach_mask,
    has_fast_sparse_adjacency,
)
from repro.engine.replay import SnapshotReplay
from repro.engine.shard import (
    ShardSpec,
    batch_store_key,
    parse_shard,
    seed_token,
    shard_specs,
    shard_store_key,
)
from repro.engine.spec import BatchResult, TrialSpec
from repro.engine.store import (
    MergeConflictError,
    MergeReport,
    ResultStore,
    jsonify,
)

__all__ = [
    "BACKENDS",
    "BatchResult",
    "EXECUTORS",
    "Engine",
    "MergeConflictError",
    "MergeReport",
    "ResultStore",
    "SPARSE_AUTO_MAX_DENSITY",
    "SPARSE_AUTO_MIN_NODES",
    "ShardSpec",
    "SnapshotReplay",
    "TrialSpec",
    "batch_store_key",
    "estimated_snapshot_density",
    "flood_sources_batch",
    "flood_sparse",
    "flood_vectorized",
    "has_fast_adjacency",
    "has_fast_reach_mask",
    "has_fast_sparse_adjacency",
    "jsonify",
    "parse_shard",
    "resolve_backend",
    "seed_token",
    "shard_specs",
    "shard_store_key",
]
