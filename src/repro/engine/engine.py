"""The Monte-Carlo execution engine.

:class:`Engine` is the single place where batches of independent flooding
trials get executed.  It owns three orthogonal decisions:

* **scheduling** — trials run serially in-process (``workers=1``) or fan out
  over a ``concurrent.futures`` pool (``workers>1``): a
  ``ProcessPoolExecutor`` by default, or a ``ThreadPoolExecutor`` with
  ``executor="thread"`` (cheaper start-up, shared memory; useful for
  IO-bound models and models that release the GIL in NumPy kernels).  Every
  trial's seed is a ``SeedSequence`` child spawned *before* scheduling, so
  the samples are bit-identical regardless of worker count, executor kind or
  scheduling order;
* **kernel** — the set-based loop of :func:`repro.core.flooding.flood` or
  the vectorized kernel of :func:`repro.engine.kernel.flood_vectorized`.
  ``backend="auto"`` selects the vectorized kernel exactly when the model
  overrides :meth:`~repro.meg.base.DynamicGraph.adjacency_matrix` with a
  fast array implementation.  Both kernels produce identical samples, so the
  choice never changes results;
* **caching** — with a :class:`~repro.engine.store.ResultStore` attached,
  a batch whose content key (model + trial parameters + seeds) is already
  stored is returned from the store without simulating.

Two statistical extensions ride on the chunk loop (see
:mod:`repro.stats.sequential`): specs carrying a
:class:`~repro.stats.sequential.StoppingRule` are evaluated between
rule-sized trial chunks and stop once the running confidence interval is
narrow enough — the realized trial count depends only on the (worker-
invariant) samples, so stopped runs stay bit-identical at any worker count
— and engines constructed with ``sketch=True`` embed mergeable
moment/quantile sketches in stored records so the store can aggregate
sharded batches without materializing every sample.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Optional, Sequence

import numpy as np

from repro.core.flooding import flood, flood_sources_set
from repro.engine.batch import flood_trials_batch
from repro.engine.bitset import flood_bitset
from repro.engine.kernel import (
    flood_sources_batch,
    flood_sparse,
    flood_vectorized,
    has_fast_adjacency,
    has_fast_packed_adjacency,
    has_fast_reach_mask,
    has_fast_trial_batch,
)
from repro.engine.shard import ShardSpec, seed_token, shard_store_key
from repro.engine.spec import BatchResult, TrialSpec
from repro.engine.store import ResultStore
from repro.meg.base import DynamicGraph
from repro.stats.sequential import MomentSketch, sketch_from_samples, sketch_salt
from repro.telemetry import core as telemetry
from repro.telemetry import trace as tracectx
from repro.util.rng import spawn_seed_sequences

BACKENDS = ("auto", "set", "vectorized", "sparse", "bitset", "batch")
EXECUTORS = ("process", "thread")

# ``backend="auto"`` upgrades from the dense to the sparse kernel when the
# model is at least this large and its estimated snapshot density is at most
# this fraction: below it the O(m)-per-step sparse matvec beats touching the
# dense n x n matrix; above it the dense kernel's contiguous memory wins.
SPARSE_AUTO_MIN_NODES = 1024
SPARSE_AUTO_MAX_DENSITY = 0.05

# ``backend="auto"`` upgrades to the bit-packed kernel for models serving a
# cached/incremental packed adjacency once they are at least this large:
# below it the word-wise OR and the dense row reduction are within noise of
# each other, from here the 64-entries-per-word pass wins (measured ~1.1x at
# 512 nodes growing to ~7x at 2048).
BITSET_AUTO_MIN_NODES = 512

# ``backend="auto"`` switches single-source batches to the realization-batch
# kernel when the model supplies a fast trial-batch runner, the (chunk's)
# trial count is at least this wide and the model small enough that stacked
# per-trial state fits comfortably — the regime where per-round Python
# dispatch, not NumPy work, dominates per-trial execution (measured ~3-4x
# for node-MEGs up to 256 nodes).
BATCH_AUTO_MIN_TRIALS = 32
BATCH_AUTO_MAX_NODES = 256

# Upper bound on the number of trials one batched kernel pass advances
# (bounds the B x n informed matrix and the stacked per-trial state).
BATCH_TRIAL_CHUNK = 1024

_KERNELS = {
    "set": flood,
    "vectorized": flood_vectorized,
    "sparse": flood_sparse,
    "bitset": flood_bitset,
}


def estimated_snapshot_density(model: DynamicGraph) -> Optional[float]:
    """Best-effort stationary edge density of ``model`` (``None`` if unknown).

    Tries the model-level stationary quantities the paper's analysis already
    exposes: the pairwise edge probability of the MEG families and the
    expected-degree estimate of the geometric models.
    """
    for attribute in ("edge_probability", "stationary_edge_probability"):
        method = getattr(model, attribute, None)
        if method is None:
            continue
        try:
            return float(method())
        except Exception:
            continue
    method = getattr(model, "expected_degree_estimate", None)
    if method is not None:
        try:
            return float(method()) / max(model.num_nodes - 1, 1)
        except Exception:
            pass
    return None


def _bitset_eligible(model: DynamicGraph) -> bool:
    """Whether auto should consider the bit-packed kernel for ``model``.

    The bitset kernel only wins when the packed rows come cached or
    incrementally maintained — packing the dense matrix per round costs about
    one dense reach — so eligibility requires an overridden
    :meth:`~repro.meg.base.DynamicGraph.packed_adjacency` plus enough nodes
    for the word-wise pass to pay off.
    """
    return (
        has_fast_packed_adjacency(model)
        and model.num_nodes >= BITSET_AUTO_MIN_NODES
    )


def resolve_backend(
    backend: str,
    model: DynamicGraph,
    num_trials: int = 1,
    batched_sources: bool = False,
) -> str:
    """Concrete kernel choice for a batch of ``num_trials`` trials on ``model``.

    ``"auto"`` resolves in order:

    * the realization-batch kernel when the model supplies a fast
      trial-batch runner, the batch is wide (``>= BATCH_AUTO_MIN_TRIALS``
      single-source trials) and the model small (``<= BATCH_AUTO_MAX_NODES``
      nodes) — the regime where per-trial dispatch dominates;
    * the set-based loop for models without a fast adjacency override
      (upgraded to the bitset kernel when a fast *packed* adjacency exists
      and the model has ``>= BITSET_AUTO_MIN_NODES`` nodes — static
      snapshots, whose packed rows are cached);
    * otherwise a vectorized kernel — upgraded to the sparse CSR kernel when
      the model is large (``>= SPARSE_AUTO_MIN_NODES`` nodes) and its
      estimated snapshot density small (``<= SPARSE_AUTO_MAX_DENSITY``), or
      to the bitset kernel when a fast packed adjacency exists.  Models with
      a fast :meth:`~repro.meg.base.DynamicGraph.reach_mask` (node-MEGs,
      graph mobility models) stay on the vectorized kernel at any size:
      their state-level update already avoids the dense matrix.

    An explicit ``"batch"`` is honoured for single-source trials on any model
    (models without a fast runner run the generic, equally-exact batched
    loop) and falls back to ``"vectorized"`` for batched-source trials,
    which the realization-batch kernel does not cover.
    """
    if backend == "auto":
        if (
            not batched_sources
            and num_trials >= BATCH_AUTO_MIN_TRIALS
            and model.num_nodes <= BATCH_AUTO_MAX_NODES
            and has_fast_trial_batch(model)
        ):
            return "batch"
        if not has_fast_adjacency(model):
            return "bitset" if _bitset_eligible(model) else "set"
        if not has_fast_reach_mask(model):
            if model.num_nodes >= SPARSE_AUTO_MIN_NODES:
                density = estimated_snapshot_density(model)
                if density is not None and density <= SPARSE_AUTO_MAX_DENSITY:
                    return "sparse"
            if _bitset_eligible(model):
                return "bitset"
        return "vectorized"
    if backend == "batch":
        return "vectorized" if batched_sources else "batch"
    if backend in ("set", "vectorized", "sparse", "bitset"):
        return backend
    raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")


def _trial_sources(
    model: DynamicGraph,
    sources,
    num_sources: Optional[int],
    rng: np.random.Generator,
) -> Optional[list[int]]:
    """The source batch of one trial, or ``None`` for a single-source trial.

    ``num_sources`` draws a fresh distinct-source sample per trial from the
    trial's own stream (before the model reset consumes it), so the sampled
    sources are as reproducible as the trials themselves.
    """
    if num_sources is not None:
        n = model.num_nodes
        if num_sources > n:
            raise ValueError(
                f"num_sources ({num_sources}) exceeds the model's {n} nodes; "
                f"use sources='all' to flood from every node"
            )
        chosen = rng.choice(n, size=num_sources, replace=False)
        return [int(s) for s in chosen]
    if isinstance(sources, str):  # validated to be "all" by TrialSpec
        return list(range(model.num_nodes))
    if sources is not None:
        return [int(s) for s in sources]
    return None


def _run_single_trial(
    model: DynamicGraph,
    seed: np.random.SeedSequence,
    source: int,
    sources,
    num_sources: Optional[int],
    max_steps: Optional[int],
    backend: str,
    source_chunk: Optional[int] = None,
) -> tuple[int, int]:
    """One flooding trial; returns ``(flooding_time, num_nodes)``.

    A batched-source trial floods every source of the batch over one shared
    realization and reports the worst (largest) flooding time — the per-trial
    estimate of ``F(G) = max_s F(G, s)``.  ``source_chunk`` bounds the batch
    width per kernel pass (the realization is recorded once and replayed for
    later chunks — identical results, bounded memory).
    """
    rng = np.random.default_rng(seed)
    resolved = resolve_backend(backend, model)
    if telemetry.active() is not None:
        telemetry.count(f"engine.backend.{resolved}")
    source_batch = _trial_sources(model, sources, num_sources, rng)
    if source_batch is None:
        result = _KERNELS[resolved](model, source=source, rng=rng, max_steps=max_steps)
        if result.flooding_time is None:
            raise RuntimeError(
                f"flooding did not complete within the step limit "
                f"({result.final_informed}/{result.num_nodes} nodes informed)"
            )
        return result.flooding_time, result.num_nodes
    if resolved == "set":
        times = flood_sources_set(model, source_batch, rng=rng, max_steps=max_steps)
    else:
        times = flood_sources_batch(
            model,
            source_batch,
            rng=rng,
            max_steps=max_steps,
            backend="sparse" if resolved == "sparse" else "dense",
            chunk_size=source_chunk,
        )
    if any(t is None for t in times):
        unfinished = sum(1 for t in times if t is None)
        raise RuntimeError(
            f"flooding did not complete within the step limit for "
            f"{unfinished}/{len(times)} sources"
        )
    return max(times), model.num_nodes


def _run_trial_chunk(
    model: DynamicGraph,
    seeds: Sequence,
    source: int,
    sources,
    num_sources: Optional[int],
    max_steps: Optional[int],
    backend: str,
    source_chunk: Optional[int] = None,
) -> list[tuple[int, int]]:
    """Run a contiguous chunk of trials, batching them when the kernel allows.

    The chunk is where the realization-batch kernel plugs in: the backend is
    resolved once against the chunk's width, and a ``"batch"`` resolution
    floods all of the chunk's seeds in lock-step (in slices of at most
    ``BATCH_TRIAL_CHUNK``) instead of one kernel call per trial.  Every other
    resolution falls through to the per-trial path.  Either way the trials
    consume their per-seed streams identically, so the outcomes do not depend
    on the chunking (or on the worker count that produced it).
    """
    resolved = resolve_backend(
        backend,
        model,
        num_trials=len(seeds),
        batched_sources=sources is not None or num_sources is not None,
    )
    if resolved != "batch":
        return [
            _run_single_trial(
                model, seed, source, sources, num_sources, max_steps, resolved, source_chunk
            )
            for seed in seeds
        ]
    if telemetry.active() is not None:
        telemetry.count("engine.backend.batch", len(seeds))
    outcomes: list[tuple[int, int]] = []
    for start in range(0, len(seeds), BATCH_TRIAL_CHUNK):
        group = list(seeds[start : start + BATCH_TRIAL_CHUNK])
        results = flood_trials_batch(model, group, source=source, max_steps=max_steps)
        for result in results:
            if result.flooding_time is None:
                raise RuntimeError(
                    f"flooding did not complete within the step limit "
                    f"({result.final_informed}/{result.num_nodes} nodes informed)"
                )
            outcomes.append((result.flooding_time, result.num_nodes))
    return outcomes


def _execute_chunk(payload) -> tuple[list[tuple[int, int]], float, Optional[dict]]:
    """Worker entry point: run a contiguous chunk of trials on one model copy.

    The model arrives pickled once per chunk (at most once per worker), and
    the chunk's trials reuse that copy exactly as the serial path reuses its
    single instance — every trial resets the model with its own seed.

    Returns ``(outcomes, execute_seconds, metrics_snapshot)``.  When the
    parent runs with telemetry (``collect``), a pool *process* — which cannot
    see the parent's registry — activates an in-memory
    :class:`~repro.telemetry.core.Telemetry` for the chunk and ships its
    metrics back as the snapshot; a pool *thread* shares the parent's
    registry directly and returns ``None``.

    ``context`` (the payload's last element) carries the parent's telemetry
    directory and trace carrier: when present, the chunk also records one
    ``engine.chunk`` span — through a per-process file-backed writer in a
    pool process (its own ``events-*.jsonl``: the third process of a traced
    serve request's tree), or through the shared registry in a pool thread
    — stamped with the trace id and parented on the engine's run span.
    """
    (
        model,
        seeds,
        source,
        sources,
        num_sources,
        max_steps,
        backend,
        source_chunk,
        collect,
        context,
    ) = payload
    started = time.perf_counter()
    child = None
    inherited = telemetry.active()
    foreign = inherited is None or inherited.pid != os.getpid()
    # A forked pool worker inherits the parent's instance but must not write
    # through it (its buffers die with the fork); give it a fresh registry.
    if collect and foreign:
        child = telemetry.activate(telemetry.Telemetry(directory=None))
    try:
        outcomes = _run_trial_chunk(
            model, seeds, source, sources, num_sources, max_steps, backend, source_chunk
        )
    finally:
        if child is not None:
            telemetry.deactivate(child)
    snapshot = child.metrics_snapshot() if child is not None else None
    execute_seconds = time.perf_counter() - started
    if context is not None:
        writer = _chunk_writer(context["directory"]) if foreign else inherited
        if writer is not None:
            with tracectx.attach_carrier(context.get("trace")):
                writer.record_span(
                    "engine.chunk", execute_seconds, trials=len(seeds)
                )
    return outcomes, execute_seconds, snapshot


#: Per-(directory, pid) file-backed writers for pool-child chunk spans.  The
#: writer is deliberately never closed: it has no metrics to flush (chunk
#: metrics ship back to the parent as snapshots) and every span line is
#: flushed on write, so a pool child can simply exit.
_chunk_writers: dict = {}


def _chunk_writer(directory: Optional[str]):
    if directory is None:
        return None
    key = (str(directory), os.getpid())
    writer = _chunk_writers.get(key)
    if writer is None:
        writer = _chunk_writers[key] = telemetry.Telemetry(directory)
    return writer


def _store_payload(
    result: BatchResult,
    spec: TrialSpec,
    salt: Optional[int] = None,
    start: int = 0,
    stride: int = 1,
) -> dict:
    """The persisted form of a batch result (plus the spec's provenance tags).

    ``salt`` (derived from the *full* batch's seed token) switches on the
    embedded sketch; a shard passes its ``start``/``stride`` so its entries
    carry the exact reservoir priorities the unsharded stream assigns them,
    making shard-merged sketches byte-identical to unsharded ones.
    """
    payload = {
        "label": result.label,
        "num_nodes": result.num_nodes,
        "flooding_times": list(result.flooding_times),
        "backend": result.backend,
    }
    if spec.tags:
        payload["tags"] = dict(spec.tags)
    if salt is not None and result.flooding_times:
        payload["sketch"] = sketch_from_samples(
            result.flooding_times, salt, start=start, stride=stride
        )
    if spec.stopping is not None:
        payload["stopping"] = {
            "rule": spec.stopping.as_dict(),
            "budget": spec.num_trials,
            "realized_trials": result.num_trials,
            "stopped_early": result.stopped_early,
        }
    return payload


def _chunk_evenly(items: Sequence, chunks: int) -> list[list]:
    """Split ``items`` into ``chunks`` contiguous, near-equal parts."""
    base, remainder = divmod(len(items), chunks)
    parts = []
    start = 0
    for index in range(chunks):
        size = base + (1 if index < remainder else 0)
        if size:
            parts.append(list(items[start : start + size]))
        start += size
    return parts


class Engine:
    """Executes :class:`TrialSpec` batches serially or on a worker pool.

    Parameters
    ----------
    workers:
        Number of worker processes (1 = run in-process, the default).
    backend:
        ``"auto"`` (default) or one of the concrete kernels — ``"set"``,
        ``"vectorized"``, ``"sparse"``, ``"bitset"`` or ``"batch"`` (the
        realization-batch kernel; single-source specs only, batched-source
        specs fall back to the vectorized kernel).  All kernels produce
        bit-identical samples; the choice is purely about speed.
    executor:
        Pool kind used when ``workers > 1``: ``"process"`` (default, one
        OS process per worker — true CPU parallelism) or ``"thread"``
        (a ``ThreadPoolExecutor`` — cheap start-up and shared memory, the
        right choice for IO-bound models; each worker chunk still gets its
        own model copy, via the same pickle round-trip the process pool
        performs, so the two executors run byte-identical trials).
    store:
        Optional :class:`ResultStore`; when given, completed batches are
        persisted and identical re-runs are served from the store.
    source_chunk:
        Optional cap on the number of sources a batched-source trial floods
        per kernel pass.  Wide batches beyond the cap record their
        realization once (:class:`~repro.engine.replay.SnapshotReplay`) and
        replay it for the remaining chunks — bit-identical results with the
        ``n x B`` informed matrix bounded at ``n x source_chunk``.
    sketch:
        Embed a mergeable moment/quantile sketch
        (:func:`repro.stats.sequential.sketch_from_samples`) in every
        stored record, letting :meth:`ResultStore.merge
        <repro.engine.store.ResultStore.merge>` aggregate sharded batches
        in O(1) memory per point.  Sketches never change the samples;
        adaptive (stopping-rule) records always embed one.
    """

    def __init__(
        self,
        workers: int = 1,
        backend: str = "auto",
        store: Optional[ResultStore] = None,
        source_chunk: Optional[int] = None,
        executor: str = "process",
        sketch: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if source_chunk is not None and source_chunk < 1:
            raise ValueError(f"source_chunk must be >= 1, got {source_chunk}")
        self.workers = workers
        self.backend = backend
        self.store = store
        self.source_chunk = source_chunk
        self.executor = executor
        self.sketch = bool(sketch)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Engine(workers={self.workers}, backend={self.backend!r}, "
            f"executor={self.executor!r}, store={'yes' if self.store else 'no'})"
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _execute_trials(
        self, spec: TrialSpec, model: DynamicGraph, seeds: Sequence
    ) -> list[tuple[int, int]]:
        """Run one trial per seed (serially or on the pool), in seed order."""
        if self.workers == 1 or len(seeds) == 1:
            return _run_trial_chunk(
                model,
                seeds,
                spec.source,
                spec.sources,
                spec.num_sources,
                spec.max_steps,
                self.backend,
                self.source_chunk,
            )
        chunks = _chunk_evenly(seeds, min(self.workers, len(seeds)))
        if self.executor == "thread":
            # Threads share one address space, but trials mutate their model
            # in place, so each chunk gets a private copy — produced by the
            # same pickle round-trip the process pool performs when it ships
            # the model, keeping the two executors byte-identical.
            frozen = pickle.dumps(model)
            models = [model] + [pickle.loads(frozen) for _ in chunks[1:]]
            pool_type = ThreadPoolExecutor
        else:
            models = [model] * len(chunks)
            pool_type = ProcessPoolExecutor
        tel = telemetry.active()
        context = None
        if tel is not None and tel.directory is not None:
            context = {"directory": tel.directory}
            carrier = telemetry.trace_carrier()
            if carrier is not None:
                context["trace"] = carrier
        payloads = [
            (
                chunk_model,
                chunk,
                spec.source,
                spec.sources,
                spec.num_sources,
                spec.max_steps,
                self.backend,
                self.source_chunk,
                tel is not None,
                context,
            )
            for chunk_model, chunk in zip(models, chunks)
        ]
        with pool_type(max_workers=self.workers) as pool:
            submitted = time.perf_counter()
            completions: dict[int, float] = {}
            futures = []
            for index, payload in enumerate(payloads):
                future = pool.submit(_execute_chunk, payload)
                if tel is not None:
                    future.add_done_callback(
                        lambda _f, _i=index: completions.__setitem__(_i, time.perf_counter())
                    )
                futures.append(future)
            # Futures are drained in submission order, so the flattened
            # outcomes keep seed order exactly as ``executor.map`` did.
            results: list[tuple[int, int]] = []
            busy = 0.0
            for index, future in enumerate(futures):
                outcomes, execute_seconds, snapshot = future.result()
                results.extend(outcomes)
                if tel is not None:
                    tel.merge_metrics(snapshot)
                    tel.count("engine.chunks")
                    tel.timing("engine.chunk.execute_seconds", execute_seconds)
                    completed = completions.get(index)
                    if completed is not None:
                        # perf_counter is per-process, so queue wait is the
                        # parent-observed turnaround minus the child-reported
                        # execute time (both are durations, hence comparable).
                        tel.timing(
                            "engine.chunk.queue_wait_seconds",
                            max(0.0, (completed - submitted) - execute_seconds),
                        )
                    busy += execute_seconds
        if tel is not None:
            wall = time.perf_counter() - submitted
            tel.count(f"engine.executor.{self.executor}")
            if wall > 0:
                tel.gauge(
                    "engine.pool.utilization", min(1.0, busy / (wall * self.workers))
                )
        return results

    def _cached_result(self, record: dict, spec: TrialSpec, started: float) -> BatchResult:
        """A :class:`BatchResult` served from a stored payload."""
        stopping = record.get("stopping") or {}
        return BatchResult(
            label=record.get("label", spec.label),
            num_nodes=record["num_nodes"],
            flooding_times=tuple(record["flooding_times"]),
            backend=record.get("backend", self.backend),
            workers=self.workers,
            from_cache=True,
            elapsed_seconds=time.perf_counter() - started,
            stopped_early=bool(stopping.get("stopped_early", False)),
        )

    def _execute_adaptive(
        self, spec: TrialSpec, model: DynamicGraph, seeds: Sequence
    ) -> tuple[list[tuple[int, int]], bool]:
        """Run trials in rule-sized chunks until the stopping rule fires.

        The chunk boundary is the rule's ``check_every`` — a *statistical*
        boundary fixed by the spec, never by the worker count (each chunk is
        still scheduled across the pool by :meth:`_execute_trials`).  The
        stopping decision after each chunk depends only on the samples in
        trial order, which are worker-invariant, so the realized trial count
        is bit-reproducible at any worker count or executor kind.
        """
        rule = spec.stopping
        moments = MomentSketch()
        outcomes: list[tuple[int, int]] = []
        consumed = 0
        while consumed < len(seeds):
            chunk = seeds[consumed : consumed + rule.check_every]
            chunk_outcomes = self._execute_trials(spec, model, chunk)
            outcomes.extend(chunk_outcomes)
            moments.update_many(time_ for time_, _ in chunk_outcomes)
            consumed += len(chunk)
            if rule.satisfied(moments):
                break
        stopped_early = consumed < len(seeds)
        if stopped_early:
            telemetry.count("stats.stop.early")
            telemetry.count("stats.stop.trials_saved", len(seeds) - consumed)
        return outcomes, stopped_early

    def run(self, spec: TrialSpec) -> BatchResult:
        """Execute (or fetch from the store) one batch of trials."""
        with telemetry.span(
            "engine.run",
            label=spec.label,
            trials=spec.num_trials,
            workers=self.workers,
            executor=self.executor,
        ) as run_span:
            started = time.perf_counter()
            seeds = spawn_seed_sequences(spec.seed, spec.num_trials)

            key = None
            if self.store is not None:
                key = ResultStore.compute_key(
                    {**spec.cache_token(), "seeds": seed_token(seeds)}
                )
                record = self.store.get(key)
                if record is not None:
                    telemetry.count("engine.store.hit")
                    run_span.add(cached=True)
                    return self._cached_result(record, spec, started)
                telemetry.count("engine.store.miss")

            # Built exactly once per run, whatever the worker count: a
            # stochastic factory then contributes one realization shared by
            # every trial, so serial and parallel runs sample the same
            # process.
            model = spec.build_model()
            if spec.stopping is not None:
                outcomes, stopped_early = self._execute_adaptive(spec, model, seeds)
            else:
                outcomes = self._execute_trials(spec, model, seeds)
                stopped_early = False

            flooding_times = tuple(t for t, _ in outcomes)
            num_nodes = outcomes[0][1]
            result = BatchResult(
                label=spec.label,
                num_nodes=num_nodes,
                flooding_times=flooding_times,
                backend=self.backend,
                workers=self.workers,
                from_cache=False,
                elapsed_seconds=time.perf_counter() - started,
                stopped_early=stopped_early,
            )
            if self.store is not None and key is not None:
                salt = None
                if self.sketch or spec.stopping is not None:
                    salt = sketch_salt(seed_token(seeds))
                self.store.put(key, _store_payload(result, spec, salt=salt))
                telemetry.count("engine.store.put")
            run_span.add(cached=False, realized_trials=result.num_trials)
            return result

    def run_shard(self, shard: ShardSpec) -> BatchResult:
        """Execute (or fetch from the store) one shard of a batch.

        Shard ``i`` of ``K`` runs trials ``i, i+K, i+2K, ...`` of the
        unsharded batch with the exact seeds those trials would have used —
        the full per-trial seed list is spawned and the shard's stride
        selected from it — so the returned samples are bit-identical to the
        corresponding slice of :meth:`run` at any worker count.

        With a store attached, the shard's partial result is persisted as a
        self-describing record (shard coordinates + the parent batch's
        content key) that :meth:`ResultStore.merge
        <repro.engine.store.ResultStore.merge>` can reassemble into the full
        batch record.  A stored full batch also serves any of its shards
        directly.

        Sequential stopping cannot be trial-sharded — whether trial ``t``
        runs depends on every sample before it, which no single shard sees —
        so adaptive specs are rejected for ``count > 1`` (the fleet sizes
        shard budgets from a pilot round instead; see
        :func:`repro.fleet.coordinator.plan_variance_budgets`) and delegate
        to :meth:`run` for the trivial ``count == 1`` sharding.
        """
        if shard.spec.stopping is not None:
            if shard.count > 1:
                raise ValueError(
                    "sequential stopping cannot be trial-sharded: the stopping "
                    "decision at trial t depends on all earlier samples; run the "
                    "spec unsharded, or derive fixed per-point budgets from a "
                    "pilot round (fleet --target-ci)"
                )
            return self.run(shard.spec)
        with telemetry.span(
            "engine.run_shard",
            label=shard.spec.label,
            shard=f"{shard.index}/{shard.count}",
            workers=self.workers,
            executor=self.executor,
        ) as run_span:
            started = time.perf_counter()
            spec = shard.spec
            all_seeds, shard_seeds = shard.spawn_seeds()

            key = parent_key = None
            if self.store is not None:
                parent_key = ResultStore.compute_key(
                    {**spec.cache_token(), "seeds": seed_token(all_seeds)}
                )
                key = shard_store_key(parent_key, shard.index, shard.count)
                record = self.store.get(key)
                if record is not None:
                    telemetry.count("engine.store.hit")
                    run_span.add(cached=True)
                    return self._cached_result(record, spec, started)
                full_record = self.store.get(parent_key)
                if full_record is not None:
                    telemetry.count("engine.store.hit")
                    run_span.add(cached=True)
                    sliced = dict(full_record)
                    sliced["flooding_times"] = list(
                        full_record["flooding_times"][shard.index :: shard.count]
                    )
                    # The full batch's sketch covers all trials, not this slice.
                    sliced.pop("sketch", None)
                    return self._cached_result(sliced, spec, started)
                telemetry.count("engine.store.miss")

            model = spec.build_model()
            outcomes = self._execute_trials(spec, model, shard_seeds) if shard_seeds else []
            result = BatchResult(
                label=spec.label,
                num_nodes=outcomes[0][1] if outcomes else model.num_nodes,
                flooding_times=tuple(t for t, _ in outcomes),
                backend=self.backend,
                workers=self.workers,
                from_cache=False,
                elapsed_seconds=time.perf_counter() - started,
            )
            if self.store is not None and key is not None and parent_key is not None:
                # The salt comes from the *parent* seed token and the shard's
                # (start, stride) are its interleave coordinates, so the
                # shard's sketch entries are exactly the ones the unsharded
                # run would assign those trials — merge is byte-identical.
                salt = sketch_salt(seed_token(all_seeds)) if self.sketch else None
                payload = _store_payload(
                    result, spec, salt=salt, start=shard.index, stride=shard.count
                )
                self.store.put(key, shard.store_record(payload, parent_key))
                telemetry.count("engine.store.put")
            run_span.add(cached=False)
            return result

    def run_many(self, specs: Sequence[TrialSpec]) -> list[BatchResult]:
        """Execute several specs in order (each with its own seed stream)."""
        return [self.run(spec) for spec in specs]
