"""Record-and-replay of one dynamic-graph realization.

Several estimators flood *multiple times over the same realization*: the
batched-source estimator floods every source of a batch over one shared
evolution, and memory limits can force that batch to be processed in chunks.
Without help, each chunk would have to re-step the stochastic model from the
same seed — paying the full snapshot-generation cost (RNG draws, k-d tree
builds, matrix assembly) once per chunk.

:class:`SnapshotReplay` removes that cost: it wraps any
:class:`~repro.meg.base.DynamicGraph` and records each snapshot's CSR
adjacency the first time it is stepped past.  :meth:`SnapshotReplay.rewind`
then restarts time at the recorded snapshot 0 *without touching the
underlying model or its random stream*; stepping within the recorded window
serves stored frames, and stepping past the frontier extends the recording
by stepping the real model.  Because the flooding update is deterministic
given the snapshot, every kernel (set-based, dense, sparse) produces
bit-identical results over a replay as over the live model.

Memory: a recording holds one CSR matrix per recorded step — ``O(T * m)``
for ``T`` steps of ``m``-edge snapshots — which is exactly the footprint
that makes replay cheaper than re-stepping, not free.  Use it for floods
that genuinely share a realization, not as a general cache.  Frames are
deliberately stored sparse whatever the consuming kernel: a dense kernel
pays one ``O(n^2)`` CSR-to-dense expansion per step per chunk, which is
dominated by the chunk's own ``O(n^2 * B)`` matmul, while caching dense
frames would reintroduce the ``O(T * n^2)`` memory the recording exists to
avoid.
"""

from __future__ import annotations

from typing import Iterator, Set

import numpy as np
import scipy.sparse

from repro.meg.base import DynamicGraph
from repro.util.rng import RNGLike


class SnapshotReplay(DynamicGraph):
    """Wrap a model; record its snapshots once, replay them bit-identically.

    The wrapper is itself a :class:`~repro.meg.base.DynamicGraph`, so every
    flooding kernel accepts it unchanged.  The snapshot at construction time
    becomes recorded frame 0; :meth:`reset` re-seeds the underlying model and
    starts a fresh recording, :meth:`rewind` restarts playback of the current
    recording.
    """

    def __init__(self, model: DynamicGraph) -> None:
        if not isinstance(model, DynamicGraph):
            raise TypeError(f"model must be a DynamicGraph, got {type(model).__name__}")
        self._model = model
        self._num_nodes = model.num_nodes
        # Frame 0 is captured lazily on first use: models are allowed to be
        # un-initialised until their first reset().
        self._frames: list[scipy.sparse.csr_matrix] = []
        self._cursor = 0
        self._time = 0

    @property
    def model(self) -> DynamicGraph:
        """The wrapped model."""
        return self._model

    @property
    def recorded_steps(self) -> int:
        """Number of snapshots recorded so far (including frame 0)."""
        return len(self._frames)

    @property
    def cursor(self) -> int:
        """Index of the frame currently being played."""
        return self._cursor

    def _capture(self) -> scipy.sparse.csr_matrix:
        # Copied so models that mutate their adjacency buffers in place on
        # step() cannot corrupt earlier frames.
        return self._model.sparse_adjacency().tocsr().copy()

    def _frame(self) -> scipy.sparse.csr_matrix:
        """The recorded frame at the current cursor (capturing frame 0 lazily)."""
        if not self._frames:
            self._frames.append(self._capture())
        return self._frames[self._cursor]

    # ------------------------------------------------------------------ #
    # DynamicGraph interface
    # ------------------------------------------------------------------ #
    def reset(self, rng: RNGLike = None) -> None:
        """Re-seed the underlying model and start a fresh recording."""
        self._model.reset(rng)
        self._frames = []
        self._cursor = 0
        self._time = 0

    def rewind(self, frame: int = 0) -> None:
        """Restart playback at a recorded frame (no model or RNG access).

        ``frame`` defaults to 0 (the start of the recording); passing a
        previously visited cursor position replays from there instead —
        chunked floods use this to restart every chunk at the position the
        replay had when the flood began.
        """
        if frame < 0 or frame > self._cursor:
            raise ValueError(
                f"can only rewind to a visited frame in [0, {self._cursor}], got {frame}"
            )
        self._cursor = frame
        self._time = frame

    def step(self) -> None:
        """Advance one step: replay a recorded frame or extend the recording."""
        self._frame()  # record the current snapshot before moving past it
        self._cursor += 1
        self._time += 1
        if self._cursor == len(self._frames):
            self._model.step()
            self._frames.append(self._capture())

    def current_edges(self) -> Iterator[tuple[int, int]]:
        upper = scipy.sparse.triu(self._frame(), k=1).tocoo()
        return iter(list(zip(upper.row.tolist(), upper.col.tolist())))

    # ------------------------------------------------------------------ #
    # fast snapshot interfaces (all served from the recorded frame)
    # ------------------------------------------------------------------ #
    def sparse_adjacency(self) -> scipy.sparse.csr_matrix:
        return self._frame()

    def adjacency_matrix(self) -> np.ndarray:
        return self._frame().toarray().astype(bool)

    def reach_mask(self, informed: np.ndarray) -> np.ndarray:
        mask = np.asarray(informed, dtype=bool)
        return (self._frame() @ mask.astype(np.intp)) != 0

    def neighbors_of_set(self, nodes: Set[int]) -> set[int]:
        rows = sorted(nodes)
        if not rows:
            return set()
        return set(int(j) for j in self._frame()[rows].indices)

    def cache_token(self) -> dict:
        """Delegate to the wrapped model (a replay is not a new model)."""
        return self._model.cache_token()
