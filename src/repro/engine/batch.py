"""Realization-batched flooding: many trials of one family in one tensor pass.

The engine's per-trial kernels pay Python-level dispatch (reset, one reach
and one step call per round) for every trial.  When a batch floods hundreds
of small realizations of the *same* family, that dispatch dominates the
round's NumPy work.  :func:`flood_trials_batch` amortizes it: the informed
sets of ``B`` independent trials form the rows of a ``B x n`` boolean matrix
and each round advances every still-running trial at once.

Exactness is the whole point: trial ``b`` consumes the random stream of
``np.random.default_rng(seeds[b])`` exactly as a solo
:func:`~repro.engine.kernel.flood_vectorized` run would, so the returned
:class:`~repro.core.flooding.FloodingResult` objects are bit-identical to
per-trial execution.  Two runner strategies provide this:

* models overriding :meth:`~repro.meg.base.DynamicGraph.trial_batch` supply a
  *fast runner* that keeps all ``B`` realizations in stacked state arrays and
  mirrors the per-trial draws with batched equivalents (the node-MEG runner
  lives in :mod:`repro.meg.node_meg`);
* every other model gets the *generic runner* — one pickled model copy per
  trial, advanced in a Python loop.  Same results, no per-round speedup; it
  exists so ``backend="batch"`` is legal for every family.

Over-drawing note: a fast runner may draw uniforms a few rounds ahead of a
trial's completion (the node-MEG runner pre-draws fixed windows of rounds to
amortize generator dispatch).  This never changes results — each trial's
generator is private to the trial and discarded afterwards, and the values a
finished trial never uses are never observable.
"""

from __future__ import annotations

import pickle
from typing import Optional, Sequence

import numpy as np

from repro.core.flooding import FloodingResult, default_max_steps
from repro.meg.base import DynamicGraph
from repro.telemetry import core as telemetry

__all__ = ["flood_trials_batch"]


class _GenericTrialBatch:
    """Fallback runner: one pickled model copy per trial, looped per round."""

    def __init__(self, process: DynamicGraph, count: int) -> None:
        frozen = pickle.dumps(process)
        self._models = [pickle.loads(frozen) for _ in range(count)]

    def reset(self, rngs: Sequence[np.random.Generator]) -> None:
        for model, rng in zip(self._models, rngs):
            model.reset(rng)

    def reach(self, informed: np.ndarray, sub: np.ndarray) -> np.ndarray:
        out = np.empty((sub.size, informed.shape[1]), dtype=bool)
        for position, trial in enumerate(sub):
            out[position] = self._models[trial].reach_mask(informed[trial])
        return out

    def step(self, sub: np.ndarray, round_index: int) -> None:
        del round_index
        for trial in sub:
            self._models[trial].step()


def flood_trials_batch(
    process: DynamicGraph,
    seeds: Sequence,
    source: int = 0,
    max_steps: Optional[int] = None,
) -> list[FloodingResult]:
    """Flood one independent trial per seed, all advanced in lock-step.

    Equivalent to ``[flood_vectorized(process, source=source,
    rng=np.random.default_rng(seed)) for seed in seeds]`` — same flooding
    times, same informed-count histories — but every round advances all
    still-running trials together.  ``process`` itself is never mutated when
    it provides a fast :meth:`~repro.meg.base.DynamicGraph.trial_batch`
    runner; the generic fallback advances private pickled copies.

    Each seed is passed to ``np.random.default_rng``, so anything that
    function accepts (ints, ``SeedSequence`` objects, ``None``) works.
    """
    n = process.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} nodes")
    if max_steps is None:
        max_steps = default_max_steps(n)
    if max_steps < 0:
        raise ValueError(f"max_steps must be non-negative, got {max_steps}")
    seeds = list(seeds)
    batch = len(seeds)
    if batch == 0:
        return []

    runner = process.trial_batch(batch)
    fast = runner is not None
    if runner is None:
        runner = _GenericTrialBatch(process, batch)
    rngs = [np.random.default_rng(seed) for seed in seeds]
    runner.reset(rngs)

    if n == 1:
        return [FloodingResult(source, n, (1,), 0) for _ in range(batch)]

    informed = np.zeros((batch, n), dtype=bool)
    informed[:, source] = True
    histories: list[list[int]] = [[1] for _ in range(batch)]
    times: list[Optional[int]] = [None] * batch
    active = np.arange(batch)
    for t in range(max_steps):
        sub = active
        informed[sub] |= runner.reach(informed, sub)
        counts = informed[sub].sum(axis=1)
        for position, trial in enumerate(sub):
            histories[trial].append(int(counts[position]))
        # Per-trial kernels step the model even on the completing round (then
        # break), so the batched step covers just-completed trials too.
        runner.step(sub, t)
        done = counts == n
        for trial in sub[done]:
            times[int(trial)] = t + 1
        active = sub[~done]
        if active.size == 0:
            break

    tel = telemetry.active()
    if tel is not None:
        tel.count(f"kernel.flood.batch_trials_{'fast' if fast else 'generic'}", batch)
        tel.timing("kernel.batch_width", batch)
        finished = [t for t in times if t is not None]
        if finished:
            tel.timing("kernel.rounds", max(finished))
    return [
        FloodingResult(source, n, tuple(histories[trial]), times[trial])
        for trial in range(batch)
    ]
