"""Optional Numba-JIT CSR frontier expansion (pure-NumPy fallback built in).

The sparse flooding kernel advances the informed vector with a CSR matvec —
``O(m)`` work, but every round allocates a count vector and scans *all* rows.
When :mod:`numba` is importable (the ``repro[jit]`` extra), the same update
compiles to a tight loop that touches only the rows of informed nodes and
writes booleans straight into a caller-owned scratch buffer.

Numba is strictly optional: the package never imports it at module scope of
any required path, and :func:`csr_reach` falls back to the exact matvec
formulation when it is absent (or when ``REPRO_DISABLE_NUMBA`` is set in the
environment, the escape hatch for debugging suspected JIT issues).  Both
implementations compute the identical boolean update — for a *symmetric*
adjacency, the union of the informed nodes' rows equals the nonzero pattern
of ``A @ informed`` — so kernel results do not depend on whether numba is
installed.
"""

from __future__ import annotations

import os

import numpy as np
import scipy.sparse

__all__ = ["NUMBA_AVAILABLE", "csr_reach", "numba_requested"]


def numba_requested() -> bool:
    """Whether the environment allows using numba (the escape hatch is unset)."""
    return not os.environ.get("REPRO_DISABLE_NUMBA")


try:  # pragma: no cover - exercised only when numba is installed
    if not numba_requested():
        raise ImportError("numba disabled via REPRO_DISABLE_NUMBA")
    import numba

    NUMBA_AVAILABLE = True
except ImportError:
    numba = None
    NUMBA_AVAILABLE = False


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only when numba is installed

    @numba.njit(cache=False)
    def _expand_rows(indptr, indices, informed, out):
        for node in range(informed.size):
            if informed[node]:
                for position in range(indptr[node], indptr[node + 1]):
                    out[indices[position]] = True

    def csr_reach(
        matrix: scipy.sparse.csr_matrix, informed: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Boolean reach of ``informed`` through a symmetric CSR adjacency.

        Writes into (and returns) ``out``, a boolean scratch vector of length
        ``n`` owned by the caller; previous contents are discarded.
        """
        out[:] = False
        _expand_rows(matrix.indptr, matrix.indices, informed, out)
        return out

else:

    def csr_reach(
        matrix: scipy.sparse.csr_matrix, informed: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Boolean reach of ``informed`` through a symmetric CSR adjacency.

        Pure-NumPy fallback: the matvec count formulation, bit-identical to
        the JIT row expansion for symmetric matrices.
        """
        np.not_equal(matrix @ informed.astype(np.intp), 0, out=out)
        return out
