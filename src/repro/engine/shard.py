"""Deterministic sharding of trial batches across independent executors.

The paper's experiments are parameter sweeps over many independent
Monte-Carlo trials — embarrassingly parallel work that one process, one
worker pool, or a fleet of CI jobs can execute interchangeably *as long as
the partition is deterministic*.  This module provides that partition:

* :class:`ShardSpec` wraps a :class:`~repro.engine.spec.TrialSpec` together
  with a shard ``index`` and shard ``count``.  Shard ``i`` of ``K`` owns
  trials ``i, i+K, i+2K, ...`` of the batch, *with the exact per-trial
  ``SeedSequence`` children the unsharded run would have used*: the executor
  spawns the full batch's seed list from the spec's seed material and selects
  the shard's stride, so every shard is bit-identical to its slice of the
  unsharded run at any worker count.
* :func:`shard_specs` fans a spec out into all ``K`` shards;
  :func:`parse_shard` reads the CLI's ``i/K`` notation.
* :func:`seed_token` and :func:`shard_store_key` define how sharded results
  are addressed in the :class:`~repro.engine.store.ResultStore`: a shard
  record lives under a key derived from the *parent* batch key plus the
  shard coordinates, and carries both in its payload — which is what lets
  :meth:`ResultStore.merge <repro.engine.store.ResultStore.merge>` reassemble
  the full batch record (under the parent key, bit-identical to an unsharded
  run's record) from any complete set of shard stores.

The interleaved (strided) partition is deliberate: contiguous chunking would
also be deterministic, but striding keeps every shard statistically
representative of the whole batch, so partial fan-outs still give unbiased
summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.engine.spec import TrialSpec
from repro.engine.store import ResultStore
from repro.util.rng import spawn_seed_sequences


def seed_token(seeds: Sequence[np.random.SeedSequence]) -> list[dict]:
    """JSON-able identity of the spawned per-trial seed sequences."""
    token = []
    for seq in seeds:
        entropy = seq.entropy
        if isinstance(entropy, (list, tuple)):
            entropy = [int(word) for word in entropy]
        elif entropy is not None:
            entropy = int(entropy)
        token.append({"entropy": entropy, "spawn_key": [int(k) for k in seq.spawn_key]})
    return token


def batch_store_key(spec: TrialSpec) -> str:
    """Content key of the *full* (unsharded) batch a spec describes.

    The same key :class:`~repro.engine.engine.Engine` uses when it runs the
    spec directly; shards reference it as their ``parent_key``.
    """
    seeds = spawn_seed_sequences(spec.seed, spec.num_trials)
    return ResultStore.compute_key({**spec.cache_token(), "seeds": seed_token(seeds)})


def shard_store_key(parent_key: str, index: int, count: int) -> str:
    """Content key of one shard's partial record in the result store."""
    return ResultStore.compute_key(
        {"parent": parent_key, "shard": {"index": int(index), "count": int(count)}}
    )


@dataclass(frozen=True)
class ShardSpec:
    """Shard ``index`` of ``count`` of one trial batch.

    Attributes
    ----------
    spec:
        The full, *unsharded* batch description.  Keeping the whole spec (not
        a pre-sliced copy) is what makes the shard self-describing: the seed
        material, trial count and model identity all come from the parent
        spec, so any worker holding this object reproduces exactly its slice
        of the unsharded run.
    index / count:
        Shard coordinates; shard ``index`` owns trials
        ``index, index+count, index+2*count, ...``.
    """

    spec: TrialSpec
    index: int
    count: int

    def __post_init__(self) -> None:
        if not isinstance(self.spec, TrialSpec):
            raise TypeError(f"spec must be a TrialSpec, got {type(self.spec).__name__}")
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(f"shard index must lie in [0, {self.count}), got {self.index}")

    @property
    def trial_indices(self) -> range:
        """The (possibly empty) trial indices this shard owns."""
        return range(self.index, self.spec.num_trials, self.count)

    @property
    def num_trials(self) -> int:
        """Number of trials this shard executes."""
        return len(self.trial_indices)

    def spawn_seeds(self) -> tuple[list, list]:
        """``(all_seeds, shard_seeds)`` for the batch and this shard's slice.

        The full list is always spawned — that is the determinism contract:
        the shard's seeds are *selected from* the unsharded spawn, never
        derived independently.
        """
        all_seeds = spawn_seed_sequences(self.spec.seed, self.spec.num_trials)
        return all_seeds, [all_seeds[i] for i in self.trial_indices]

    def store_record(self, result_payload: dict, parent_key: str) -> dict:
        """The self-describing shard payload persisted to a result store."""
        return {
            **result_payload,
            "shard": {
                "index": self.index,
                "count": self.count,
                "num_trials": self.spec.num_trials,
            },
            "parent_key": parent_key,
        }


def shard_specs(spec: TrialSpec, count: int) -> list[ShardSpec]:
    """All ``count`` shards of ``spec`` (run them anywhere, merge the stores)."""
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    return [ShardSpec(spec, index, count) for index in range(count)]


def parse_shard(text: str) -> tuple[int, int]:
    """Parse the CLI's ``i/K`` shard notation into ``(index, count)``."""
    parts = text.split("/")
    if len(parts) != 2:
        raise ValueError(f"shard must look like i/K (e.g. 0/3), got {text!r}")
    try:
        index, count = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(f"shard must look like i/K (e.g. 0/3), got {text!r}") from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(f"shard index must lie in [0, count) with count >= 1, got {text!r}")
    return index, count
