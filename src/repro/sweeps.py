"""Model-family factories for node-count sweeps.

Module-level functions (not closures or partials) so the built specs are
picklable for worker pools and carry stable cache tokens: the result-store
key of a sweep point depends only on the factory's qualified name, the
sweep value and these keyword arguments — identical across machines, which
is what lets sharded CI jobs, fleet workers and local runs share one
logical store.

Both the CLI (``repro sweep``) and the fleet worker
(:mod:`repro.fleet.worker`) resolve families through :data:`SWEEP_FAMILIES`,
so a fleet job descriptor can name a family by its short string and every
executor rebuilds exactly the same :class:`~repro.engine.TrialSpec` —
including adaptive sweeps, whose :class:`~repro.stats.sequential.StoppingRule`
rides on the spec while the family factory stays oblivious to it.
"""

from __future__ import annotations


def sweep_edge_meg_model(num_nodes: int, q: float = 0.5, avg_degree: float = 4.0):
    """Edge-MEG at constant expected degree (sparse regime) for node sweeps."""
    from repro.meg.edge_meg import EdgeMEG

    birth = min(1.0, avg_degree / max(num_nodes - 1, 1))
    return EdgeMEG(num_nodes, p=birth, q=q)


def sweep_waypoint_model(
    num_nodes: int, side: float = 6.0, radius: float = 1.2, speed: float = 1.0
):
    """Random-waypoint model with fixed geometry for node sweeps."""
    from repro.mobility.random_waypoint import RandomWaypoint

    return RandomWaypoint(num_nodes, side=side, radius=radius, v_min=speed)


def sweep_grid_walk_model(num_nodes: int, grid_side: int = 6, augment_k: int = 1):
    """Random walks on an augmented grid with fixed geometry for node sweeps."""
    from repro.graphs.grid import augmented_grid_graph
    from repro.mobility.random_path import GraphRandomWalkMobility

    graph = augmented_grid_graph(grid_side, augment_k)
    return GraphRandomWalkMobility(num_nodes, graph, holding_probability=0.5)


SWEEP_FAMILIES = {
    "edge-meg": sweep_edge_meg_model,
    "waypoint": sweep_waypoint_model,
    "grid-walk": sweep_grid_walk_model,
}

#: Canonical fixed parameters (and defaults) of each family's factory —
#: mirroring the keyword defaults above.  The single source of truth shared
#: by the CLI's per-family flags and the :mod:`repro.api` request facade,
#: which fills omitted parameters from this table so equal workloads always
#: canonicalize to equal factory kwargs (and therefore equal store keys).
SWEEP_FAMILY_DEFAULTS: dict[str, dict] = {
    "edge-meg": {"q": 0.5, "avg_degree": 4.0},
    "waypoint": {"side": 6.0, "radius": 1.2, "speed": 1.0},
    "grid-walk": {"grid_side": 6, "augment_k": 1},
}


def resolve_family(name: str):
    """The factory registered under ``name`` (clean error on a typo)."""
    try:
        return SWEEP_FAMILIES[name]
    except KeyError:
        raise ValueError(
            f"unknown sweep family {name!r}; known families: "
            f"{', '.join(sorted(SWEEP_FAMILIES))}"
        ) from None
