"""repro — reproduction of *Information Spreading in Dynamic Graphs* (PODC 2012).

The package simulates flooding (and richer gossip protocols) over dynamic
graphs and reproduces, as finite-size experiments, every analytical result of
the paper by Clementi, Silvestri and Trevisan:

* the general ``(M, alpha, beta)``-stationary flooding bound (Theorem 1),
* the node-MEG specialisation (Theorem 3),
* geometric mobility models — random waypoint, random walk, random trip
  (Corollary 4),
* random-path / random-walk graph mobility models (Corollaries 5 and 6),
* generalised edge-MEGs (Appendix A).

Top-level convenience imports expose the most commonly used classes; the
sub-packages hold the full API:

``repro.markov``
    Finite Markov chains, stationary distributions and mixing times.
``repro.graphs``
    Mobility graphs (grids, k-augmented grids, tori) and path families.
``repro.meg``
    Markovian evolving graphs: edge-MEGs, node-MEGs and baselines.
``repro.mobility``
    Geometric and graph mobility models realised as node-MEGs.
``repro.core``
    Flooding/gossip processes, stationarity estimation and bound formulas.
``repro.baselines``
    Prior-work comparators (edge-MEG closed form, meeting time).
``repro.experiments``
    Parameter-sweep harness and the per-theorem experiment registry.
``repro.engine``
    Parallel Monte-Carlo execution engine: trial specs, serial/multiprocess
    scheduling, deterministic sharding, the vectorized flooding kernels,
    snapshot replay and the persistent (mergeable) result store.
"""

from repro.core.bounds import (
    corollary4_bound,
    corollary5_bound,
    corollary6_bound,
    edge_meg_general_bound,
    theorem1_bound,
    theorem3_bound,
    waypoint_flooding_bound,
)
from repro.core.flooding import FloodingResult, flood, flooding_time
from repro.engine import Engine, ResultStore, ShardSpec, SnapshotReplay, TrialSpec
from repro.markov.chain import MarkovChain
from repro.meg.base import DynamicGraph
from repro.meg.edge_meg import EdgeMEG, GeneralEdgeMEG
from repro.meg.node_meg import NodeMEG
from repro.mobility.random_path import RandomPathModel
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypoint

# Single source of truth is the installed package metadata (pyproject.toml);
# the literal fallback covers source checkouts driven via PYTHONPATH=src,
# where no distribution is installed.
try:
    from importlib.metadata import PackageNotFoundError, version as _distribution_version

    __version__ = _distribution_version("repro-dynamic-graphs")
except PackageNotFoundError:  # pragma: no cover - depends on install mode
    __version__ = "1.9.0"

__all__ = [
    "DynamicGraph",
    "EdgeMEG",
    "Engine",
    "FloodingResult",
    "GeneralEdgeMEG",
    "MarkovChain",
    "NodeMEG",
    "RandomPathModel",
    "RandomWalkMobility",
    "RandomWaypoint",
    "ResultStore",
    "ShardSpec",
    "SnapshotReplay",
    "TrialSpec",
    "__version__",
    "corollary4_bound",
    "corollary5_bound",
    "corollary6_bound",
    "edge_meg_general_bound",
    "flood",
    "flooding_time",
    "theorem1_bound",
    "theorem3_bound",
    "waypoint_flooding_bound",
]
