"""Small mathematical helpers shared by the bound formulas and experiments.

The paper's Theta-bounds divide by ``log`` terms that vanish at small ``n``,
so the helpers here (safe logarithms, geometric means, ratio fitting) clamp
their domains explicitly rather than propagating ``-inf``/``nan`` into bound
comparisons.  Everything is a pure function of its arguments with no state
and no RNG, so callers may use them inside worker processes freely.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def log2_safe(x: float) -> float:
    """``log2(x)`` that tolerates ``x <= 1`` by clamping to 0.

    The asymptotic bounds in the paper involve ``log n`` factors; for the tiny
    instances used in unit tests the raw logarithm can be zero or negative,
    which would make a bound vacuously zero.  Clamping keeps bound values
    meaningful (and monotone) for all ``n >= 1``.
    """
    if x <= 1.0:
        return 0.0
    return math.log2(x)


def logn_factor(n: int, power: int = 1) -> float:
    """Return ``max(1, log2 n) ** power`` — the polylog factor of the bounds."""
    return max(1.0, log2_safe(n)) ** power


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log(y)`` against ``log(x)``.

    Used by the experiment harness to check scaling exponents, e.g. that the
    flooding time of the sparse random waypoint grows like ``n**0.5`` (up to
    polylog corrections).
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ValueError("xs and ys must be 1-D sequences of equal length")
    if xs.size < 2:
        raise ValueError("need at least two points to fit a slope")
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise ValueError("all values must be positive for a log-log fit")
    lx, ly = np.log(xs), np.log(ys)
    slope, _intercept = np.polyfit(lx, ly, 1)
    return float(slope)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take the geometric mean of an empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def harmonic_number(n: int) -> float:
    """The ``n``-th harmonic number ``H_n = 1 + 1/2 + ... + 1/n``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return float(sum(1.0 / k for k in range(1, n + 1)))


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance ``0.5 * sum |p_i - q_i|`` between distributions."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same shape")
    return float(0.5 * np.abs(p - q).sum())


def euclidean_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two points given as coordinate sequences."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("points must have the same dimension")
    return float(np.linalg.norm(a - b))


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``."""
    if low > high:
        raise ValueError(f"empty interval [{low}, {high}]")
    return max(low, min(high, value))
