"""Random-number-generator helpers.

All stochastic components of the library accept either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  The
helpers here normalise those inputs so that every simulation is reproducible
when the caller passes a seed, while remaining convenient for interactive use.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

RNGLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RNGLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed-like input.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged).

    Examples
    --------
    >>> g1 = ensure_rng(7)
    >>> g2 = ensure_rng(7)
    >>> bool(g1.integers(1000) == g2.integers(1000))
    True
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(
        f"expected None, int, SeedSequence or numpy Generator, got {type(rng).__name__}"
    )


def spawn_seed_sequences(rng: RNGLike, count: int) -> list[np.random.SeedSequence]:
    """Derive ``count`` independent :class:`~numpy.random.SeedSequence` children.

    Every path goes through ``SeedSequence.spawn`` (never through raw integer
    seeds drawn from a generator, which risks birthday collisions across large
    fan-outs).  For a ``Generator`` input the children come from the
    generator's own ``bit_generator.seed_seq``, so repeated calls keep
    producing fresh, non-overlapping streams; bit generators without an
    attached seed sequence fall back to a ``SeedSequence`` built from entropy
    drawn from the generator.

    A plain ``SeedSequence`` input is *not* mutated: the children are spawned
    from a copy carrying the input's entropy, spawn key and spawn counter, so
    repeated calls return the same children.  This is what makes computing a
    :class:`~repro.engine.TrialSpec`'s store key idempotent — the engine and
    the experiments pipeline may each derive the per-trial seeds of one spec
    without stepping on each other.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(rng, np.random.Generator):
        seq = getattr(rng.bit_generator, "seed_seq", None)
        if not isinstance(seq, np.random.SeedSequence):
            entropy = [int(word) for word in rng.integers(0, 2**63 - 1, size=4)]
            seq = np.random.SeedSequence(entropy)
        return list(seq.spawn(count))
    if isinstance(rng, np.random.SeedSequence):
        frozen = np.random.SeedSequence(
            entropy=rng.entropy,
            spawn_key=tuple(rng.spawn_key),
            pool_size=rng.pool_size,
            n_children_spawned=rng.n_children_spawned,
        )
        return list(frozen.spawn(count))
    if rng is None or isinstance(rng, (int, np.integer)):
        seed = None if rng is None else int(rng)
        return list(np.random.SeedSequence(seed).spawn(count))
    raise TypeError(
        f"expected None, int, SeedSequence or numpy Generator, got {type(rng).__name__}"
    )


def spawn_rngs(rng: RNGLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one source.

    Independent streams are needed when several stochastic components (for
    example the per-node Markov chains of a node-MEG) must evolve without
    sharing a generator, yet the whole simulation has to stay reproducible
    from a single seed.
    """
    return [np.random.default_rng(child) for child in spawn_seed_sequences(rng, count)]


def random_subset(
    rng: np.random.Generator, items: Sequence, probability: float
) -> list:
    """Return an independent Bernoulli(``probability``) subsample of ``items``."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must lie in [0, 1], got {probability}")
    if probability == 0.0 or len(items) == 0:
        return []
    if probability == 1.0:
        return list(items)
    mask = rng.random(len(items)) < probability
    return [item for item, keep in zip(items, mask) if keep]


def sample_categorical(
    rng: np.random.Generator, weights: Iterable[float], size: Optional[int] = None
):
    """Sample indices proportionally to ``weights`` (need not be normalised)."""
    w = np.asarray(list(weights), dtype=float)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must not all be zero")
    return rng.choice(w.size, size=size, p=w / total)
