"""Lightweight statistics over repeated simulation trials.

The experiments measure flooding times over many independent trials; these
helpers summarise those samples (mean, quantiles, confidence intervals) and
provide the "with high probability" style quantile estimates used when
comparing to the paper's w.h.p. bounds.  Everything here operates on fully
materialized sample sequences; the streaming/mergeable analogues — sketches
batch records can embed and the sequential stopping rules built on them —
live in :mod:`repro.stats.sequential`, which derives its z-values from the
same normal quantile as :func:`mean_confidence_interval` so both paths
report identical intervals for identical samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class TrialSummary:
    """Summary statistics of a sample of repeated measurements."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    q90: float
    q99: float

    def as_dict(self) -> dict:
        """Return the summary as a plain dictionary (for table rendering)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
            "q90": self.q90,
            "q99": self.q99,
        }


def summarize(samples: Sequence[float]) -> TrialSummary:
    """Compute a :class:`TrialSummary` of ``samples``."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return TrialSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
        q90=float(np.quantile(arr, 0.90)),
        q99=float(np.quantile(arr, 0.99)),
    )


def whp_quantile(samples: Sequence[float], n: int) -> float:
    """Empirical analogue of a "with high probability" value.

    The paper's bounds hold with probability at least ``1 - 1/n``.  For a
    finite sample we report the ``1 - 1/n`` quantile (clamped to the largest
    observation when the sample is small).
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot compute a quantile of an empty sample")
    if n < 2:
        return float(arr.max())
    level = min(1.0 - 1.0 / n, 1.0)
    return float(np.quantile(arr, level))


def z_score(confidence: float) -> float:
    """The two-sided normal critical value at ``confidence``."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    from scipy import stats as scipy_stats

    return float(scipy_stats.norm.ppf(0.5 + confidence / 2.0))


def halfwidth(std: float, count: int, confidence: float = 0.95) -> float:
    """Normal-approximation CI half-width for a sample of ``count`` values."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if count == 1:
        return 0.0
    return z_score(confidence) * std / float(np.sqrt(count))


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> tuple[float, float, float]:
    """Return ``(mean, low, high)`` — a normal-approximation confidence interval."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot compute a confidence interval of an empty sample")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, mean, mean
    sem = float(arr.std(ddof=1) / np.sqrt(arr.size))
    z = z_score(confidence)
    return mean, mean - z * sem, mean + z * sem


def empirical_ccdf(samples: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(values, P(X >= value))`` — the empirical survival function."""
    arr = np.sort(np.asarray(list(samples), dtype=float))
    if arr.size == 0:
        raise ValueError("cannot compute a CCDF of an empty sample")
    values = np.unique(arr)
    ccdf = np.array([(arr >= v).mean() for v in values])
    return values, ccdf
