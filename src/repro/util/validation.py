"""Argument-validation helpers used across the library.

The public API raises early, descriptive errors instead of letting NumPy or
networkx fail deep inside a simulation loop.
"""

from __future__ import annotations

from typing import Any, Optional


def require_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Raise ``ValueError`` unless ``value`` is positive (or non-negative)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_probability(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is a probability in ``[0, 1]``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def require_in_range(
    value: float,
    name: str,
    *,
    low: Optional[float] = None,
    high: Optional[float] = None,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Raise ``ValueError`` unless ``value`` lies inside the given interval."""
    if low is not None:
        if low_inclusive and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value!r}")
        if not low_inclusive and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value!r}")
    if high is not None:
        if high_inclusive and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value!r}")
        if not high_inclusive and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value!r}")
    return value


def require_type(value: Any, name: str, *types: type) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of one of ``types``."""
    if not isinstance(value, types):
        expected = ", ".join(t.__name__ for t in types)
        raise TypeError(f"{name} must be of type {expected}, got {type(value).__name__}")
    return value


def require_node_count(n: int) -> int:
    """Validate a node count ``n`` (an integer of at least 1)."""
    if not isinstance(n, (int,)) or isinstance(n, bool):
        raise TypeError(f"number of nodes must be an int, got {type(n).__name__}")
    if n < 1:
        raise ValueError(f"number of nodes must be >= 1, got {n}")
    return n
