"""Shared utilities: random-number handling, validation, math and statistics.

These helpers are deliberately dependency-light so every other sub-package can
use them without import cycles.
"""

from repro.util.rng import ensure_rng, spawn_rngs, spawn_seed_sequences
from repro.util.validation import (
    require_in_range,
    require_positive,
    require_probability,
    require_type,
)

__all__ = [
    "ensure_rng",
    "require_in_range",
    "require_positive",
    "require_probability",
    "require_type",
    "spawn_rngs",
    "spawn_seed_sequences",
]
