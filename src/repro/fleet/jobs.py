"""Fleet job descriptors: serializable shards of sweep/experiment workloads.

A fleet job is one shard of a workload, described entirely by JSON-able
values — workload kind, family or experiment id, the workload's parameters
and integer seed, shard coordinates ``i/K``, an engine configuration and a
spool-relative result-store path.  Any worker that reads the descriptor
reconstructs exactly the :class:`~repro.engine.TrialSpec` batch (and
therefore exactly the per-trial ``SeedSequence`` children and store keys)
the equivalent local run would use:

* sweep jobs go through :func:`repro.experiments.runner.sweep_trial_specs`
  — the same constructor the ``repro sweep`` CLI path uses — and execute
  shard ``i/K`` of every sweep point via :meth:`Engine.run_shard
  <repro.engine.engine.Engine.run_shard>`;
* experiment jobs go through :func:`repro.experiments.pipeline
  .compile_experiment` / :func:`~repro.experiments.pipeline.execute_plan`
  with ``shard=(i, K)``, persisting full batch records.

Job ids are deterministic: a short digest of the workload token plus the
shard coordinates.  Re-enqueueing the same workload into the same spool is
therefore detected (and rejected) by the spool instead of silently doubling
the work, and per-job store directories (``stores/<id>/``) never collide.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Sequence

from repro.engine import Engine, ResultStore, ShardSpec, batch_store_key
from repro.engine.store import jsonify
from repro.experiments.pipeline import compile_experiment, execute_plan, plan_store_keys
from repro.experiments.runner import sweep_trial_specs
from repro.fleet.queue import JobSpool
from repro.sweeps import resolve_family
from repro.telemetry import core as telemetry

JOB_KINDS = ("sweep", "experiment")


def _engine_config(engine: Optional[dict]) -> dict:
    """Normalised engine configuration carried in a job descriptor."""
    config = dict(engine or {})
    unknown = set(config) - {"workers", "backend", "executor", "source_chunk"}
    if unknown:
        raise ValueError(f"unknown engine config keys: {sorted(unknown)}")
    return config


def engine_from_config(config: Optional[dict], store: ResultStore) -> Engine:
    """The :class:`Engine` a worker builds from a descriptor's config."""
    config = dict(config or {})
    return Engine(
        workers=int(config.get("workers", 1)),
        backend=config.get("backend", "auto"),
        executor=config.get("executor", "process"),
        source_chunk=config.get("source_chunk"),
        store=store,
    )


def _workload_digest(token: dict) -> str:
    """Short stable digest identifying a workload (same idiom as store keys)."""
    canonical = json.dumps(jsonify(token), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:10]


def _shard_payloads(kind: str, token: dict, shards: int, engine: Optional[dict]) -> list[dict]:
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    digest = _workload_digest(token)
    payloads = []
    for index in range(shards):
        job_id = f"{kind}-{digest}-{index:03d}of{shards:03d}"
        payloads.append(
            {
                "id": job_id,
                "kind": kind,
                **token,
                "shard": [index, shards],
                "engine": _engine_config(engine),
                "store": f"stores/{job_id}",
            }
        )
    return payloads


def sweep_job_payloads(
    family: str,
    nodes: Sequence[int],
    trials: int,
    seed: int,
    shards: int,
    sources: Optional[str] = None,
    num_sources: Optional[int] = None,
    factory_kwargs: Optional[dict] = None,
    engine: Optional[dict] = None,
) -> list[dict]:
    """The ``K`` job descriptors of a sweep workload sharded ``K`` ways."""
    resolve_family(family)  # fail on a typo at compile time, not on a worker
    if sources is not None and sources != "all":
        raise ValueError(f"sweep job sources must be 'all' or None, got {sources!r}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if shards > trials:
        raise ValueError(
            f"shards ({shards}) exceeds trials ({trials}): some shards would be empty"
        )
    token = {
        "family": family,
        "nodes": [int(n) for n in nodes],
        "trials": int(trials),
        "seed": int(seed),
        "sources": sources,
        "num_sources": None if num_sources is None else int(num_sources),
        "factory_kwargs": dict(factory_kwargs or {}),
    }
    return _shard_payloads("sweep", token, shards, engine)


def experiment_job_payloads(
    experiment_id: str,
    scale: str,
    seed: int,
    shards: int,
    engine: Optional[dict] = None,
) -> list[dict]:
    """The ``K`` job descriptors of an experiment workload sharded ``K`` ways."""
    compile_experiment(experiment_id, scale=scale, seed=seed)  # validate early
    token = {"experiment_id": experiment_id, "scale": scale, "seed": int(seed)}
    return _shard_payloads("experiment", token, shards, engine)


def _sweep_specs(payload: dict):
    """The sweep's full (unsharded) spec batch, rebuilt from a descriptor."""
    return sweep_trial_specs(
        resolve_family(payload["family"]),
        payload["nodes"],
        payload["trials"],
        sources=payload.get("sources"),
        num_sources=payload.get("num_sources"),
        rng=payload["seed"],
        factory_kwargs=payload.get("factory_kwargs") or None,
    )


def expected_store_keys(payload: dict) -> list[str]:
    """The parent-batch store keys a workload's fan-in merge must produce.

    The coordinator checks these against the merged store after fan-in: all
    present means every shard group assembled; a missing key names exactly
    which workload slice never completed.
    """
    if payload["kind"] == "sweep":
        return [batch_store_key(spec) for spec in _sweep_specs(payload)]
    if payload["kind"] == "experiment":
        plan = compile_experiment(
            payload["experiment_id"], scale=payload["scale"], seed=payload["seed"]
        )
        return plan_store_keys(plan)
    raise ValueError(f"unknown job kind {payload['kind']!r}")


def execute_job(payload: dict, spool: JobSpool) -> dict:
    """Run one claimed job into its own result store; returns outcome stats.

    This is the worker's execution hook.  Everything routes through the
    existing shard paths — :meth:`Engine.run_shard
    <repro.engine.engine.Engine.run_shard>` for sweeps,
    :func:`~repro.experiments.pipeline.execute_plan` with ``shard=(i, K)``
    for experiments — so a fleet-executed shard's store records are
    byte-identical to the records the CLI's ``--shard i/K`` path writes.
    """
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise ValueError(f"job kind must be one of {JOB_KINDS}, got {kind!r}")
    with telemetry.span("job.execute", job=payload.get("id"), kind=kind):
        store = ResultStore(spool.resolve(payload["store"]))
        store.touch()
        engine = engine_from_config(payload.get("engine"), store=store)
        index, count = (int(payload["shard"][0]), int(payload["shard"][1]))

        if kind == "sweep":
            trials = cached = 0
            for spec in _sweep_specs(payload):
                batch = engine.run_shard(ShardSpec(spec, index, count))
                trials += batch.num_trials
                cached += 1 if batch.from_cache else 0
            return {"points": len(payload["nodes"]), "trials": trials, "cached": cached}

        plan = compile_experiment(
            payload["experiment_id"], scale=payload["scale"], seed=payload["seed"]
        )
        run = execute_plan(plan, engine=engine, shard=(index, count))
        return {
            "jobs": len(run.batches),
            "trials": sum(batch.num_trials for batch in run.batches.values()),
            "cached": run.num_cached,
        }
