"""Fleet job descriptors: serializable shards of compiled work requests.

A fleet job is one shard of a workload.  Since the :mod:`repro.api`
redesign, the workload itself travels as an embedded, schema-versioned
:class:`~repro.api.WorkRequest` payload — the same JSON the ``repro
serve`` boundary accepts — and every executor recompiles it through
:func:`repro.api.compile_request`, the single spec-construction seam.  Any
worker that reads a descriptor therefore reconstructs exactly the
:class:`~repro.engine.TrialSpec` batch (and exactly the per-trial
``SeedSequence`` children and store keys) the equivalent local run would
use:

* ``shard_mode == "trials"`` (sweeps, floods): shard ``i/K`` runs trials
  ``i, i+K, ...`` of *every* compiled job via :meth:`Engine.run_shard
  <repro.engine.engine.Engine.run_shard>`;
* ``shard_mode == "jobs"`` (experiments): shard ``i/K`` runs whole jobs
  ``i, i+K, ...`` of the plan, persisting full batch records.

Job ids are deterministic — a priority prefix, the workload kind, a short
digest of the canonical request and the shard coordinates — so
re-enqueueing the same workload into the same spool is detected (and
rejected) by the spool instead of silently doubling the work, per-job
store directories (``stores/<id>/``) never collide, and the spool's
sorted-id claim order doubles as a priority queue: ``p0-…`` (interactive)
jobs are always claimed before ``p1-…`` (normal) before ``p2-…`` (batch).

Legacy descriptors (flat top-level ``family``/``nodes``/… fields, written
by pre-API spools) still execute: :func:`request_from_payload` lifts them
into a :class:`~repro.api.WorkRequest` on the fly.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Sequence

from repro.api import (
    InvalidParameterError,
    WorkRequest,
    compile_request,
    experiment_request,
    sweep_request,
)
from repro.engine import (
    Engine,
    ResultStore,
    ShardSpec,
    batch_store_key,
    shard_store_key,
)
from repro.engine.store import jsonify
from repro.fleet.queue import JobSpool
from repro.telemetry import core as telemetry
from repro.telemetry import trace as tracectx

JOB_KINDS = ("sweep", "experiment", "flood")

#: Claim-priority classes, best first.  The prefix orders the spool's
#: sorted-id claim scan, so priorities need no queue machinery at all.
PRIORITIES = ("interactive", "normal", "batch")
DEFAULT_PRIORITY = "normal"
_PRIORITY_PREFIX = {"interactive": "p0", "normal": "p1", "batch": "p2"}


def _engine_config(engine: Optional[dict]) -> dict:
    """Normalised engine configuration carried in a job descriptor."""
    config = dict(engine or {})
    unknown = set(config) - {"workers", "backend", "executor", "source_chunk", "sketch"}
    if unknown:
        raise ValueError(f"unknown engine config keys: {sorted(unknown)}")
    return config


def engine_from_config(config: Optional[dict], store: ResultStore) -> Engine:
    """The :class:`Engine` a worker builds from a descriptor's config."""
    config = dict(config or {})
    return Engine(
        workers=int(config.get("workers", 1)),
        backend=config.get("backend", "auto"),
        executor=config.get("executor", "process"),
        source_chunk=config.get("source_chunk"),
        sketch=bool(config.get("sketch", False)),
        store=store,
    )


def _workload_digest(token: dict) -> str:
    """Short stable digest identifying a workload (same idiom as store keys)."""
    canonical = json.dumps(jsonify(token), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:10]


def request_from_payload(payload: dict) -> WorkRequest:
    """The work request a job descriptor carries (legacy flat form included)."""
    if "request" in payload:
        return WorkRequest.from_dict(payload["request"])
    kind = payload.get("kind")
    if kind == "sweep":
        return sweep_request(
            family=payload.get("family"),
            nodes=payload.get("nodes") or (),
            trials=payload.get("trials", 0),
            seed=payload.get("seed", 0),
            sources=payload.get("sources"),
            num_sources=payload.get("num_sources"),
            params=payload.get("factory_kwargs"),
        )
    if kind == "experiment":
        return experiment_request(
            payload.get("experiment_id"),
            scale=payload.get("scale", "small"),
            seed=payload.get("seed", 0),
        )
    raise ValueError(f"job kind must be one of {JOB_KINDS}, got {kind!r}")


def request_job_payloads(
    request: WorkRequest,
    shards: int,
    engine: Optional[dict] = None,
    priority: str = DEFAULT_PRIORITY,
    trace: Optional[dict] = None,
) -> list[dict]:
    """The ``K`` job descriptors of a compiled request sharded ``K`` ways.

    ``trace`` is an optional propagation carrier (``{"id", "parent"}``,
    see :func:`repro.telemetry.core.trace_carrier`) stamped onto each
    descriptor.  It is execution metadata only: job ids digest just the
    request, so traced and untraced enqueues of the same workload collide
    on the same deterministic ids.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if priority not in PRIORITIES:
        raise ValueError(f"priority must be one of {PRIORITIES}, got {priority!r}")
    plan = compile_request(request)  # validates before anything is spooled
    if request.stopping is not None and shards > 1:
        raise InvalidParameterError(
            "a stopping-rule request cannot be trial-sharded (the stopping "
            "decision at trial t needs all earlier samples); submit it with "
            "shards=1, or derive fixed per-point budgets from a pilot round "
            "(plan_variance_budgets / fleet run --target-ci)"
        )
    min_trials = (
        min(request.trials) if isinstance(request.trials, tuple) else request.trials
    )
    if plan.shard_mode == "trials" and shards > min_trials:
        raise ValueError(
            f"shards ({shards}) exceeds trials ({min_trials}): "
            f"some shards would be empty"
        )
    digest = _workload_digest(request.as_dict())
    prefix = _PRIORITY_PREFIX[priority]
    payloads = []
    for index in range(shards):
        job_id = f"{prefix}-{request.kind}-{digest}-{index:03d}of{shards:03d}"
        payload = {
            "id": job_id,
            "kind": request.kind,
            "priority": priority,
            "request": request.as_dict(),
            "shard": [index, shards],
            "engine": _engine_config(engine),
            "store": f"stores/{job_id}",
        }
        if trace:
            payload["trace"] = dict(trace) if isinstance(trace, dict) else {"id": str(trace)}
        payloads.append(payload)
    return payloads


def sweep_job_payloads(
    family: str,
    nodes: Sequence[int],
    trials: int,
    seed: int,
    shards: int,
    sources: Optional[str] = None,
    num_sources: Optional[int] = None,
    factory_kwargs: Optional[dict] = None,
    engine: Optional[dict] = None,
    priority: str = DEFAULT_PRIORITY,
) -> list[dict]:
    """The ``K`` job descriptors of a sweep workload sharded ``K`` ways."""
    request = sweep_request(
        family=family,
        nodes=nodes,
        trials=trials,
        seed=seed,
        sources=sources,
        num_sources=num_sources,
        params=factory_kwargs,
    )
    return request_job_payloads(request, shards, engine=engine, priority=priority)


def experiment_job_payloads(
    experiment_id: str,
    scale: str,
    seed: int,
    shards: int,
    engine: Optional[dict] = None,
    priority: str = DEFAULT_PRIORITY,
) -> list[dict]:
    """The ``K`` job descriptors of an experiment workload sharded ``K`` ways."""
    request = experiment_request(experiment_id, scale=scale, seed=seed)
    return request_job_payloads(request, shards, engine=engine, priority=priority)


def expected_store_keys(payload: dict) -> list[str]:
    """The parent-batch store keys a workload's fan-in merge must produce.

    The coordinator checks these against the merged store after fan-in: all
    present means every shard group assembled; a missing key names exactly
    which workload slice never completed.
    """
    return compile_request(request_from_payload(payload)).store_keys


def job_expected_keys(payload: dict) -> list[str]:
    """The store keys *this one shard job's own store* holds when complete.

    Unlike :func:`expected_store_keys` (the post-merge parent keys), these
    are the per-shard record keys — what ``fleet run --resume`` verifies
    before trusting a ``done/`` job from an earlier, interrupted run.
    """
    plan = compile_request(request_from_payload(payload))
    index, count = (int(payload["shard"][0]), int(payload["shard"][1]))
    if plan.shard_mode == "trials":
        # A stopping-rule job only ever ships as the trivial 1-way shard,
        # and the engine's run_shard delegation stores it under the parent
        # batch key directly (no shard wrapper to reassemble).
        if plan.request.stopping is not None:
            return [job.store_key() for job in plan.jobs]
        return [
            shard_store_key(batch_store_key(job.spec), index, count)
            for job in plan.jobs
        ]
    return [job.store_key() for job in plan.jobs[index::count]]


def execute_job(payload: dict, spool: JobSpool) -> dict:
    """Run one claimed job into its own result store; returns outcome stats.

    This is the worker's execution hook.  The descriptor's request compiles
    through :func:`repro.api.compile_request` and everything routes through
    the engine's existing shard paths — :meth:`Engine.run_shard
    <repro.engine.engine.Engine.run_shard>` for trial-sharded workloads,
    :meth:`Engine.run <repro.engine.engine.Engine.run>` over the job stride
    for job-sharded ones — so a fleet-executed shard's store records are
    byte-identical to the records the CLI's ``--shard i/K`` path writes.
    """
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise ValueError(f"job kind must be one of {JOB_KINDS}, got {kind!r}")
    # Adopt the descriptor's trace carrier (a no-op scope when untraced or
    # when the worker loop already attached it around the lease).
    # The field is named ``workload`` (not ``kind``): span fields merge into
    # the record, and a ``kind`` field would clobber the ``"kind": "span"``
    # discriminator every telemetry reader filters on.
    with tracectx.attach_carrier(payload.get("trace")), telemetry.span(
        "job.execute", job=payload.get("id"), workload=kind
    ):
        plan = compile_request(request_from_payload(payload))
        store = ResultStore(spool.resolve(payload["store"]))
        store.touch()
        engine = engine_from_config(payload.get("engine"), store=store)
        index, count = (int(payload["shard"][0]), int(payload["shard"][1]))

        executed = trials = cached = 0
        if plan.shard_mode == "trials":
            batches = (
                engine.run_shard(ShardSpec(job.spec, index, count))
                for job in plan.jobs
            )
        else:
            batches = (engine.run(job.spec) for job in plan.jobs[index::count])
        for batch in batches:
            executed += 1
            trials += batch.num_trials
            cached += 1 if batch.from_cache else 0
        return {"jobs": executed, "trials": trials, "cached": cached}
