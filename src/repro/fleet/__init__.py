"""Fleet execution: a crash-safe work queue that drives shard fleets.

The last mile of the sharding story.  PR 3/4 made every sweep and
experiment splittable into byte-identical shards; this package schedules
those shards onto a fleet of workers automatically:

``repro.fleet.queue``
    :class:`JobSpool` — a directory-backed work queue with atomic
    claim-by-rename leases, heartbeat timestamps, lease-expiry requeue and
    a bounded retry budget.
``repro.fleet.jobs``
    JSON job descriptors (one shard of a sweep/experiment workload) and the
    worker-side execution hook that routes them through the engine's
    existing shard paths.
``repro.fleet.worker``
    The ``repro worker --spool DIR`` daemon loop: lease, execute,
    heartbeat, mark done/failed — and reclaim dead peers' leases while
    idle.
``repro.fleet.coordinator``
    ``repro fleet run``: compile a workload into shard jobs, spawn local
    workers (or monitor an external fleet), requeue expired leases, then
    fan in — merged stores and assembled reports byte-identical to a
    one-shot run.
``repro.fleet.status``
    ``repro fleet status``: progress and failure inspection of a spool.
``repro.fleet.top``
    ``repro fleet top``: a live refreshing dashboard over the same data —
    queue depths, per-worker utilization, throughput, drain ETA, slowest
    in-flight jobs.
"""

from repro.fleet.coordinator import (
    FleetError,
    FleetOutcome,
    assemble_experiment_report,
    merge_fleet_stores,
    plan_variance_budgets,
    run_fleet,
    spawn_local_worker,
    sweep_results_from_store,
)
from repro.fleet.jobs import (
    DEFAULT_PRIORITY,
    JOB_KINDS,
    PRIORITIES,
    engine_from_config,
    execute_job,
    expected_store_keys,
    experiment_job_payloads,
    job_expected_keys,
    request_from_payload,
    request_job_payloads,
    sweep_job_payloads,
)
from repro.fleet.queue import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    Job,
    JobSpool,
)
from repro.fleet.status import (
    SpoolMetrics,
    SpoolStatus,
    format_status,
    spool_metrics,
    spool_snapshot,
    spool_status,
    status_as_dict,
)
from repro.fleet.top import gather_frame, render_frame, run_top
from repro.fleet.worker import default_worker_id, run_worker

__all__ = [
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_PRIORITY",
    "FleetError",
    "FleetOutcome",
    "JOB_KINDS",
    "Job",
    "JobSpool",
    "PRIORITIES",
    "SpoolMetrics",
    "SpoolStatus",
    "assemble_experiment_report",
    "default_worker_id",
    "engine_from_config",
    "execute_job",
    "expected_store_keys",
    "experiment_job_payloads",
    "format_status",
    "gather_frame",
    "job_expected_keys",
    "merge_fleet_stores",
    "plan_variance_budgets",
    "render_frame",
    "request_from_payload",
    "request_job_payloads",
    "run_fleet",
    "run_top",
    "run_worker",
    "spawn_local_worker",
    "spool_metrics",
    "spool_snapshot",
    "spool_status",
    "status_as_dict",
    "sweep_job_payloads",
    "sweep_results_from_store",
]
