"""The fleet coordinator: compile a workload, drive the spool, fan in.

``repro fleet run sweep|experiment`` is this module: it compiles a sweep or
experiment workload into ``K`` shard-job descriptors
(:mod:`repro.fleet.jobs`), enqueues them into a spool, optionally spawns
``N`` local worker processes (``repro worker --spool … --exit-when-empty``),
monitors the spool — requeueing expired leases and replacing crashed local
workers — and, once every job has reached a terminal state, fans in: the
per-job stores are unioned with :meth:`ResultStore.merge
<repro.engine.store.ResultStore.merge>` (which reassembles the shard groups
into full batch records), the merged store is checked for completeness
against the workload's expected keys, and the sweep summary or experiment
report is rebuilt purely from store records.

Because every execution path below the coordinator is the engine's existing
shard machinery, a fleet run's merged store — and the report assembled from
it — is byte-identical to a one-shot unsharded run of the same workload,
whatever the worker count, machine count, crash history or lease-expiry
requeues along the way.

With ``local_workers=0`` the coordinator drives an *external* fleet: start
``repro worker --spool DIR`` on any number of machines sharing the spool
directory, and the coordinator only enqueues, monitors and merges.

Variance-aware sizing (:func:`plan_variance_budgets`) runs a small pilot
round per sweep point, estimates each point's sample variance, and derives
a *fixed-count* request whose per-point trial budgets hit a target CI
half-width — spending fleet hours where the estimator is noisiest while
keeping every downstream path (sharding, merging, byte-identity) exactly
the machinery above.
"""

from __future__ import annotations

import math
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.api import WorkRequest, compile_request, experiment_plan
from repro.engine import Engine, MergeReport, ResultStore
from repro.util.stats import z_score
from repro.experiments.pipeline import assemble_from_store
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import SweepMeasurement, measurement_from_record
from repro.fleet.jobs import (
    expected_store_keys,
    job_expected_keys,
    request_from_payload,
)
from repro.fleet.queue import JobSpool
from repro.telemetry import core as telemetry
from repro.telemetry import trace as tracectx
from repro.telemetry.log import get_logger

_logger = get_logger("fleet")


class FleetError(RuntimeError):
    """A fleet run could not produce a complete, verified result."""


@dataclass(frozen=True)
class FleetOutcome:
    """Terminal state of one fleet run's execution phase."""

    done: tuple[str, ...]
    failed: tuple[str, ...]
    requeued: tuple[str, ...]
    elapsed_seconds: float
    errors: dict[str, str] = field(default_factory=dict)
    #: Trace id the run executed under (``repro telemetry trace <id>``).
    trace: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether every job completed successfully."""
        return not self.failed


def spawn_local_worker(
    spool_dir: str,
    poll: float = 0.2,
    telemetry_dir: Optional[str] = None,
    profile: bool = False,
    log_level: Optional[str] = None,
) -> subprocess.Popen:
    """Start one drain-mode worker process against ``spool_dir``.

    The worker runs ``repro worker --spool … --exit-when-empty`` through the
    same interpreter.  The directory this very package was imported from is
    prepended to the child's ``PYTHONPATH``, so source checkouts (where
    ``repro`` is on ``sys.path`` but not installed) spawn working workers
    exactly like installed packages do.

    The coordinator's observability settings propagate: a ``telemetry_dir``
    becomes the child's ``--telemetry`` (each worker writes its own
    per-process event file there), ``profile`` its ``--profile``, and
    ``log_level`` its ``--log-level``.
    """
    command = [
        sys.executable,
        "-m",
        "repro",
        "worker",
        "--spool",
        str(spool_dir),
        "--exit-when-empty",
        "--poll",
        str(poll),
    ]
    if telemetry_dir is not None:
        command.extend(["--telemetry", str(telemetry_dir)])
    if profile:
        command.append("--profile")
    if log_level is not None:
        command.extend(["--log-level", str(log_level)])
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else os.pathsep.join([package_root, existing])
    )
    return subprocess.Popen(command, env=env)


def _job_store_complete(spool: JobSpool, payload: dict) -> bool:
    """Whether a done job's own store really holds every record it owes."""
    store_dir = spool.resolve(payload["store"])
    if not os.path.isdir(store_dir):
        return False
    store = ResultStore(store_dir)
    return all(key in store for key in job_expected_keys(payload))


def _enqueue_payloads(
    spool: JobSpool, payloads: Sequence[dict], resume: bool, log
) -> None:
    """Enqueue a workload, reusing a partially drained spool when resuming.

    Without ``resume`` the spool must be fresh for this workload — a
    duplicate deterministic id is an error.  With it, each job's current
    state decides: ``done/`` jobs whose stores hold their expected shard
    records are kept as-is (their results merge in at fan-in), pending and
    active jobs are left for the workers already draining them, and failed
    — or done-but-incomplete — jobs are resurrected with a fresh retry
    budget.  Only genuinely missing jobs are enqueued.
    """
    with telemetry.span("fleet.enqueue", jobs=len(payloads), resume=resume):
        # Stamp the run's trace carrier onto every descriptor here, inside
        # the enqueue span, so worker.job spans parent on it cross-process.
        carrier = telemetry.trace_carrier()
        if carrier is not None:
            for payload in payloads:
                payload.setdefault("trace", dict(carrier))
        spool.write_config()
        if not resume:
            for payload in payloads:
                spool.enqueue(payload)
            log(f"fleet: enqueued {len(payloads)} job(s) into {spool.root}")
            return
        enqueued = reused = resurrected = 0
        for payload in payloads:
            state = spool.state_of(payload["id"])
            if state == "done" and _job_store_complete(spool, payload):
                reused += 1
            elif state in ("done", "failed"):
                spool.resurrect(payload["id"], state)
                resurrected += 1
            elif state in ("jobs", "active"):
                reused += 1
            else:
                spool.enqueue(payload)
                enqueued += 1
        log(
            f"fleet: resumed {spool.root} — {reused} job(s) reused, "
            f"{resurrected} resurrected, {enqueued} enqueued"
        )


def run_fleet(
    spool: JobSpool,
    payloads: Sequence[dict],
    local_workers: int = 0,
    poll: float = 0.2,
    max_wait: Optional[float] = None,
    log=None,
    telemetry_dir: Optional[str] = None,
    profile: bool = False,
    log_level: Optional[str] = None,
    resume: bool = False,
    trace: Optional[str] = None,
) -> FleetOutcome:
    """Enqueue ``payloads``, drive the spool until drained, report the outcome.

    Parameters
    ----------
    spool:
        The (configured) job spool; its lease/retry settings are persisted
        so external workers joining later agree on the clock.
    payloads:
        Job descriptors from :mod:`repro.fleet.jobs`.
    local_workers:
        Drain-mode worker processes to spawn locally (0 = external fleet:
        the operator runs ``repro worker`` wherever the spool is mounted).
    poll:
        Monitor sleep between spool scans.
    max_wait:
        Optional wall-clock cap; exceeding it raises :class:`FleetError`
        (the spool is left intact for ``repro fleet status`` forensics).
    log:
        Progress sink; ``None`` uses the ``repro.fleet`` logger at INFO.
    telemetry_dir / profile / log_level:
        Observability settings forwarded to every spawned local worker (see
        :func:`spawn_local_worker`).
    resume:
        Reuse a partially drained spool: completed jobs (with verified
        stores) keep their results, failed or incomplete ones are
        re-enqueued, and only missing jobs are added — instead of rejecting
        the workload's deterministic ids as duplicates.
    trace:
        Optional trace id for the run; ``None`` adopts the thread's already
        attached scope or mints a fresh id.  Every fleet span, stamped job
        descriptor and therefore every worker/engine span downstream
        carries it — ``repro telemetry trace <id>`` reconstructs the run.
    """
    if local_workers < 0:
        raise ValueError(f"local_workers must be >= 0, got {local_workers}")
    if log is None:
        log = _logger.info
    trace_id = trace or tracectx.current_trace_id() or tracectx.mint_trace_id()
    with tracectx.attach_trace(trace_id):
        return _run_fleet_traced(
            spool, payloads, local_workers, poll, max_wait, log,
            telemetry_dir, profile, log_level, resume, trace_id,
        )


def _run_fleet_traced(
    spool: JobSpool,
    payloads: Sequence[dict],
    local_workers: int,
    poll: float,
    max_wait: Optional[float],
    log,
    telemetry_dir: Optional[str],
    profile: bool,
    log_level: Optional[str],
    resume: bool,
    trace_id: str,
) -> FleetOutcome:
    def _spawn() -> subprocess.Popen:
        return spawn_local_worker(
            spool.root,
            poll=poll,
            telemetry_dir=telemetry_dir,
            profile=profile,
            log_level=log_level,
        )

    _enqueue_payloads(spool, payloads, resume, log)

    started = time.perf_counter()
    requeued: list[str] = []
    workers: list[subprocess.Popen] = []
    # Crashed local workers are replaced (a drain-mode worker only exits
    # voluntarily once the spool is drained); the overall retry budget bounds
    # how much work replacements can possibly redo.
    respawn_budget = max(1, len(payloads)) * spool.max_attempts
    try:
        with telemetry.span(
            "fleet.drain", jobs=len(payloads), local_workers=local_workers
        ) as drain_span:
            workers = [_spawn() for _ in range(local_workers)]
            while not spool.is_drained():
                requeued.extend(spool.requeue_expired())
                if local_workers:
                    alive = [proc for proc in workers if proc.poll() is None]
                    if not alive and not spool.is_drained():
                        if respawn_budget <= 0:
                            raise FleetError(
                                f"all local workers exited with jobs outstanding in "
                                f"{spool.root} and the respawn budget is exhausted"
                            )
                        respawn_budget -= 1
                        log("fleet: all local workers exited early; spawning a replacement")
                        workers.append(_spawn())
                if max_wait is not None and time.perf_counter() - started > max_wait:
                    raise FleetError(
                        f"fleet run exceeded max_wait={max_wait}s with "
                        f"{spool.counts()} — inspect with: repro fleet status {spool.root}"
                    )
                time.sleep(poll)
            drain_span.add(requeued=len(requeued))
    finally:
        for proc in workers:
            if proc.poll() is None:
                proc.terminate()
        for proc in workers:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                proc.kill()

    failed = spool.failed_ids()
    errors = {}
    for job_id in failed:
        descriptor = spool.read_job("failed", job_id)
        errors[job_id] = str(descriptor.get("last_error", "unknown error"))
    return FleetOutcome(
        done=tuple(spool.done_ids()),
        failed=tuple(failed),
        requeued=tuple(requeued),
        elapsed_seconds=time.perf_counter() - started,
        errors=errors,
        trace=trace_id,
    )


def merge_fleet_stores(
    spool: JobSpool, payloads: Sequence[dict], destination: ResultStore
) -> MergeReport:
    """Fan in: union every job's store into ``destination`` and verify it.

    Merging reassembles the shard groups into full batch records; the merged
    store is then checked against the workload's expected parent keys, so an
    incomplete fan-in fails loudly naming the missing slice instead of
    yielding a silently partial store.
    """
    with telemetry.span("fleet.merge", sources=len(payloads)) as merge_span:
        report = destination.merge(*[spool.resolve(p["store"]) for p in payloads])
        missing = [key for key in expected_store_keys(payloads[0]) if key not in destination]
        if missing:
            raise FleetError(
                f"merged store {destination.path} is missing {len(missing)} expected "
                f"batch record(s); first missing key: {missing[0]}"
            )
        merge_span.add(records=report.records, assembled=report.assembled)
        return report


def sweep_results_from_store(payload: dict, store: ResultStore) -> list[SweepMeasurement]:
    """Every sweep point's full sample set, read back from a merged store.

    Returns the same :class:`~repro.experiments.runner.SweepMeasurement`
    objects a live :func:`~repro.experiments.runner.measure_flooding_sweep`
    produces (``from_cache=True``: these samples come from records, not
    execution), so the CLI renders and serialises fleet and non-fleet sweeps
    through one code path.
    """
    plan = compile_request(request_from_payload(payload))
    results = []
    for job in plan.jobs:
        record = store.get(job.store_key())
        if record is None:
            raise FleetError(
                f"store {store.path} holds no record for {job.spec.label} "
                f"(was the fan-in merge run?)"
            )
        results.append(measurement_from_record(job.spec, record))
    return results


def assemble_experiment_report(payload: dict, store: ResultStore) -> ExperimentReport:
    """The experiment report of a fleet workload, purely from store records."""
    request = request_from_payload(payload)
    with telemetry.span("fleet.assemble", experiment=request.experiment_id):
        return assemble_from_store(experiment_plan(request), store)


def plan_variance_budgets(
    request: WorkRequest,
    target_halfwidth: float,
    engine: Optional[Engine] = None,
    pilot_trials: int = 16,
    confidence: float = 0.95,
    min_trials: Optional[int] = None,
) -> tuple[WorkRequest, dict]:
    """Size per-point trial budgets from a pilot round's variance estimates.

    Runs ``pilot_trials`` trials at every point of a sweep ``request``
    (store-less, so destination stores never see pilot records), estimates
    each point's sample variance, and returns a *derived request* whose
    per-point trials list is ``ceil((z * std / target_halfwidth)^2)`` —
    the fixed count at which the normal-approximation CI half-width meets
    the target — clamped to ``[min_trials, budget]`` where ``budget`` is
    the original request's (possibly per-point) trial count.

    Because each point's trial seeds are ``SeedSequence`` children of that
    point's own child sequence (prefix-stable in the trial count), the
    pilot's trials are exactly the first ``pilot_trials`` trials of the
    sized run — the pilot measures the very stream it budgets.  The derived
    request is an ordinary fixed-count request: it shards, merges and
    byte-reproduces through the unchanged fleet machinery, which is how the
    fleet delivers adaptivity without trial-sharding a stopping rule.

    Returns ``(derived_request, pilot_report)``; the report records the
    per-point pilot statistics and budgets for rendering and telemetry.
    """
    if request.kind != "sweep":
        raise ValueError(
            f"variance-aware sizing applies to sweep requests, got {request.kind!r}"
        )
    if request.stopping is not None:
        raise ValueError(
            "variance-aware sizing replaces the stopping rule for fleet runs; "
            "pass a fixed-budget request plus target_halfwidth"
        )
    if not target_halfwidth > 0:
        raise ValueError(f"target_halfwidth must be > 0, got {target_halfwidth}")
    if pilot_trials < 2:
        raise ValueError(f"pilot_trials must be >= 2, got {pilot_trials}")
    floor = pilot_trials if min_trials is None else max(int(min_trials), 2)
    if engine is None:
        engine = Engine()
    if engine.store is not None:
        raise ValueError(
            "the pilot engine must be store-less: pilot records would pollute "
            "the destination store with short-budget batches"
        )
    plan = compile_request(request)
    caps = (
        list(request.trials)
        if isinstance(request.trials, tuple)
        else [request.trials] * len(plan.jobs)
    )
    z = z_score(confidence)
    budgets: list[int] = []
    points: list[dict] = []
    with telemetry.span(
        "fleet.pilot", points=len(plan.jobs), pilot_trials=pilot_trials
    ) as pilot_span:
        for job, cap in zip(plan.jobs, caps):
            pilot_spec = replace(job.spec, num_trials=min(pilot_trials, cap))
            batch = engine.run(pilot_spec)
            samples = batch.flooding_times
            mean = sum(samples) / len(samples)
            variance = (
                sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
                if len(samples) > 1
                else 0.0
            )
            std = math.sqrt(variance)
            required = (
                floor if std == 0.0 else math.ceil((z * std / target_halfwidth) ** 2)
            )
            budget = max(floor, min(required, cap))
            budgets.append(budget)
            points.append(
                {
                    "tag": job.tag,
                    "pilot_trials": len(samples),
                    "pilot_mean": mean,
                    "pilot_std": std,
                    "required_trials": required,
                    "budget": budget,
                    "cap": cap,
                }
            )
            telemetry.count("fleet.pilot.trials", len(samples))
        pilot_span.add(total_budget=sum(budgets))
    derived = replace(request, trials=tuple(budgets))
    report = {
        "target_halfwidth": float(target_halfwidth),
        "confidence": float(confidence),
        "pilot_trials": pilot_trials,
        "points": points,
        "total_budget": sum(budgets),
        "fixed_total": sum(caps),
    }
    return derived, report
