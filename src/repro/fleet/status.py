"""Spool inspection: the data behind ``repro fleet status``.

A read-only scan of the spool's four state directories plus the advisory
lease metadata, rendered as a compact progress/forensics report: how far
the run is, who holds which lease and how stale each heartbeat is, and why
any job failed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.fleet.queue import JobSpool


@dataclass(frozen=True)
class ActiveLease:
    """One leased job as seen by a status scan."""

    job_id: str
    worker: Optional[str]
    attempts: int
    lease_age_seconds: float
    heartbeat_age_seconds: Optional[float]


@dataclass(frozen=True)
class FailedJob:
    """One job that exhausted its retry budget."""

    job_id: str
    attempts: int
    error: str


@dataclass(frozen=True)
class SpoolStatus:
    """Snapshot of a spool's lifecycle state."""

    root: str
    lease_ttl: float
    max_attempts: int
    pending: tuple[str, ...]
    active: tuple[ActiveLease, ...]
    done: tuple[str, ...]
    failed: tuple[FailedJob, ...]

    @property
    def total(self) -> int:
        """Total jobs known to the spool."""
        return len(self.pending) + len(self.active) + len(self.done) + len(self.failed)

    @property
    def drained(self) -> bool:
        """Whether every job has reached a terminal state."""
        return not self.pending and not self.active


def spool_status(spool: JobSpool, now: Optional[float] = None) -> SpoolStatus:
    """Scan ``spool`` into a :class:`SpoolStatus` snapshot."""
    now = time.time() if now is None else now
    active = []
    for job_id in spool.active_ids():
        try:
            descriptor = spool.read_job("active", job_id)
        except FileNotFoundError:
            continue  # completed between listing and reading
        meta = spool.read_meta(job_id) or {}
        claimed_at = meta.get("claimed_at")
        heartbeat_at = meta.get("heartbeat_at")
        active.append(
            ActiveLease(
                job_id=job_id,
                worker=meta.get("worker"),
                attempts=int(descriptor.get("attempts", 0)),
                lease_age_seconds=max(0.0, now - claimed_at) if claimed_at else 0.0,
                heartbeat_age_seconds=(
                    max(0.0, now - heartbeat_at) if heartbeat_at else None
                ),
            )
        )
    failed = []
    for job_id in spool.failed_ids():
        descriptor = spool.read_job("failed", job_id)
        failed.append(
            FailedJob(
                job_id=job_id,
                attempts=int(descriptor.get("attempts", 0)),
                error=str(descriptor.get("last_error", "unknown error")),
            )
        )
    return SpoolStatus(
        root=spool.root,
        lease_ttl=spool.lease_ttl,
        max_attempts=spool.max_attempts,
        pending=tuple(spool.pending_ids()),
        active=tuple(active),
        done=tuple(spool.done_ids()),
        failed=tuple(failed),
    )


def format_status(status: SpoolStatus) -> str:
    """Human-readable rendering of a spool snapshot."""
    lines = [
        f"spool: {status.root}  (lease_ttl={status.lease_ttl:g}s, "
        f"max_attempts={status.max_attempts})",
        f"jobs:  {status.total} total — {len(status.pending)} pending, "
        f"{len(status.active)} active, {len(status.done)} done, "
        f"{len(status.failed)} failed",
    ]
    for lease in status.active:
        heartbeat = (
            f"{lease.heartbeat_age_seconds:.1f}s ago"
            if lease.heartbeat_age_seconds is not None
            else "never"
        )
        lines.append(
            f"  active {lease.job_id}  worker={lease.worker or '?'}  "
            f"leased {lease.lease_age_seconds:.1f}s  heartbeat {heartbeat}  "
            f"attempts={lease.attempts}"
        )
    for job in status.failed:
        lines.append(f"  failed {job.job_id}  attempts={job.attempts}  {job.error}")
    if status.drained and not status.failed and status.total:
        lines.append("all jobs completed")
    return "\n".join(lines)
