"""Spool inspection: the data behind ``repro fleet status``.

A read-only scan of the spool's four state directories plus the advisory
lease metadata, rendered as a compact progress/forensics report: how far
the run is, who holds which lease and how stale each heartbeat is, and why
any job failed — plus throughput metrics (jobs/s from the completion
timestamps, requeue rate from the attempt counters, the heartbeat-age
distribution of live leases), available structured via
``repro fleet status --json``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Optional

from repro.fleet.queue import JobSpool


@dataclass(frozen=True)
class ActiveLease:
    """One leased job as seen by a status scan."""

    job_id: str
    worker: Optional[str]
    attempts: int
    lease_age_seconds: float
    heartbeat_age_seconds: Optional[float]


@dataclass(frozen=True)
class FailedJob:
    """One job that exhausted its retry budget."""

    job_id: str
    attempts: int
    error: str


@dataclass(frozen=True)
class SpoolStatus:
    """Snapshot of a spool's lifecycle state."""

    root: str
    lease_ttl: float
    max_attempts: int
    pending: tuple[str, ...]
    active: tuple[ActiveLease, ...]
    done: tuple[str, ...]
    failed: tuple[FailedJob, ...]

    @property
    def total(self) -> int:
        """Total jobs known to the spool."""
        return len(self.pending) + len(self.active) + len(self.done) + len(self.failed)

    @property
    def drained(self) -> bool:
        """Whether every job has reached a terminal state."""
        return not self.pending and not self.active


@dataclass(frozen=True)
class SpoolMetrics:
    """Throughput metrics of one spool (the ROADMAP's ``jobs/s`` ask).

    Attributes
    ----------
    jobs_per_second:
        Completion throughput over the span of recorded ``completed_at``
        stamps; ``None`` until two jobs have finished at distinct times.
    requeues:
        Executions beyond each job's first attempt, summed over terminal
        jobs (a successful job's ``attempts`` counts its failed tries; a
        failed job burned its whole budget).
    requeue_rate:
        ``requeues`` per terminal job (``None`` with no terminal jobs).
    heartbeat_age_seconds:
        ``{"min", "mean", "max"}`` over live leases' heartbeat ages, or
        ``None`` when nothing is leased (or no lease has a heartbeat yet).
    """

    jobs_per_second: Optional[float]
    requeues: int
    requeue_rate: Optional[float]
    heartbeat_age_seconds: Optional[dict]


def spool_status(spool: JobSpool, now: Optional[float] = None) -> SpoolStatus:
    """Scan ``spool`` into a :class:`SpoolStatus` snapshot."""
    now = time.time() if now is None else now
    active = []
    for job_id in spool.active_ids():
        try:
            descriptor = spool.read_job("active", job_id)
        except FileNotFoundError:
            continue  # completed between listing and reading
        meta = spool.read_meta(job_id) or {}
        claimed_at = meta.get("claimed_at")
        heartbeat_at = meta.get("heartbeat_at")
        active.append(
            ActiveLease(
                job_id=job_id,
                worker=meta.get("worker"),
                attempts=int(descriptor.get("attempts", 0)),
                lease_age_seconds=max(0.0, now - claimed_at) if claimed_at else 0.0,
                heartbeat_age_seconds=(
                    max(0.0, now - heartbeat_at) if heartbeat_at else None
                ),
            )
        )
    failed = []
    for job_id in spool.failed_ids():
        descriptor = spool.read_job("failed", job_id)
        failed.append(
            FailedJob(
                job_id=job_id,
                attempts=int(descriptor.get("attempts", 0)),
                error=str(descriptor.get("last_error", "unknown error")),
            )
        )
    return SpoolStatus(
        root=spool.root,
        lease_ttl=spool.lease_ttl,
        max_attempts=spool.max_attempts,
        pending=tuple(spool.pending_ids()),
        active=tuple(active),
        done=tuple(spool.done_ids()),
        failed=tuple(failed),
    )


def spool_metrics(spool: JobSpool, status: Optional[SpoolStatus] = None) -> SpoolMetrics:
    """Throughput metrics computed from ``spool``'s terminal records and leases."""
    if status is None:
        status = spool_status(spool)

    completed_at = []
    retries = 0
    for job_id in status.done:
        try:
            descriptor = spool.read_job("done", job_id)
        except FileNotFoundError:  # pragma: no cover - racing cleanup
            continue
        stamp = descriptor.get("completed_at")
        if stamp is not None:
            completed_at.append(float(stamp))
        retries += int(descriptor.get("attempts", 0))
    for job in status.failed:
        retries += max(job.attempts - 1, 0)

    jobs_per_second = None
    if len(completed_at) >= 2:
        spread = max(completed_at) - min(completed_at)
        if spread > 0:
            jobs_per_second = (len(completed_at) - 1) / spread

    terminal = len(status.done) + len(status.failed)
    ages = [
        lease.heartbeat_age_seconds
        for lease in status.active
        if lease.heartbeat_age_seconds is not None
    ]
    heartbeat_age = None
    if ages:
        heartbeat_age = {
            "min": min(ages),
            "mean": sum(ages) / len(ages),
            "max": max(ages),
        }
    return SpoolMetrics(
        jobs_per_second=jobs_per_second,
        requeues=retries,
        requeue_rate=retries / terminal if terminal else None,
        heartbeat_age_seconds=heartbeat_age,
    )


def status_as_dict(status: SpoolStatus, metrics: Optional[SpoolMetrics] = None) -> dict:
    """The JSON form behind ``repro fleet status --json``."""
    payload = {
        "root": status.root,
        "lease_ttl": status.lease_ttl,
        "max_attempts": status.max_attempts,
        "drained": status.drained,
        "counts": {
            "total": status.total,
            "pending": len(status.pending),
            "active": len(status.active),
            "done": len(status.done),
            "failed": len(status.failed),
        },
        "pending": list(status.pending),
        "active": [
            {
                "job_id": lease.job_id,
                "worker": lease.worker,
                "attempts": lease.attempts,
                "lease_age_seconds": lease.lease_age_seconds,
                "heartbeat_age_seconds": lease.heartbeat_age_seconds,
            }
            for lease in status.active
        ],
        "done": list(status.done),
        "failed": [
            {"job_id": job.job_id, "attempts": job.attempts, "error": job.error}
            for job in status.failed
        ],
    }
    if metrics is not None:
        payload["metrics"] = {
            "jobs_per_second": metrics.jobs_per_second,
            "requeues": metrics.requeues,
            "requeue_rate": metrics.requeue_rate,
            "heartbeat_age_seconds": metrics.heartbeat_age_seconds,
        }
    # Round-trip through json to fail fast here (not in the CLI) if a field
    # ever stops being JSON-able.
    return json.loads(json.dumps(payload))


def format_status(status: SpoolStatus, metrics: Optional[SpoolMetrics] = None) -> str:
    """Human-readable rendering of a spool snapshot."""
    lines = [
        f"spool: {status.root}  (lease_ttl={status.lease_ttl:g}s, "
        f"max_attempts={status.max_attempts})",
        f"jobs:  {status.total} total — {len(status.pending)} pending, "
        f"{len(status.active)} active, {len(status.done)} done, "
        f"{len(status.failed)} failed",
    ]
    if metrics is not None:
        parts = []
        if metrics.jobs_per_second is not None:
            parts.append(f"{metrics.jobs_per_second:.2f} jobs/s")
        parts.append(f"{metrics.requeues} requeue(s)")
        if metrics.requeue_rate is not None:
            parts.append(f"requeue rate {metrics.requeue_rate:.2f}/job")
        if metrics.heartbeat_age_seconds is not None:
            ages = metrics.heartbeat_age_seconds
            parts.append(
                f"heartbeat age {ages['min']:.1f}/{ages['mean']:.1f}/{ages['max']:.1f}s"
                " (min/mean/max)"
            )
        lines.append("rates: " + ", ".join(parts))
    for lease in status.active:
        heartbeat = (
            f"{lease.heartbeat_age_seconds:.1f}s ago"
            if lease.heartbeat_age_seconds is not None
            else "never"
        )
        lines.append(
            f"  active {lease.job_id}  worker={lease.worker or '?'}  "
            f"leased {lease.lease_age_seconds:.1f}s  heartbeat {heartbeat}  "
            f"attempts={lease.attempts}"
        )
    for job in status.failed:
        lines.append(f"  failed {job.job_id}  attempts={job.attempts}  {job.error}")
    if status.drained and not status.failed and status.total:
        lines.append("all jobs completed")
    return "\n".join(lines)


def spool_snapshot(spool: JobSpool) -> dict:
    """One-call JSON snapshot of a spool: status plus throughput metrics.

    What ``repro fleet status --json`` prints and what the ``repro serve``
    status endpoint embeds — one reading of the spool feeds both numbers,
    so the counts and the rates always describe the same instant.
    """
    status = spool_status(spool)
    return status_as_dict(status, spool_metrics(spool, status))
