"""The fleet worker: a ``repro worker --spool DIR`` daemon loop.

A worker repeatedly leases one job from the spool, executes it through the
engine's shard path (:func:`repro.fleet.jobs.execute_job`) into the job's
own result store, and marks it done — heartbeating the lease from a
background thread the whole time, so the spool can tell a slow job from a
dead worker.  A job that raises is handed back to the spool, which requeues
it while retry budget remains.

Idle workers help with crash recovery: before sleeping they call
:meth:`JobSpool.requeue_expired <repro.fleet.queue.JobSpool.requeue_expired>`,
so a pair of plain workers on a shared spool self-heals after one of them is
killed mid-job — no coordinator required.

``--exit-when-empty`` turns the daemon into a drain: the worker exits once
every job has reached a terminal state.  While *other* workers still hold
leases it keeps waiting (their jobs may yet expire and requeue), which is
exactly the behaviour the coordinator relies on when it spawns local
workers.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import socket
import sys
import threading
import time
import traceback
from typing import Optional

from repro.fleet.jobs import execute_job
from repro.fleet.queue import JobSpool
from repro.telemetry import core as telemetry
from repro.telemetry import trace as tracectx
from repro.telemetry.log import get_logger

#: Heartbeats per lease TTL — frequent enough that one missed beat (a busy
#: filesystem, a paused VM) never looks like a death.
HEARTBEATS_PER_TTL = 4

#: Hotspot lines kept per job when ``--profile`` is on.
PROFILE_TOP_N = 25

_logger = get_logger("worker")


def default_worker_id() -> str:
    """``<hostname>-<pid>``: unique enough across a fleet, readable in status."""
    return f"{socket.gethostname()}-{os.getpid()}"


class _Heartbeat(threading.Thread):
    """Background thread refreshing one job's lease clock until stopped."""

    def __init__(self, spool: JobSpool, job_id: str, interval: float) -> None:
        super().__init__(daemon=True)
        self._spool = spool
        self._job_id = job_id
        self._interval = interval
        # Not named _stop: threading.Thread owns that attribute internally.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self._interval):
            self._spool.heartbeat(self._job_id)

    def stop(self) -> None:
        self._halt.set()
        self.join()


def _profiled_execute(payload: dict, spool: JobSpool, profile_dir: str, worker: str, job_id: str):
    """Run one job under cProfile; dump its top-N hotspots into ``profile_dir``."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return execute_job(payload, spool)
    finally:
        profiler.disable()
        os.makedirs(profile_dir, exist_ok=True)
        path = os.path.join(profile_dir, f"profile-{worker}-{job_id}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            stats = pstats.Stats(profiler, stream=handle)
            stats.sort_stats("cumulative").print_stats(PROFILE_TOP_N)


def run_worker(
    spool_dir: str,
    worker_id: Optional[str] = None,
    poll: float = 0.5,
    lease_ttl: Optional[float] = None,
    max_attempts: Optional[int] = None,
    exit_when_empty: bool = False,
    max_jobs: Optional[int] = None,
    log=None,
    profile_dir: Optional[str] = None,
) -> int:
    """The worker daemon loop; returns a process exit code.

    Parameters
    ----------
    spool_dir:
        The shared spool directory.
    worker_id:
        Identity recorded in lease metadata (defaults to hostname-pid).
    poll:
        Seconds to sleep when no job is claimable.
    lease_ttl / max_attempts:
        Spool configuration overrides (``None`` reads the spool's persisted
        config; see :class:`~repro.fleet.queue.JobSpool`).
    exit_when_empty:
        Exit once the spool is drained instead of polling forever.
    max_jobs:
        Optional cap on executed jobs before exiting (useful for tests and
        for recycling long-lived workers).
    log:
        Progress sink; ``None`` uses the ``repro.worker`` logger at INFO.
    profile_dir:
        When set, each job runs under :mod:`cProfile` and its top
        :data:`PROFILE_TOP_N` cumulative hotspots land in this directory as
        ``profile-<worker>-<job>.txt`` (the CLI points this at the telemetry
        directory).
    """
    if poll <= 0:
        raise ValueError(f"poll must be positive, got {poll}")
    if log is None:
        log = _logger.info
    spool = JobSpool(spool_dir, lease_ttl=lease_ttl, max_attempts=max_attempts)
    worker = worker_id or default_worker_id()
    heartbeat_interval = spool.lease_ttl / HEARTBEATS_PER_TTL
    executed = 0
    log(f"worker {worker}: draining spool {spool.root} (lease_ttl={spool.lease_ttl}s)")
    telemetry.event("worker.start", worker=worker, spool=spool.root)
    while True:
        job = spool.claim(worker)
        if job is None:
            # Nothing claimable: reclaim any dead peers' leases, then either
            # finish (drained + drain mode) or wait for work to appear.
            spool.requeue_expired()
            job = spool.claim(worker)
        if job is None:
            if exit_when_empty and spool.is_drained():
                break
            time.sleep(poll)
            continue
        heartbeat = _Heartbeat(spool, job.id, heartbeat_interval)
        heartbeat.start()
        started = time.perf_counter()
        # The descriptor's trace carrier scopes the whole job: the
        # worker.job span becomes the trace's cross-process child of the
        # enqueuing request span, and everything the engine records below
        # inherits the id.
        with tracectx.attach_carrier(job.payload.get("trace")), telemetry.span(
            "worker.job", job=job.id, worker=worker, attempts=job.attempts
        ) as job_span:
            try:
                if profile_dir is not None:
                    outcome = _profiled_execute(job.payload, spool, profile_dir, worker, job.id)
                else:
                    outcome = execute_job(job.payload, spool)
            except Exception as error:
                heartbeat.stop()
                traceback.print_exc(file=sys.stderr)
                requeued = spool.mark_failed(job.id, f"{type(error).__name__}: {error}")
                job_span.add(outcome="failed")
                log(
                    f"worker {worker}: job {job.id} failed "
                    f"({'requeued' if requeued else 'retry budget exhausted'}): {error}"
                )
            else:
                heartbeat.stop()
                outcome["worker"] = worker
                outcome["elapsed_seconds"] = time.perf_counter() - started
                if spool.mark_done(job.id, outcome):
                    job_span.add(outcome="done")
                    log(
                        f"worker {worker}: job {job.id} done in "
                        f"{outcome['elapsed_seconds']:.2f}s"
                    )
                else:
                    job_span.add(outcome="late")
                    log(
                        f"worker {worker}: job {job.id} finished after its lease "
                        f"expired and was requeued; discarding the late result"
                    )
        executed += 1
        if max_jobs is not None and executed >= max_jobs:
            break
    log(f"worker {worker}: exiting after {executed} job(s)")
    telemetry.event("worker.exit", worker=worker, executed=executed)
    return 0
