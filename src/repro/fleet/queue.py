"""Crash-safe, file-backed job spool shared by fleet workers.

The spool is a directory any number of workers (on one machine or many, over
a shared filesystem) can drain concurrently.  One job is one JSON descriptor
— a self-describing shard of a sweep or experiment workload (see
:mod:`repro.fleet.jobs`) — and its entire lifecycle is expressed as atomic
file renames between sub-directories:

``jobs/<id>.json``
    Pending descriptors, waiting to be claimed.
``active/<id>.json``
    Leased descriptors.  A claim is ``os.rename(jobs/… , active/…)`` —
    atomic on POSIX, so exactly one of any number of concurrent claimers
    wins and the losers simply move on to the next pending job.  The file's
    mtime is the lease heartbeat: the executing worker touches it
    periodically, and a lease whose mtime is older than ``lease_ttl``
    seconds is presumed dead and requeued by :meth:`JobSpool.requeue_expired`.
``active/<id>.meta.json``
    Advisory lease metadata (worker id, claim/heartbeat timestamps) for
    ``repro fleet status``; correctness never depends on it.
``done/<id>.json`` / ``failed/<id>.json``
    Terminal states.  A failed execution (or an expired lease) sends the job
    back to ``jobs/`` with its ``attempts`` counter bumped until the
    spool's ``max_attempts`` budget is exhausted, then to ``failed/``.
``stores/<id>/``
    Per-job result stores, by convention (descriptors carry spool-relative
    store paths so a spool mounted at different paths on different machines
    still works).

Multi-step transitions (requeue with an attempts bump) are serialised
through the same sidecar-``fcntl``-lock idiom as
:class:`repro.engine.store.ResultStore`; single-step transitions (claim,
complete) are plain renames and need no lock.  Claims are crash-safe by
construction: a worker that dies mid-job leaves its descriptor in
``active/`` where the lease clock reclaims it, and the deterministic
execution contract (shards replay exact ``SeedSequence`` children) makes a
re-run of a half-finished job byte-identical to a clean first run.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from dataclasses import dataclass
from typing import Optional

from repro.telemetry import core as telemetry

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: Default seconds of heartbeat silence after which a lease is presumed dead.
DEFAULT_LEASE_TTL = 60.0
#: Default total execution attempts per job (first run + retries).
DEFAULT_MAX_ATTEMPTS = 3

_CONFIG_FILE = "spool.json"
_STATE_DIRS = ("jobs", "active", "done", "failed")


@dataclass(frozen=True)
class Job:
    """One claimed job: its id, descriptor payload and prior attempt count."""

    id: str
    payload: dict

    @property
    def attempts(self) -> int:
        """Execution attempts already spent on this job (0 on first claim)."""
        return int(self.payload.get("attempts", 0))


class JobSpool:
    """Directory-backed work queue with rename leases and expiry requeue.

    Parameters
    ----------
    root:
        Spool directory (created if missing).
    lease_ttl:
        Seconds of heartbeat silence before a lease is presumed dead.
        ``None`` reads the value persisted in the spool's ``spool.json``
        (written by whoever enqueues with an explicit value), falling back
        to :data:`DEFAULT_LEASE_TTL` — so a coordinator configures the
        spool once and every worker agrees on the clock.
    max_attempts:
        Total execution attempts per job before it lands in ``failed/``;
        ``None`` resolves like ``lease_ttl``.
    """

    def __init__(
        self,
        root: str,
        lease_ttl: Optional[float] = None,
        max_attempts: Optional[int] = None,
    ) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        for name in _STATE_DIRS:
            os.makedirs(os.path.join(self.root, name), exist_ok=True)
        self._lock_path = os.path.join(self.root, ".lock")
        config = self._read_config()
        if lease_ttl is None:
            lease_ttl = config.get("lease_ttl", DEFAULT_LEASE_TTL)
        if max_attempts is None:
            max_attempts = config.get("max_attempts", DEFAULT_MAX_ATTEMPTS)
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.lease_ttl = float(lease_ttl)
        self.max_attempts = int(max_attempts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobSpool({self.root!r}, lease_ttl={self.lease_ttl}, max_attempts={self.max_attempts})"

    # ------------------------------------------------------------------ #
    # paths and helpers
    # ------------------------------------------------------------------ #
    def _dir(self, state: str) -> str:
        return os.path.join(self.root, state)

    def _job_path(self, state: str, job_id: str) -> str:
        return os.path.join(self.root, state, f"{job_id}.json")

    def _meta_path(self, job_id: str) -> str:
        return os.path.join(self.root, "active", f"{job_id}.meta.json")

    def resolve(self, relative: str) -> str:
        """A descriptor's spool-relative path as an absolute path.

        Descriptors reference their result stores relative to the spool
        root, so a spool shared over NFS works no matter where each machine
        mounts it.  Absolute paths pass through unchanged.
        """
        if os.path.isabs(relative):
            return relative
        return os.path.join(self.root, relative)

    def _write_json(self, path: str, payload: dict) -> None:
        """Write ``payload`` so the file appears atomically (tmp + rename)."""
        temp = f"{path}.tmp{os.getpid()}"
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
        os.replace(temp, path)

    def _read_json(self, path: str) -> dict:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)

    def _read_config(self) -> dict:
        path = os.path.join(self.root, _CONFIG_FILE)
        if not os.path.exists(path):
            return {}
        try:
            return self._read_json(path)
        except (json.JSONDecodeError, OSError):  # pragma: no cover - defensive
            return {}

    def write_config(self) -> None:
        """Persist this instance's lease/retry settings for later joiners."""
        self._write_json(
            os.path.join(self.root, _CONFIG_FILE),
            {"lease_ttl": self.lease_ttl, "max_attempts": self.max_attempts},
        )

    @contextlib.contextmanager
    def _locked(self):
        """Exclusive lock over multi-step spool transitions (requeue paths).

        Same sidecar-file idiom as :class:`repro.engine.store.ResultStore`:
        claims and completions are single atomic renames and skip the lock;
        only read-modify-write transitions (attempts bump on requeue or
        failure) serialise through it.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        with open(self._lock_path, "a", encoding="utf-8") as lock:
            fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock.fileno(), fcntl.LOCK_UN)

    def _ids(self, state: str) -> list[str]:
        names = []
        for name in os.listdir(self._dir(state)):
            if name.endswith(".json") and not name.endswith(".meta.json"):
                if ".tmp" in name:
                    continue
                names.append(name[: -len(".json")])
        return sorted(names)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def enqueue(self, payload: dict) -> str:
        """Add one job descriptor; returns its id.

        The descriptor must carry a unique ``"id"``.  Ids are rejected if
        they exist in *any* state — fleet job ids are deterministic
        functions of the workload (see :mod:`repro.fleet.jobs`), so a
        duplicate means the same workload was already enqueued into this
        spool, and silently re-adding it would double-execute.
        """
        job_id = str(payload.get("id") or "")
        if not job_id or "/" in job_id or job_id.startswith("."):
            raise ValueError(f"job payload needs a filesystem-safe 'id', got {job_id!r}")
        for state in _STATE_DIRS:
            if os.path.exists(self._job_path(state, job_id)):
                raise ValueError(f"job {job_id!r} already exists in {state}/ of {self.root}")
        descriptor = {**payload, "attempts": int(payload.get("attempts", 0))}
        self._write_json(self._job_path("jobs", job_id), descriptor)
        telemetry.event("queue.enqueue", job=job_id)
        return job_id

    def claim(self, worker: str) -> Optional[Job]:
        """Lease the first claimable pending job, or ``None`` if none.

        The claim itself is one ``os.rename`` into ``active/`` — exactly one
        concurrent claimer can win it; the rest see ``FileNotFoundError``
        and try the next id.
        """
        for job_id in self._ids("jobs"):
            pending = self._job_path("jobs", job_id)
            lease = self._job_path("active", job_id)
            try:
                # Freshen the mtime *before* the rename: the rename preserves
                # it, and the lease clock starts from the file's mtime — a job
                # that sat pending longer than lease_ttl must not look expired
                # (and get spuriously requeued) the instant it is claimed.
                os.utime(pending)
                os.rename(pending, lease)
            except FileNotFoundError:
                continue  # lost the race for this id; try the next one
            now = time.time()
            self._write_json(
                self._meta_path(job_id),
                {"worker": str(worker), "claimed_at": now, "heartbeat_at": now},
            )
            job = Job(id=job_id, payload=self._read_json(lease))
            telemetry.event(
                "queue.claim", job=job_id, worker=str(worker), attempts=job.attempts
            )
            return job
        return None

    def heartbeat(self, job_id: str) -> None:
        """Refresh the lease clock of a running job (worker calls this)."""
        lease = self._job_path("active", job_id)
        try:
            os.utime(lease)
        except FileNotFoundError:
            # The lease expired and was requeued from under us; the retry
            # budget (not this worker) now owns the job's fate.
            return
        meta_path = self._meta_path(job_id)
        try:
            meta = self._read_json(meta_path)
        except (FileNotFoundError, json.JSONDecodeError):
            meta = {}
        meta["heartbeat_at"] = time.time()
        self._write_json(meta_path, meta)
        telemetry.count("queue.heartbeats")

    def mark_done(self, job_id: str, outcome: Optional[dict] = None) -> bool:
        """Move a leased job to ``done/``, recording its outcome.

        The completed descriptor is written into ``done/`` *before* the
        lease is removed, so a crash between the two steps leaves both files
        and :meth:`requeue_expired` later discards the stale lease instead
        of re-running a finished job.

        Returns ``False`` (without writing anything) when the lease is gone
        — the worker stalled past ``lease_ttl`` and the job was requeued
        from under it.  The retry budget owns the job's fate then; the
        re-execution is byte-identical by the shard determinism contract, so
        the late finisher simply discards its result.
        """
        lease = self._job_path("active", job_id)
        try:
            descriptor = self._read_json(lease)
        except FileNotFoundError:
            return False
        descriptor["outcome"] = dict(outcome or {})
        descriptor["completed_at"] = time.time()
        self._write_json(self._job_path("done", job_id), descriptor)
        self._remove_lease(job_id)
        telemetry.event("queue.done", job=job_id, attempts=int(descriptor.get("attempts", 0)))
        return True

    def mark_failed(self, job_id: str, error: str) -> bool:
        """Record a failed execution; returns ``True`` if the job was requeued.

        The job goes back to ``jobs/`` with ``attempts`` bumped while budget
        remains, to ``failed/`` once ``max_attempts`` executions have been
        spent.
        """
        with self._locked():
            return self._retire_lease(job_id, error)

    def requeue_expired(self, now: Optional[float] = None) -> list[str]:
        """Reclaim leases whose heartbeat went silent; returns requeued ids.

        Any process may call this (idle workers and the coordinator monitor
        both do): the whole scan-and-requeue runs under the spool lock, so
        two concurrent reclaimers never double-requeue one lease.
        """
        now = time.time() if now is None else now
        requeued = []
        with self._locked():
            for job_id in self._ids("active"):
                lease = self._job_path("active", job_id)
                # A crash between mark_done's write and its lease removal
                # leaves a terminal record next to a stale lease; finish the
                # cleanup rather than re-running a completed job.
                if os.path.exists(self._job_path("done", job_id)) or os.path.exists(
                    self._job_path("failed", job_id)
                ):
                    self._remove_lease(job_id)
                    continue
                try:
                    age = now - os.path.getmtime(lease)
                except FileNotFoundError:
                    continue  # completed or failed since listing
                if age < 0:
                    # The heartbeat mtime is in our future: a wall-clock step
                    # (NTP correction, VM resume) or cross-machine skew, not
                    # a dead worker.  Never treat it as expired — and
                    # re-anchor the mtime to the present, because a far-future
                    # stamp would otherwise also mask a *genuine* death for
                    # as long as the skew lasted.
                    with contextlib.suppress(FileNotFoundError):
                        os.utime(lease)
                    telemetry.event("queue.clock_skew", job=job_id, age_seconds=age)
                    continue
                if age <= self.lease_ttl:
                    continue
                if self._retire_lease(job_id, f"lease expired after {age:.1f}s"):
                    requeued.append(job_id)
        return requeued

    def _retire_lease(self, job_id: str, error: str) -> bool:
        """Requeue or fail a leased job (callers hold the spool lock).

        Returns ``True`` when the job went back to ``jobs/``.  The new state
        file is written before the lease is unlinked, so a crash in between
        duplicates nothing: the leftover lease is discarded by the terminal-
        state check in :meth:`requeue_expired`, and a leftover *pending*
        duplicate is impossible because the pending file is the rename
        target.
        """
        lease = self._job_path("active", job_id)
        try:
            descriptor = self._read_json(lease)
        except FileNotFoundError:
            return False
        attempts = int(descriptor.get("attempts", 0)) + 1
        descriptor["attempts"] = attempts
        descriptor["last_error"] = str(error)
        if attempts >= self.max_attempts:
            descriptor["failed_at"] = time.time()
            self._write_json(self._job_path("failed", job_id), descriptor)
            self._remove_lease(job_id)
            telemetry.event("queue.failed", job=job_id, attempts=attempts, error=str(error))
            return False
        self._write_json(self._job_path("jobs", job_id), descriptor)
        self._remove_lease(job_id)
        telemetry.event("queue.requeue", job=job_id, attempts=attempts, error=str(error))
        return True

    def _remove_lease(self, job_id: str) -> None:
        for path in (self._job_path("active", job_id), self._meta_path(job_id)):
            try:
                os.remove(path)
            except FileNotFoundError:
                pass

    def resurrect(self, job_id: str, state: str) -> None:
        """Move a terminal job back to ``jobs/`` with a fresh attempt budget.

        The resume path (``repro fleet run --resume``) uses this: a job
        that landed in ``failed/`` on an earlier run — or sits in ``done/``
        with its store missing expected records — is re-queued for another
        round of executions instead of being rejected as a duplicate.
        Stale outcome fields are dropped so the resurrected descriptor is
        indistinguishable from a fresh enqueue.
        """
        if state not in ("done", "failed"):
            raise ValueError(f"can only resurrect from done/ or failed/, got {state!r}")
        with self._locked():
            path = self._job_path(state, job_id)
            try:
                descriptor = self._read_json(path)
            except FileNotFoundError:
                raise ValueError(f"no {state} job {job_id!r} in {self.root}") from None
            descriptor["attempts"] = 0
            for stale in ("last_error", "failed_at", "outcome", "completed_at"):
                descriptor.pop(stale, None)
            self._write_json(self._job_path("jobs", job_id), descriptor)
            os.remove(path)
        telemetry.event("queue.resurrect", job=job_id, from_state=state)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def state_of(self, job_id: str) -> Optional[str]:
        """The lifecycle state currently holding ``job_id`` (None if absent)."""
        for state in _STATE_DIRS:
            if os.path.exists(self._job_path(state, job_id)):
                return state
        return None

    def pending_ids(self) -> list[str]:
        """Ids waiting in ``jobs/``."""
        return self._ids("jobs")

    def active_ids(self) -> list[str]:
        """Ids currently leased."""
        return self._ids("active")

    def done_ids(self) -> list[str]:
        """Ids completed successfully."""
        return self._ids("done")

    def failed_ids(self) -> list[str]:
        """Ids that exhausted their retry budget."""
        return self._ids("failed")

    def read_job(self, state: str, job_id: str) -> dict:
        """The descriptor of ``job_id`` in ``state`` (jobs/active/done/failed)."""
        if state not in _STATE_DIRS:
            raise ValueError(f"state must be one of {_STATE_DIRS}, got {state!r}")
        return self._read_json(self._job_path(state, job_id))

    def read_meta(self, job_id: str) -> Optional[dict]:
        """Advisory lease metadata of an active job (``None`` if absent)."""
        try:
            return self._read_json(self._meta_path(job_id))
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def is_drained(self) -> bool:
        """Whether every job has reached a terminal state (done or failed)."""
        return not self.pending_ids() and not self.active_ids()

    def counts(self) -> dict[str, int]:
        """``{state: job count}`` across the four lifecycle states."""
        return {state: len(self._ids(state)) for state in _STATE_DIRS}
