"""Live fleet dashboard: the rendering and refresh loop of ``repro fleet top``.

``repro fleet status`` is a one-shot forensic scan; this module is the
watching counterpart — a terminal dashboard that refreshes a compact frame
showing where a draining spool is *right now*:

* queue depths (pending / active / done / failed) and the drain ETA,
* windowed throughput, requeue rate and job latency quantiles from a
  :class:`~repro.telemetry.timeseries.TelemetryTailer` over the fleet's
  shared ``--telemetry`` directory (omitted gracefully when the fleet runs
  without telemetry — the spool-derived panels still render),
* per-worker utilization (busy fraction of the sliding window) and lease
  heartbeat ages,
* the slowest in-flight jobs — the ones to stare at when a drain stalls.

The frame builder is split from the terminal loop on purpose:
:func:`gather_frame` folds a spool scan plus an optional tailer poll into a
plain dict, and :func:`render_frame` turns that dict into text — both pure
enough to unit-test without a TTY.  :func:`run_top` owns the ANSI screen
handling (plain stdlib, no curses dependency: home-and-clear per refresh)
and degrades to a single printed frame with ``--once`` or when stdout is
not a terminal.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from repro.fleet.queue import JobSpool
from repro.fleet.status import SpoolStatus, spool_metrics, spool_status
from repro.telemetry.timeseries import TelemetryTailer

#: Default seconds between dashboard refreshes.
DEFAULT_INTERVAL = 2.0

#: In-flight jobs shown in the "slowest" panel.
TOP_JOBS = 5

#: ANSI: cursor home + clear to end of screen (redraw without scrollback spam).
_CLEAR = "\x1b[H\x1b[J"


def gather_frame(
    spool: JobSpool,
    tailer: Optional[TelemetryTailer] = None,
    now: Optional[float] = None,
) -> dict:
    """One dashboard frame's data: spool scan + optional telemetry poll.

    Returns a JSON-able dict consumed by :func:`render_frame` (and usable
    directly for machine consumption; ``repro fleet top --once --json``
    prints exactly this).
    """
    now = time.time() if now is None else float(now)
    if tailer is not None:
        tailer.poll()
    status = spool_status(spool, now=now)
    metrics = spool_metrics(spool, status)
    frame: dict = {
        "now": now,
        "spool": status.root,
        "counts": {
            "total": status.total,
            "pending": len(status.pending),
            "active": len(status.active),
            "done": len(status.done),
            "failed": len(status.failed),
        },
        "drained": status.drained,
        "workers": _worker_rows(status, tailer, now),
        "failed": [
            {"job": job.job_id, "attempts": job.attempts, "error": job.error}
            for job in status.failed
        ],
    }
    rate = metrics.jobs_per_second
    if tailer is not None:
        stats = tailer.window_stats(now=now)
        if stats["jobs_completed"]:
            rate = stats["jobs_per_second"]
        frame["window"] = stats
        frame["telemetry"] = {
            "directory": tailer.directory,
            "events": tailer.events_total,
            "traces": len(tailer.trace_ids),
            "skipped_lines": tailer.skipped_lines,
        }
        frame["in_flight"] = _slowest_in_flight(tailer, now)
    frame["jobs_per_second"] = rate
    frame["requeues"] = metrics.requeues
    remaining = len(status.pending) + len(status.active)
    frame["eta_seconds"] = remaining / rate if rate and remaining else None
    return frame


def _worker_rows(
    status: SpoolStatus, tailer: Optional[TelemetryTailer], now: float
) -> list[dict]:
    """Per-worker panel rows: lease state joined with windowed busy time.

    Workers appear if they hold a lease (spool view) *or* completed a job
    inside the window (telemetry view); the join key is the worker id,
    which :func:`~repro.fleet.worker.default_worker_id` makes the same
    ``<host>-<pid>`` string the telemetry process stamp uses.
    """
    rows: dict[str, dict] = {}
    for lease in status.active:
        name = lease.worker or "?"
        row = rows.setdefault(name, {"worker": name})
        row["job"] = lease.job_id
        row["lease_age_seconds"] = lease.lease_age_seconds
        row["heartbeat_age_seconds"] = lease.heartbeat_age_seconds
    if tailer is not None:
        busy = tailer.window_stats(now=now)["worker_busy_seconds"]
        window = tailer.window or 1.0
        for name, seconds in busy.items():
            row = rows.setdefault(name, {"worker": name})
            row["busy_fraction"] = min(1.0, seconds / window)
    return sorted(rows.values(), key=lambda row: row["worker"])


def _slowest_in_flight(tailer: TelemetryTailer, now: float) -> list[dict]:
    """The longest-running claimed-but-unfinished jobs, slowest first."""
    jobs = [
        {
            "job": job_id,
            "worker": info.get("worker"),
            "attempts": info.get("attempts"),
            "running_seconds": max(0.0, now - float(info.get("since", now))),
        }
        for job_id, info in tailer.active_jobs.items()
    ]
    jobs.sort(key=lambda job: -job["running_seconds"])
    return jobs[:TOP_JOBS]


def _bar(fraction: float, width: int = 10) -> str:
    filled = max(0, min(width, int(round(fraction * width))))
    return "#" * filled + "." * (width - filled)


def render_frame(frame: dict, width: int = 80) -> str:
    """Render one :func:`gather_frame` dict as dashboard text."""
    counts = frame["counts"]
    stamp = time.strftime("%H:%M:%S", time.localtime(frame["now"]))
    lines = [
        f"repro fleet top — {frame['spool']}  [{stamp}]"[:width],
        (
            f"jobs: {counts['total']} total | {counts['pending']} pending  "
            f"{counts['active']} active  {counts['done']} done  "
            f"{counts['failed']} failed"
            + ("  | drained" if frame["drained"] else "")
        )[:width],
    ]
    rate = frame.get("jobs_per_second")
    window = frame.get("window")
    parts = [f"throughput: {rate:.2f} jobs/s" if rate else "throughput: —"]
    if window is not None:
        parts.append(f"requeue rate {window['requeue_rate']:.2f}")
        if window["job_latency_count"]:
            parts.append(
                f"latency p50 {window['job_latency_p50_seconds']:.2f}s "
                f"p95 {window['job_latency_p95_seconds']:.2f}s"
            )
        parts.append(f"(window {window['window_seconds']:g}s)")
    elif frame.get("requeues"):
        parts.append(f"{frame['requeues']} requeue(s)")
    lines.append(("  ".join(parts))[:width])
    eta = frame.get("eta_seconds")
    remaining = counts["pending"] + counts["active"]
    if eta is not None:
        lines.append(f"eta: ~{eta:.0f}s for {remaining} remaining job(s)"[:width])
    elif remaining:
        lines.append(
            f"eta: unknown ({remaining} remaining job(s), no throughput yet)"[:width]
        )

    if frame["workers"]:
        lines.append("workers:")
        for row in frame["workers"]:
            detail = [f"  {row['worker']:<24}"]
            fraction = row.get("busy_fraction")
            if fraction is not None:
                detail.append(f"busy {_bar(fraction)} {fraction:4.0%}")
            heartbeat = row.get("heartbeat_age_seconds")
            if heartbeat is not None:
                detail.append(f"heartbeat {heartbeat:.1f}s ago")
            elif row.get("job"):
                detail.append("heartbeat never")
            if row.get("job"):
                detail.append(f"job {row['job']}")
            lines.append("  ".join(detail)[:width])
    in_flight = frame.get("in_flight")
    if in_flight:
        lines.append("in-flight (slowest first):")
        for job in in_flight:
            lines.append(
                f"  {job['job']}  worker={job.get('worker') or '?'}  "
                f"{job['running_seconds']:.1f}s  attempts={job.get('attempts')}"[:width]
            )
    if frame["failed"]:
        lines.append("failed:")
        for job in frame["failed"]:
            lines.append(
                f"  {job['job']}  attempts={job['attempts']}  {job['error']}"[:width]
            )
    telemetry = frame.get("telemetry")
    if telemetry is not None:
        lines.append(
            (
                f"telemetry: {telemetry['events']} events, "
                f"{telemetry['traces']} trace(s), "
                f"{telemetry['skipped_lines']} skipped line(s)  "
                f"[{telemetry['directory']}]"
            )[:width]
        )
    return "\n".join(lines) + "\n"


def run_top(
    spool_dir: str,
    telemetry_dir: Optional[str] = None,
    interval: float = DEFAULT_INTERVAL,
    once: bool = False,
    follow_until_drained: bool = False,
    width: int = 80,
    stream: Optional[TextIO] = None,
    clock=time.time,
    sleep=time.sleep,
) -> int:
    """The ``repro fleet top`` loop; returns a process exit code.

    Refreshes a full-screen frame every ``interval`` seconds until
    interrupted (Ctrl-C), the spool drains (with ``follow_until_drained``),
    or immediately after one frame with ``once``.  ``stream``, ``clock``
    and ``sleep`` are injection points for tests.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    stream = sys.stdout if stream is None else stream
    spool = JobSpool(spool_dir)
    tailer = TelemetryTailer(telemetry_dir) if telemetry_dir else None
    interactive = not once and getattr(stream, "isatty", lambda: False)()
    try:
        while True:
            frame = gather_frame(spool, tailer, now=clock())
            text = render_frame(frame, width=width)
            if interactive:
                stream.write(_CLEAR + text)
            else:
                stream.write(text)
            stream.flush()
            if once or (follow_until_drained and frame["drained"]):
                return 0
            sleep(interval)
    except KeyboardInterrupt:
        stream.write("\n")
        return 0
