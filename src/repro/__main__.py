"""``python -m repro`` dispatches to the command-line interface.

Kept to the bare ``sys.exit(main())`` trampoline so the interpreter-level
entry point and the ``repro`` console script (see ``pyproject.toml``) share
one argument parser, one exit-code contract and one set of subcommands —
:mod:`repro.cli` is the single place behaviour lives.
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
