"""Online sketches and sequential stopping rules for trial batches.

Three cooperating pieces (see ``docs/statistics.md`` for the error bounds
and the bit-identity contract in full):

* :class:`MomentSketch` — a mergeable streaming moment accumulator
  (count, mean, variance, min, max).  Updates are Welford's algorithm and
  merges are Chan's parallel-variance formula, but integer-valued streams
  — the flooding times — additionally carry *exact* arbitrary-precision
  integer sums, so their means/variances are computed from exact sums and
  sketch merging is associative and byte-stable in any merge order.
* :class:`QuantileSketch` — a bounded-size quantile sketch built on a
  deterministic bottom-``k`` reservoir: every trial index gets a 64-bit
  priority from a seed-derived stream (:func:`sketch_salt` +
  ``splitmix64``), and the sketch keeps the ``capacity`` smallest
  priorities.  The kept values are a uniform sample without replacement,
  merging is set union + truncation (associative, deterministic), and a
  sketch whose stream fits within ``capacity`` is *exact*.
  :class:`P2Quantile` is the classic P² estimator for callers that need a
  single running quantile with O(1) state and no reservoir at all.
* :class:`StoppingRule` — the sequential-sampling policy the engine
  evaluates between trial chunks: stop once the normal-approximation
  confidence interval around the running mean is narrower than a target
  half-width (absolute or relative), bounded by min/max trial counts.
  Decisions depend only on the samples (which are worker-invariant), so
  the realized trial count is identical at any worker count or executor.

Nothing here imports the engine: the engine, the result store and the
fleet import *this* module, embed sketch payloads (:func:`sketch_from_samples`)
in batch records and merge them (:func:`merge_sketch_payloads`) during
shard assembly.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.telemetry import core as telemetry
from repro.util.stats import TrialSummary
from repro.util.stats import z_score as z_score  # re-exported; single source of truth

#: Schema version stamped into serialized sketch payloads.
SKETCH_SCHEMA = 1

#: Default bottom-k reservoir capacity.  512 entries bound the rank error
#: of any quantile estimate by ~0.06 at 95% confidence (see
#: :func:`quantile_rank_epsilon`) while keeping a sketch record under ~8 KB.
DEFAULT_RESERVOIR = 512

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def quantile_rank_epsilon(capacity: int, confidence: float = 0.95) -> float:
    """DKW rank-error bound of a size-``capacity`` uniform quantile sample.

    With probability at least ``confidence``, every quantile estimated from
    a uniform sample of ``capacity`` observations lies between the true
    ``(q - eps)``- and ``(q + eps)``-quantiles, where
    ``eps = sqrt(ln(2 / (1 - confidence)) / (2 * capacity))`` (the
    Dvoretzky–Kiefer–Wolfowitz inequality).  This is the documented error
    bound of :class:`QuantileSketch` beyond its exact regime.
    """
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    return math.sqrt(math.log(2.0 / (1.0 - confidence)) / (2.0 * capacity))


def sketch_salt(token: object) -> int:
    """Deterministic 64-bit reservoir salt derived from seed material.

    ``token`` is any JSON-able identity (the engine passes the batch's
    ``seed_token``).  The salt — not the values — drives the reservoir's
    priority stream, so every shard of one batch derives the same stream
    and sharded/unsharded runs embed bit-identical sketches.
    """
    canonical = json.dumps(token, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _priority(salt: int, index: int) -> int:
    """splitmix64 finalizer over ``salt ^ (index * golden)`` — the priority
    of trial ``index`` in the salt's reservoir stream (a deterministic
    pseudo-random permutation of the trial indices)."""
    z = (salt ^ ((index & _MASK64) * _GOLDEN)) & _MASK64
    z = (z + _GOLDEN) & _MASK64
    z ^= z >> 30
    z = (z * 0xBF58476D1CE4E5B9) & _MASK64
    z ^= z >> 27
    z = (z * 0x94D049BB133111EB) & _MASK64
    z ^= z >> 31
    return z


def _is_exact(value) -> bool:
    """Whether ``value`` participates in the exact integer track."""
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, np.integer)):
        return True
    return isinstance(value, float) and value.is_integer()


class MomentSketch:
    """Mergeable streaming moments: count, mean, variance, min, max.

    Updates use Welford's online algorithm and merges use Chan's
    parallel-variance formula.  Integer-valued streams additionally keep
    exact integer ``total`` / ``total_sq`` sums; while that track is alive,
    ``mean`` and ``variance`` are derived from the exact sums — one float
    division at the very end — making them independent of update order,
    chunking and merge shape (the property the result store's byte-identity
    contract relies on).  A single non-integer observation permanently
    drops the stream to the float (Welford/Chan) track, which is mergeable
    but only reproducible for one fixed merge shape.
    """

    __slots__ = ("count", "minimum", "maximum", "_mean", "_m2", "_total", "_total_sq")

    def __init__(self) -> None:
        self.count = 0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._mean = 0.0
        self._m2 = 0.0
        # Exact integer sums; None once a non-integer value arrives.
        self._total: Optional[int] = 0
        self._total_sq: Optional[int] = 0

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "MomentSketch":
        """A sketch over an existing sample iterable."""
        sketch = cls()
        sketch.update_many(samples)
        return sketch

    @property
    def exact(self) -> bool:
        """Whether the exact integer track is still alive."""
        return self._total is not None

    def update(self, value) -> None:
        """Fold one observation into the sketch."""
        value = float(value) if not _is_exact(value) else value
        self.count += 1
        numeric = float(value)
        if self.minimum is None or numeric < self.minimum:
            self.minimum = numeric
        if self.maximum is None or numeric > self.maximum:
            self.maximum = numeric
        delta = numeric - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (numeric - self._mean)
        if self._total is not None:
            if _is_exact(value):
                self._total += int(value)
                self._total_sq += int(value) ** 2
            else:
                self._total = self._total_sq = None

    def update_many(self, values: Iterable[float]) -> None:
        """Fold a batch of observations into the sketch, in order."""
        for value in values:
            self.update(value)

    def merge(self, other: "MomentSketch") -> None:
        """Fold ``other`` into this sketch (Chan's parallel update)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.minimum, self.maximum = other.minimum, other.maximum
            self._mean, self._m2 = other._mean, other._m2
            self._total, self._total_sq = other._total, other._total_sq
            return
        total_count = self.count + other.count
        delta = other._mean - self._mean
        self._mean += delta * other.count / total_count
        self._m2 += other._m2 + delta * delta * self.count * other.count / total_count
        self.count = total_count
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        if self._total is not None and other._total is not None:
            self._total += other._total
            self._total_sq += other._total_sq
        else:
            self._total = self._total_sq = None

    @property
    def mean(self) -> float:
        """Mean of the stream (derived from exact sums when available)."""
        if self.count == 0:
            raise ValueError("cannot take the mean of an empty sketch")
        if self._total is not None:
            return self._total / self.count
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased (``ddof=1``) sample variance; 0.0 for a single value."""
        if self.count == 0:
            raise ValueError("cannot take the variance of an empty sketch")
        if self.count == 1:
            return 0.0
        if self._total is not None:
            numerator = self.count * self._total_sq - self._total * self._total
            return numerator / (self.count * (self.count - 1))
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.count == 0:
            raise ValueError("cannot take the sem of an empty sketch")
        return self.std / math.sqrt(self.count)

    def ci_halfwidth(self, confidence: float = 0.95) -> float:
        """Normal-approximation CI half-width around the running mean."""
        if self.count < 2:
            return math.inf
        return z_score(confidence) * self.sem

    def as_dict(self) -> dict:
        """JSON-able form.  Exact streams persist the integer sums only —
        mean/variance are re-derived on load, so the payload is byte-stable
        whatever the update or merge order that produced it."""
        payload: dict = {
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
        }
        if self._total is not None:
            payload["total"] = self._total
            payload["total_sq"] = self._total_sq
        else:
            payload["mean"] = self._mean
            payload["m2"] = self._m2
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "MomentSketch":
        """Rebuild a sketch from its :meth:`as_dict` payload."""
        sketch = cls()
        sketch.count = int(payload["count"])
        sketch.minimum = None if payload["min"] is None else float(payload["min"])
        sketch.maximum = None if payload["max"] is None else float(payload["max"])
        if "total" in payload:
            sketch._total = int(payload["total"])
            sketch._total_sq = int(payload["total_sq"])
            if sketch.count:
                sketch._mean = sketch._total / sketch.count
                sketch._m2 = sketch.variance * max(sketch.count - 1, 0)
        else:
            sketch._total = sketch._total_sq = None
            sketch._mean = float(payload["mean"])
            sketch._m2 = float(payload["m2"])
        return sketch


class QuantileSketch:
    """Bounded-size quantile sketch: a deterministic bottom-``k`` reservoir.

    Each observed trial index ``i`` receives the 64-bit priority
    ``splitmix64(salt, i)``; the sketch keeps the ``capacity`` entries with
    the smallest priorities.  Because priorities are a pseudo-random
    permutation of the indices, the kept values are a uniform sample
    without replacement — so quantiles of the reservoir estimate stream
    quantiles with the DKW rank error of :func:`quantile_rank_epsilon`,
    and a stream no longer than ``capacity`` is represented *exactly*.
    Merging is set union plus truncation: associative, commutative and
    deterministic, so any shard partition merges to the sketch the
    unsharded stream would have built, entry for entry.
    """

    __slots__ = ("capacity", "salt", "total", "entries")

    def __init__(self, salt: int, capacity: int = DEFAULT_RESERVOIR) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.salt = int(salt) & _MASK64
        self.total = 0
        #: ``(priority, value)`` pairs, sorted ascending, at most ``capacity``.
        self.entries: list[tuple[int, float]] = []

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[float],
        salt: int,
        start: int = 0,
        stride: int = 1,
        capacity: int = DEFAULT_RESERVOIR,
    ) -> "QuantileSketch":
        """Sketch of ``samples`` occupying trial indices ``start, start+stride, ...``.

        Shard ``i`` of ``K`` passes ``start=i, stride=K`` so its entries get
        the exact priorities the unsharded stream assigns those trials.
        """
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        sketch = cls(salt, capacity)
        sketch.total = len(samples)
        entries = [
            (_priority(sketch.salt, start + offset * stride), float(value))
            for offset, value in enumerate(samples)
        ]
        entries.sort()
        sketch.entries = entries[: sketch.capacity]
        return sketch

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (union, sort, truncate)."""
        if other.salt != self.salt:
            raise ValueError(
                f"cannot merge quantile sketches with different salts "
                f"({self.salt:#x} vs {other.salt:#x})"
            )
        if other.capacity != self.capacity:
            raise ValueError(
                f"cannot merge quantile sketches with different capacities "
                f"({self.capacity} vs {other.capacity})"
            )
        merged = sorted(set(self.entries) | set(other.entries))
        self.entries = merged[: self.capacity]
        self.total += other.total

    @property
    def exact(self) -> bool:
        """Whether the reservoir holds the entire stream."""
        return self.total <= self.capacity

    def values(self) -> np.ndarray:
        """The reservoir's values (the uniform sample), as an array."""
        if not self.entries:
            raise ValueError("cannot read quantiles of an empty sketch")
        return np.asarray([value for _, value in self.entries], dtype=float)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of the reservoir sample."""
        return float(np.quantile(self.values(), q))

    def whp_value(self, n: int) -> float:
        """The ``1 - 1/n`` quantile (the paper's w.h.p. level), clamped."""
        if n < 2:
            return float(self.values().max())
        return self.quantile(min(1.0 - 1.0 / n, 1.0))

    def as_dict(self) -> dict:
        """JSON-able form (entries are byte-stable: sorted, deduplicated)."""
        return {
            "capacity": self.capacity,
            "salt": self.salt,
            "total": self.total,
            "entries": [[priority, value] for priority, value in self.entries],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QuantileSketch":
        """Rebuild a sketch from its :meth:`as_dict` payload."""
        sketch = cls(int(payload["salt"]), int(payload["capacity"]))
        sketch.total = int(payload["total"])
        sketch.entries = [
            (int(priority), float(value)) for priority, value in payload["entries"]
        ]
        return sketch


class P2Quantile:
    """The P² streaming estimator of a single quantile (Jain & Chlamtac).

    O(1) state (five markers), no reservoir, order-sensitive — the
    lightweight companion to :class:`QuantileSketch` for callers that only
    track one running quantile inside a single pass and never merge.
    Exact while fewer than five observations have arrived.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must lie in (0, 1), got {q}")
        self.q = float(q)
        self._initial: list[float] = []
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments: list[float] = []

    def update(self, value: float) -> None:
        """Fold one observation into the estimator."""
        value = float(value)
        if self._initial is not None and len(self._initial) < 5:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._heights = sorted(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
                self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
                self._initial = None
            return
        if self._initial is not None:
            return  # pragma: no cover - unreachable
        heights, positions = self._heights, self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = next(i for i in range(4) if heights[i] <= value < heights[i + 1])
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers with the piecewise-parabolic fit.
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            step = 1.0 if delta >= 1.0 else -1.0 if delta <= -1.0 else 0.0
            if step == 0.0:
                continue
            if not (positions[i + 1] - positions[i] > step > positions[i - 1] - positions[i]):
                continue
            candidate = self._parabolic(i, step)
            if not heights[i - 1] < candidate < heights[i + 1]:
                candidate = self._linear(i, step)
            heights[i] = candidate
            positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, p = self._heights, self._positions
        return h[i] + step / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + step) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - step) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, p = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (p[j] - p[i])

    @property
    def value(self) -> float:
        """The current quantile estimate."""
        if self._initial is not None:
            if not self._initial:
                raise ValueError("cannot read a quantile before any update")
            return float(np.quantile(np.asarray(self._initial, dtype=float), self.q))
        return self._heights[2]


@dataclass(frozen=True)
class BatchSketch:
    """The sketch a batch record embeds: exact moments + a quantile reservoir."""

    moments: MomentSketch
    quantiles: QuantileSketch

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[float],
        salt: int,
        start: int = 0,
        stride: int = 1,
        capacity: int = DEFAULT_RESERVOIR,
    ) -> "BatchSketch":
        """Sketch of one (possibly strided) slice of a trial stream."""
        return cls(
            moments=MomentSketch.from_samples(samples),
            quantiles=QuantileSketch.from_samples(
                samples, salt, start=start, stride=stride, capacity=capacity
            ),
        )

    def merge(self, other: "BatchSketch") -> None:
        """Fold ``other`` into this sketch (both halves mergeable)."""
        self.moments.merge(other.moments)
        self.quantiles.merge(other.quantiles)

    def summary(self) -> TrialSummary:
        """A :class:`~repro.util.stats.TrialSummary` computed in O(capacity).

        Count, mean, std, min and max come from the moment sketch (exact
        for integer streams); median/q90/q99 from the reservoir (exact
        while the stream fits, DKW-bounded beyond).
        """
        moments, quantiles = self.moments, self.quantiles
        if moments.count == 0:
            raise ValueError("cannot summarise an empty sketch")
        return TrialSummary(
            count=moments.count,
            mean=moments.mean,
            std=moments.std,
            minimum=moments.minimum,
            maximum=moments.maximum,
            median=quantiles.quantile(0.5),
            q90=quantiles.quantile(0.90),
            q99=quantiles.quantile(0.99),
        )

    def as_dict(self) -> dict:
        """The JSON payload batch records embed under their ``sketch`` key."""
        return {
            "schema": SKETCH_SCHEMA,
            "moments": self.moments.as_dict(),
            "quantiles": self.quantiles.as_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BatchSketch":
        """Rebuild a batch sketch from its embedded payload."""
        schema = payload.get("schema")
        if schema != SKETCH_SCHEMA:
            raise ValueError(f"unsupported sketch schema {schema!r}")
        return cls(
            moments=MomentSketch.from_dict(payload["moments"]),
            quantiles=QuantileSketch.from_dict(payload["quantiles"]),
        )


def sketch_from_samples(
    samples: Sequence[float],
    salt: int,
    start: int = 0,
    stride: int = 1,
    capacity: int = DEFAULT_RESERVOIR,
) -> dict:
    """The embeddable sketch payload of one (possibly strided) sample slice."""
    return BatchSketch.from_samples(
        samples, salt, start=start, stride=stride, capacity=capacity
    ).as_dict()


def merge_sketch_payloads(payloads: Sequence[dict]) -> dict:
    """Merge embedded sketch payloads (shard assembly's sketch fan-in).

    Associative and order-independent for integer streams, so the merged
    payload is byte-identical to the sketch an unsharded run embeds.
    Counts one ``stats.sketch.merge`` telemetry tick per fold.
    """
    if not payloads:
        raise ValueError("need at least one sketch payload to merge")
    merged = BatchSketch.from_dict(payloads[0])
    for payload in payloads[1:]:
        merged.merge(BatchSketch.from_dict(payload))
        telemetry.count("stats.sketch.merge")
    return merged.as_dict()


def summary_from_sketch(payload: dict) -> TrialSummary:
    """A :class:`~repro.util.stats.TrialSummary` from an embedded sketch."""
    return BatchSketch.from_dict(payload).summary()


def whp_from_sketch(payload: dict, n: int) -> float:
    """The w.h.p. (``1 - 1/n``) quantile estimate of an embedded sketch."""
    return BatchSketch.from_dict(payload).quantiles.whp_value(n)


@dataclass(frozen=True)
class StoppingRule:
    """Sequential stopping policy for one trial batch.

    Stop the batch once the normal-approximation confidence interval
    around the running mean is at most ``target_halfwidth`` wide on each
    side (``relative=True`` scales the target by the running mean's
    magnitude), provided at least ``min_trials`` trials have run; the
    spec's ``num_trials`` is the hard budget.  The engine evaluates the
    rule every ``check_every`` trials — a *statistical* chunk boundary,
    fixed by the rule, never by the worker count — so the realized trial
    count is a pure function of the samples and therefore identical at any
    worker count or executor kind.
    """

    target_halfwidth: float
    confidence: float = 0.95
    min_trials: int = 16
    check_every: int = 16
    relative: bool = False

    def __post_init__(self) -> None:
        if not self.target_halfwidth > 0:
            raise ValueError(
                f"target_halfwidth must be > 0, got {self.target_halfwidth}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must lie in (0, 1), got {self.confidence}")
        if self.min_trials < 2:
            raise ValueError(f"min_trials must be >= 2, got {self.min_trials}")
        if self.check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {self.check_every}")
        object.__setattr__(self, "target_halfwidth", float(self.target_halfwidth))
        object.__setattr__(self, "confidence", float(self.confidence))
        object.__setattr__(self, "min_trials", int(self.min_trials))
        object.__setattr__(self, "check_every", int(self.check_every))
        object.__setattr__(self, "relative", bool(self.relative))

    def target_for(self, mean: float) -> float:
        """The absolute half-width target given the running mean."""
        if self.relative:
            return self.target_halfwidth * abs(mean)
        return self.target_halfwidth

    def satisfied(self, moments: MomentSketch) -> bool:
        """Whether the running CI is narrow enough to stop."""
        if moments.count < self.min_trials:
            return False
        return moments.ci_halfwidth(self.confidence) <= self.target_for(moments.mean)

    def as_dict(self) -> dict:
        """Canonical JSON form (also the spec cache-token contribution)."""
        return {
            "target_halfwidth": self.target_halfwidth,
            "confidence": self.confidence,
            "min_trials": self.min_trials,
            "check_every": self.check_every,
            "relative": self.relative,
        }

    # The cache token and the serialized form coincide: every field of the
    # rule changes which trials run, so every field must key the record.
    cache_token = as_dict

    @classmethod
    def from_dict(cls, payload: object) -> "StoppingRule":
        """Parse a rule payload (strict: unknown keys fail)."""
        if not isinstance(payload, dict):
            raise ValueError(
                f"a stopping rule must be a mapping, got {type(payload).__name__}"
            )
        known = {"target_halfwidth", "confidence", "min_trials", "check_every", "relative"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown stopping-rule field(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        if "target_halfwidth" not in payload:
            raise ValueError("a stopping rule needs a target_halfwidth")
        return cls(**payload)
