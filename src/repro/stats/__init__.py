"""repro.stats — streaming statistics for adaptive, store-scale aggregation.

The classical helpers in :mod:`repro.util.stats` operate on fully
materialized sample lists.  This package holds their *streaming* analogues
(:mod:`repro.stats.sequential`): mergeable moment accumulators and
bounded-size quantile sketches that batch records can embed, plus the
sequential :class:`~repro.stats.sequential.StoppingRule` the engine
evaluates between trial chunks.  Invariants: integer-valued streams (the
flooding times) accumulate *exactly* — arbitrary-precision integer sums make
sketch merging associative and byte-stable in any merge order — and the
reservoir streams are seed-derived, so sharded and unsharded runs embed
bit-identical sketches.
"""

from repro.stats.sequential import (
    DEFAULT_RESERVOIR,
    BatchSketch,
    MomentSketch,
    P2Quantile,
    QuantileSketch,
    StoppingRule,
    merge_sketch_payloads,
    quantile_rank_epsilon,
    sketch_from_samples,
    sketch_salt,
    summary_from_sketch,
    whp_from_sketch,
    z_score,
)

__all__ = [
    "DEFAULT_RESERVOIR",
    "BatchSketch",
    "MomentSketch",
    "P2Quantile",
    "QuantileSketch",
    "StoppingRule",
    "merge_sketch_payloads",
    "quantile_rank_epsilon",
    "sketch_from_samples",
    "sketch_salt",
    "summary_from_sketch",
    "whp_from_sketch",
    "z_score",
]
