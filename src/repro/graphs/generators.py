"""Additional mobility-graph generators used in tests and experiments.

Deterministic topology builders (torus, cycle, complete) that back the
analytically tractable cases: their spectral gaps and diameters are known in
closed form, so tests can pin flooding/mixing bounds against exact values
instead of sampled estimates.  All generators return plain ``networkx``
graphs with integer-tuple or integer node labels and take no RNG — any
randomness belongs to the mobility layer, never the topology.
"""

from __future__ import annotations

import networkx as nx


def torus_graph(side: int) -> nx.Graph:
    """A ``side x side`` torus (grid with periodic boundary conditions)."""
    if side < 3:
        raise ValueError(f"a torus needs side >= 3, got {side}")
    return nx.grid_2d_graph(side, side, periodic=True)


def cycle_mobility_graph(length: int) -> nx.Graph:
    """A cycle of ``length`` points."""
    if length < 3:
        raise ValueError(f"a cycle needs at least 3 points, got {length}")
    return nx.cycle_graph(length)


def path_mobility_graph(length: int) -> nx.Graph:
    """A path (line) of ``length`` points — the 1-D mobility space."""
    if length < 2:
        raise ValueError(f"a path needs at least 2 points, got {length}")
    return nx.path_graph(length)


def complete_mobility_graph(num_points: int) -> nx.Graph:
    """The complete graph on ``num_points`` points (uniform jump space)."""
    if num_points < 2:
        raise ValueError(f"a complete graph needs at least 2 points, got {num_points}")
    return nx.complete_graph(num_points)


def star_mobility_graph(num_leaves: int) -> nx.Graph:
    """A star with one hub and ``num_leaves`` leaves.

    The hub is a maximally "busy crossroad", so shortest-path families on the
    star are far from δ-regular for small δ — a useful negative example for
    the δ-regularity condition of Corollary 5.
    """
    if num_leaves < 1:
        raise ValueError(f"a star needs at least 1 leaf, got {num_leaves}")
    return nx.star_graph(num_leaves)


def binary_tree_mobility_graph(depth: int) -> nx.Graph:
    """A complete binary tree of the given depth (root is another busy crossroad)."""
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    return nx.balanced_tree(2, depth)
