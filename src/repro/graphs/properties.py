"""Structural properties of mobility graphs and path families.

These are the quantities that appear in Corollaries 5 and 6: the graph
diameter ``D`` (which controls the mixing time of single-shortest-path
models), degree regularity δ for the random-walk case, and point congestion
``#P(u)`` statistics for arbitrary path families.
"""

from __future__ import annotations

import networkx as nx

from repro.graphs.paths import PathFamily


def diameter(graph: nx.Graph) -> int:
    """Hop diameter of a connected mobility graph."""
    if graph.number_of_nodes() == 0:
        raise ValueError("the graph has no nodes")
    if not nx.is_connected(graph):
        raise ValueError("the graph must be connected to have a finite diameter")
    if graph.number_of_nodes() == 1:
        return 0
    return int(nx.diameter(graph))


def degree_regularity(graph: nx.Graph) -> float:
    """``max degree / min degree`` — the δ of Corollary 6's δ-regular graphs.

    Raises
    ------
    ValueError
        If some vertex is isolated (the ratio would be infinite and the
        random walk from that vertex is frozen).
    """
    degrees = [d for _, d in graph.degree()]
    if not degrees:
        raise ValueError("the graph has no nodes")
    min_degree = min(degrees)
    if min_degree == 0:
        raise ValueError("the graph has an isolated vertex (degree 0)")
    return max(degrees) / min_degree


def path_family_regularity(family: PathFamily) -> float:
    """The smallest δ such that the path family is δ-regular (Corollary 5)."""
    return family.regularity()


def max_point_congestion(family: PathFamily) -> int:
    """``max_u #P(u)`` — the busiest crossroad of the path family."""
    profile = family.congestion_profile()
    return max(profile.values())


def average_point_congestion(family: PathFamily) -> float:
    """``(sum_u #P(u)) / |V|`` — the average crossroad load."""
    profile = family.congestion_profile()
    return sum(profile.values()) / len(profile)


def is_connected(graph: nx.Graph) -> bool:
    """Whether the mobility graph is connected (required by most models)."""
    if graph.number_of_nodes() == 0:
        return False
    return nx.is_connected(graph)
