"""Families of feasible paths for the random-path mobility model.

A random-path model (Section 4.1 of the paper) is a pair ``(H, P)`` where
``H`` is a mobility graph and ``P`` a family of simple paths in ``H`` with the
*chaining* property: for every path ``h`` in ``P`` there is a path in ``P``
starting at the end point of ``h``.  A node travels along a path one edge per
time step; on reaching the end it picks a uniformly random feasible path from
that point, and so on.

The relevant structural quantities are:

* ``P(u)`` — the set of feasible paths starting at point ``u``;
* ``#P(u)`` — the number of feasible paths *passing through* ``u`` (counting
  positions ``2..len(h)``, i.e. excluding each path's start point);
* δ-regularity — ``#P(u) <= δ * (sum_v #P(v)) / |V|`` for all ``u``, the
  "no point is a much busier crossroad than average" condition of
  Corollary 5.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable, Sequence

import networkx as nx

Point = Hashable
Path = tuple


class PathFamily:
    """A family of feasible paths over a mobility graph.

    Parameters
    ----------
    graph:
        The mobility graph ``H(V, A)``.
    paths:
        An iterable of point sequences.  Each path must have at least two
        points, consecutive points must be adjacent in ``H``, and no interior
        point may repeat (the start and end points may coincide, matching the
        paper's definition of a *simple* feasible path).
    """

    def __init__(self, graph: nx.Graph, paths: Iterable[Sequence[Point]]) -> None:
        self._graph = graph
        normalized: list[Path] = []
        for path in paths:
            normalized.append(self._validate_path(graph, tuple(path)))
        if not normalized:
            raise ValueError("a path family must contain at least one path")
        self._paths: tuple[Path, ...] = tuple(normalized)

        self._starting: dict[Point, list[Path]] = defaultdict(list)
        self._through_count: dict[Point, int] = defaultdict(int)
        for path in self._paths:
            self._starting[path[0]].append(path)
            # #P(u) counts occurrences at positions 2..len(h) (1-indexed), i.e.
            # every point of the path except its start.
            for point in path[1:]:
                self._through_count[point] += 1

        self._check_chaining()

    @staticmethod
    def _validate_path(graph: nx.Graph, path: Path) -> Path:
        if len(path) < 2:
            raise ValueError(f"paths must have at least two points, got {path!r}")
        for point in path:
            if point not in graph:
                raise ValueError(f"path point {point!r} is not in the mobility graph")
        for a, b in zip(path, path[1:]):
            if not graph.has_edge(a, b):
                raise ValueError(
                    f"consecutive path points {a!r} and {b!r} are not adjacent in H"
                )
        interior = path[:-1] if path[0] == path[-1] else path
        if len(set(interior)) != len(interior):
            raise ValueError(
                f"path {path!r} revisits a point, so the family is not simple"
            )
        return path

    def _check_chaining(self) -> None:
        for path in self._paths:
            end = path[-1]
            if not self._starting.get(end):
                raise ValueError(
                    f"no feasible path starts at point {end!r}, where a path ends; "
                    "the family violates the chaining property"
                )

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> nx.Graph:
        """The underlying mobility graph ``H``."""
        return self._graph

    @property
    def paths(self) -> tuple[Path, ...]:
        """All feasible paths."""
        return self._paths

    def __len__(self) -> int:
        return len(self._paths)

    def __iter__(self):
        return iter(self._paths)

    def paths_from(self, point: Point) -> tuple[Path, ...]:
        """The set ``P(u)`` of feasible paths starting at ``point``."""
        return tuple(self._starting.get(point, ()))

    def passes_through(self, point: Point) -> int:
        """``#P(u)`` — number of feasible paths passing through ``point``."""
        return self._through_count.get(point, 0)

    def congestion_profile(self) -> dict[Point, int]:
        """``#P(u)`` for every point of the mobility graph (0 when unused)."""
        return {point: self._through_count.get(point, 0) for point in self._graph.nodes()}

    # ------------------------------------------------------------------ #
    # structural predicates used by Corollary 5
    # ------------------------------------------------------------------ #
    def is_reversible(self) -> bool:
        """Whether the reverse of every feasible path is also feasible."""
        path_set = set(self._paths)
        return all(tuple(reversed(path)) in path_set for path in self._paths)

    def regularity(self) -> float:
        """The smallest δ for which the family is δ-regular.

        Returns ``inf`` when some point is traversed but the average is zero
        (which cannot happen for a non-empty family) — in practice this is
        ``max_u #P(u) / avg_v #P(v)``.
        """
        counts = [self._through_count.get(point, 0) for point in self._graph.nodes()]
        average = sum(counts) / len(counts)
        if average == 0:
            return float("inf")
        return max(counts) / average

    def is_delta_regular(self, delta: float) -> bool:
        """Whether ``#P(u) <= delta * average`` holds for every point ``u``."""
        if delta < 1:
            raise ValueError(f"delta must be >= 1, got {delta}")
        return self.regularity() <= delta + 1e-12

    def total_states(self) -> int:
        """Number of states of the induced Markov chain (positions 2..len(h))."""
        return sum(len(path) - 1 for path in self._paths)


def edge_paths(graph: nx.Graph) -> PathFamily:
    """The path family of all single edges (both orientations).

    With this family the random-path model reduces exactly to the random walk
    over ``H`` (one hop per step), and ``#P(u)`` equals the degree of ``u``.
    """
    if graph.number_of_edges() == 0:
        raise ValueError("the mobility graph needs at least one edge")
    paths = []
    for a, b in graph.edges():
        paths.append((a, b))
        paths.append((b, a))
    return PathFamily(graph, paths)


def shortest_path_family(
    graph: nx.Graph, pairs: Iterable[tuple[Point, Point]] | None = None
) -> PathFamily:
    """One shortest path per ordered pair of distinct points (plus reverses).

    This is the basic instance discussed after Corollary 5 ("``H`` is a grid
    and the feasible paths are the shortest ones").  To keep the family
    reversible, for every unordered pair one shortest path is computed and
    both its orientations are included.

    Parameters
    ----------
    graph:
        The mobility graph (must be connected).
    pairs:
        Optional restriction to a subset of unordered point pairs; by default
        all pairs of distinct points are used (quadratic in ``|V|`` — intended
        for the small/medium graphs of the experiments).
    """
    if not nx.is_connected(graph):
        raise ValueError("the mobility graph must be connected")
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise ValueError("the mobility graph needs at least two points")
    if pairs is None:
        pair_list = [
            (nodes[i], nodes[j])
            for i in range(len(nodes))
            for j in range(i + 1, len(nodes))
        ]
    else:
        pair_list = []
        seen = set()
        for a, b in pairs:
            if a == b:
                raise ValueError("pairs must consist of distinct points")
            key = frozenset((a, b))
            if key in seen:
                continue
            seen.add(key)
            pair_list.append((a, b))
        if not pair_list:
            raise ValueError("at least one pair of points is required")
    paths = []
    for a, b in pair_list:
        path = tuple(nx.shortest_path(graph, a, b))
        paths.append(path)
        paths.append(tuple(reversed(path)))
    return PathFamily(graph, paths)


def waypoint_path_family(graph: nx.Graph) -> PathFamily:
    """Alias of :func:`shortest_path_family` over all pairs.

    The "random waypoint over a graph" picks a uniform destination and walks
    a shortest path to it, which is exactly the all-pairs shortest-path
    family.
    """
    return shortest_path_family(graph)
