"""Mobility-graph substrate.

The graph mobility models of the paper (random paths, random walks,
Corollaries 5 and 6) move agents over a fixed *mobility graph* ``H(V, A)``.
This sub-package builds the graphs used in the paper's discussion — grids,
k-augmented grids, tori — together with families of feasible paths and the
structural properties (δ-regularity, diameter, point congestion) that enter
the bounds.
"""

from repro.graphs.generators import (
    complete_mobility_graph,
    cycle_mobility_graph,
    path_mobility_graph,
    torus_graph,
)
from repro.graphs.grid import augmented_grid_graph, grid_graph, grid_side_for_points
from repro.graphs.paths import PathFamily, edge_paths, shortest_path_family
from repro.graphs.properties import (
    degree_regularity,
    diameter,
    max_point_congestion,
    path_family_regularity,
)

__all__ = [
    "PathFamily",
    "augmented_grid_graph",
    "complete_mobility_graph",
    "cycle_mobility_graph",
    "degree_regularity",
    "diameter",
    "edge_paths",
    "grid_graph",
    "grid_side_for_points",
    "max_point_congestion",
    "path_family_regularity",
    "path_mobility_graph",
    "shortest_path_family",
    "torus_graph",
]
