"""Grid and k-augmented-grid mobility graphs.

The k-augmented grid is the example the paper uses to show its random-walk
bound (Corollary 6) beats the meeting-time bound of [15]: take a grid of
``s`` points and connect every pair of points at hop distance at most ``k``.
The meeting time stays ``Theta(s log s)`` while the mixing time of a single
walk drops roughly by a factor ``k**2``.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import networkx as nx
import numpy as np


def grid_graph(side: int, periodic: bool = False) -> nx.Graph:
    """A ``side x side`` grid graph with nodes labelled ``(row, col)``.

    Parameters
    ----------
    side:
        Number of points per dimension (the graph has ``side**2`` points).
    periodic:
        When true, opposite borders are identified (torus).
    """
    if side < 1:
        raise ValueError(f"side must be >= 1, got {side}")
    if side == 1:
        graph = nx.Graph()
        graph.add_node((0, 0))
        return graph
    return nx.grid_2d_graph(side, side, periodic=periodic)


def grid_side_for_points(num_points: int) -> int:
    """Smallest grid side whose square is at least ``num_points``."""
    if num_points < 1:
        raise ValueError(f"num_points must be >= 1, got {num_points}")
    return int(math.ceil(math.sqrt(num_points)))


def augmented_grid_graph(side: int, k: int, periodic: bool = False) -> nx.Graph:
    """The k-augmented grid: grid points joined whenever hop distance <= ``k``.

    For ``k = 1`` this is the plain grid.  Hop distance on the grid is the
    Manhattan (L1) distance between coordinates (with wrap-around when
    ``periodic`` is true), which equals the graph distance of the underlying
    grid graph.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    base = grid_graph(side, periodic=periodic)
    if k == 1:
        return base
    augmented = nx.Graph()
    augmented.add_nodes_from(base.nodes())
    nodes = list(base.nodes())
    for i, (r1, c1) in enumerate(nodes):
        for (r2, c2) in nodes[i + 1 :]:
            dr = abs(r1 - r2)
            dc = abs(c1 - c2)
            if periodic:
                dr = min(dr, side - dr)
                dc = min(dc, side - dc)
            if 0 < dr + dc <= k:
                augmented.add_edge((r1, c1), (r2, c2))
    return augmented


def grid_positions(side: int, spacing: float = 1.0) -> dict[tuple[int, int], tuple[float, float]]:
    """Euclidean coordinates of the grid points (used by geometric models).

    Point ``(row, col)`` is placed at ``(col * spacing, row * spacing)``.
    """
    if side < 1:
        raise ValueError(f"side must be >= 1, got {side}")
    if spacing <= 0:
        raise ValueError(f"spacing must be > 0, got {spacing}")
    return {
        (row, col): (col * spacing, row * spacing)
        for row in range(side)
        for col in range(side)
    }


def manhattan_distance(
    a: tuple[int, int], b: tuple[int, int], side: int | None = None
) -> int:
    """L1 distance between two grid points (wrap-around when ``side`` given)."""
    dr = abs(a[0] - b[0])
    dc = abs(a[1] - b[1])
    if side is not None:
        if side < 1:
            raise ValueError(f"side must be >= 1, got {side}")
        dr = min(dr, side - dr)
        dc = min(dc, side - dc)
    return dr + dc


def hop_ball_matrix(
    graph: nx.Graph, radius_hops: int, nodes: Optional[Iterable] = None
) -> np.ndarray:
    """Boolean matrix ``B[i, j]`` = hop distance of ``nodes[i]``, ``nodes[j]`` <= radius.

    This is the adjacency fast path of the grid / augmented-grid mobility
    models: with the point-level ball relation precomputed as one boolean
    matrix, a snapshot adjacency over ``n`` agents is a single fancy-indexing
    gather ``B[ix_(points, points)]`` instead of a per-agent ball scan.
    ``radius_hops = 0`` yields the co-location relation (the identity).
    """
    if radius_hops < 0:
        raise ValueError(f"radius_hops must be >= 0, got {radius_hops}")
    node_list = list(graph.nodes()) if nodes is None else list(nodes)
    index = {point: i for i, point in enumerate(node_list)}
    matrix = np.zeros((len(node_list), len(node_list)), dtype=bool)
    for i, point in enumerate(node_list):
        if radius_hops == 0:
            matrix[i, i] = True
            continue
        for other in nodes_within_hops(graph, point, radius_hops):
            j = index.get(other)
            if j is not None:
                matrix[i, j] = True
    return matrix


def nodes_within_hops(
    graph: nx.Graph, source, max_hops: int
) -> set:
    """All nodes whose graph distance from ``source`` is at most ``max_hops``.

    Used by the graph connection rule where the transmission radius ``r`` is
    measured in hops of the mobility graph.
    """
    if max_hops < 0:
        raise ValueError(f"max_hops must be >= 0, got {max_hops}")
    lengths = nx.single_source_shortest_path_length(graph, source, cutoff=max_hops)
    return set(lengths.keys())
