"""Trajectory sampling for finite Markov chains.

Node-MEG simulations evolve ``n`` independent copies of the same chain; the
vectorised helpers here avoid per-node Python loops where possible.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

import numpy as np

from repro.markov.chain import MarkovChain
from repro.util.rng import RNGLike, ensure_rng


def sample_path(
    chain: MarkovChain,
    length: int,
    initial_state: Optional[Hashable] = None,
    rng: RNGLike = None,
) -> list[Hashable]:
    """Sample a trajectory of ``length`` states (including the initial one).

    When ``initial_state`` is ``None`` the trajectory starts from the
    stationary distribution, which is how the paper's "stationary MEG"
    processes are initialised.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    generator = ensure_rng(rng)
    if initial_state is None:
        current = chain.state_index(chain.sample_stationary(generator))
    else:
        current = chain.state_index(initial_state)
    cumulative = np.cumsum(chain.transition_matrix, axis=1)
    path = [current]
    for _ in range(length - 1):
        u = generator.random()
        current = int(np.searchsorted(cumulative[current], u, side="right"))
        current = min(current, chain.num_states - 1)
        path.append(current)
    states = chain.states
    return [states[i] for i in path]


def sample_states(
    chain: MarkovChain,
    state_indices: np.ndarray,
    rng: np.random.Generator,
    cumulative: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Advance many independent walkers of the same chain by one step.

    Parameters
    ----------
    chain:
        The common chain.
    state_indices:
        Integer array of current state indices (one entry per walker).
    rng:
        NumPy generator.
    cumulative:
        Optional precomputed ``np.cumsum(P, axis=1)`` to avoid recomputing it
        every step; pass the result of a previous call for speed.

    Returns
    -------
    numpy.ndarray
        The next state index of every walker.
    """
    indices = np.asarray(state_indices, dtype=int)
    if indices.ndim != 1:
        raise ValueError("state_indices must be a 1-D integer array")
    if indices.size and (indices.min() < 0 or indices.max() >= chain.num_states):
        raise ValueError("state index out of range")
    if cumulative is None:
        cumulative = np.cumsum(chain.transition_matrix, axis=1)
    u = rng.random(indices.size)
    rows = cumulative[indices]
    nxt = (rows < u[:, None]).sum(axis=1)
    return np.minimum(nxt, chain.num_states - 1)


def sample_stationary_state(
    chain: MarkovChain, count: int, rng: RNGLike = None
) -> np.ndarray:
    """Sample ``count`` i.i.d. state indices from the stationary distribution."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    generator = ensure_rng(rng)
    pi = chain.stationary_distribution()
    return generator.choice(chain.num_states, size=count, p=pi)


def empirical_state_distribution(
    chain: MarkovChain, samples: Sequence[Hashable]
) -> np.ndarray:
    """Empirical distribution (over matrix order) of observed state labels."""
    counts = np.zeros(chain.num_states)
    for state in samples:
        counts[chain.state_index(state)] += 1
    total = counts.sum()
    if total == 0:
        raise ValueError("cannot build a distribution from zero samples")
    return counts / total
