"""A finite Markov chain with explicit transition matrix.

The node-MEG construction of the paper (Section 4) associates to every node
an independent copy of a finite chain ``M = (S, P)``; the flooding-time bound
of Theorem 3 then depends on the mixing time of that chain.  This module
provides the chain object that the rest of the library builds upon.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence

import numpy as np

from repro.util.mathutils import total_variation_distance
from repro.util.rng import RNGLike, ensure_rng

_STATIONARY_TOL = 1e-10


class MarkovChain:
    """A finite, time-homogeneous Markov chain.

    Parameters
    ----------
    transition_matrix:
        A square row-stochastic matrix ``P`` where ``P[i, j]`` is the
        probability of moving from state ``i`` to state ``j``.
    states:
        Optional hashable labels for the states.  Defaults to ``0..k-1``.
        Labels are useful when states encode structured information (for
        example ``(path, position)`` pairs in the random-path model).

    Notes
    -----
    The chain does not need to be irreducible or aperiodic to be constructed,
    but :meth:`stationary_distribution` and the mixing-time helpers raise a
    ``ValueError`` when a unique stationary distribution does not exist.
    """

    def __init__(
        self,
        transition_matrix: Sequence[Sequence[float]] | np.ndarray,
        states: Optional[Sequence[Hashable]] = None,
    ) -> None:
        matrix = np.asarray(transition_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(
                f"transition matrix must be square, got shape {matrix.shape}"
            )
        if matrix.shape[0] == 0:
            raise ValueError("transition matrix must have at least one state")
        if np.any(matrix < -1e-12):
            raise ValueError("transition probabilities must be non-negative")
        row_sums = matrix.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-8):
            bad = int(np.argmax(np.abs(row_sums - 1.0)))
            raise ValueError(
                f"row {bad} of the transition matrix sums to {row_sums[bad]:.6f}, not 1"
            )
        # Renormalise tiny numerical drift so long products stay stochastic.
        self._matrix = np.clip(matrix, 0.0, 1.0)
        self._matrix /= self._matrix.sum(axis=1, keepdims=True)

        k = matrix.shape[0]
        if states is None:
            self._states: tuple[Hashable, ...] = tuple(range(k))
        else:
            states = tuple(states)
            if len(states) != k:
                raise ValueError(
                    f"got {len(states)} state labels for a {k}-state matrix"
                )
            if len(set(states)) != len(states):
                raise ValueError("state labels must be unique")
            self._states = states
        self._index = {state: i for i, state in enumerate(self._states)}
        self._stationary_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_states(self) -> int:
        """Number of states of the chain."""
        return self._matrix.shape[0]

    @property
    def states(self) -> tuple[Hashable, ...]:
        """The state labels, in matrix order."""
        return self._states

    @property
    def transition_matrix(self) -> np.ndarray:
        """A copy of the row-stochastic transition matrix."""
        return self._matrix.copy()

    def state_index(self, state: Hashable) -> int:
        """Return the row/column index of a state label."""
        try:
            return self._index[state]
        except KeyError:
            raise KeyError(f"unknown state {state!r}") from None

    def transition_probability(self, source: Hashable, target: Hashable) -> float:
        """Probability of a one-step transition ``source -> target``."""
        return float(self._matrix[self.state_index(source), self.state_index(target)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MarkovChain(num_states={self.num_states})"

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def is_irreducible(self) -> bool:
        """Whether every state can reach every other state."""
        import networkx as nx

        graph = nx.from_numpy_array(
            (self._matrix > 0).astype(float), create_using=nx.DiGraph
        )
        return nx.is_strongly_connected(graph)

    def is_aperiodic(self) -> bool:
        """Whether the chain is aperiodic (gcd of cycle lengths equals one)."""
        import networkx as nx

        graph = nx.from_numpy_array(
            (self._matrix > 0).astype(float), create_using=nx.DiGraph
        )
        return nx.is_aperiodic(graph)

    def is_ergodic(self) -> bool:
        """Whether the chain is both irreducible and aperiodic."""
        return self.is_irreducible() and self.is_aperiodic()

    def is_reversible(self, atol: float = 1e-9) -> bool:
        """Whether the chain satisfies detailed balance w.r.t. its stationary law."""
        pi = self.stationary_distribution()
        flows = pi[:, None] * self._matrix
        return bool(np.allclose(flows, flows.T, atol=atol))

    # ------------------------------------------------------------------ #
    # distributions
    # ------------------------------------------------------------------ #
    def stationary_distribution(self) -> np.ndarray:
        """The unique stationary distribution ``pi`` with ``pi P = pi``.

        Raises
        ------
        ValueError
            If the chain does not admit a unique stationary distribution
            (for example when it is reducible).
        """
        if self._stationary_cache is not None:
            return self._stationary_cache.copy()
        # Solve pi (P - I) = 0 with the normalisation sum(pi) = 1 via a
        # least-squares system; check uniqueness through the eigenvalue
        # multiplicity of 1.
        matrix = self._matrix
        k = self.num_states
        eigvals = np.linalg.eigvals(matrix.T)
        ones = np.isclose(eigvals, 1.0, atol=1e-8)
        if ones.sum() != 1:
            raise ValueError(
                "the chain does not have a unique stationary distribution "
                f"(eigenvalue 1 has multiplicity {int(ones.sum())})"
            )
        a = np.vstack([matrix.T - np.eye(k), np.ones((1, k))])
        b = np.zeros(k + 1)
        b[-1] = 1.0
        pi, *_ = np.linalg.lstsq(a, b, rcond=None)
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if total <= 0:
            raise ValueError("failed to compute a stationary distribution")
        pi = pi / total
        residual = np.abs(pi @ matrix - pi).max()
        if residual > 1e-6:
            raise ValueError(
                f"stationary distribution residual too large ({residual:.2e})"
            )
        self._stationary_cache = pi
        return pi.copy()

    def stationary_probability(self, state: Hashable) -> float:
        """Stationary probability of a single state label."""
        return float(self.stationary_distribution()[self.state_index(state)])

    def distribution_after(
        self, initial: Sequence[float] | np.ndarray, steps: int
    ) -> np.ndarray:
        """Distribution after ``steps`` steps starting from ``initial``."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        dist = np.asarray(initial, dtype=float)
        if dist.shape != (self.num_states,):
            raise ValueError(
                f"initial distribution must have length {self.num_states}, "
                f"got shape {dist.shape}"
            )
        if np.any(dist < 0) or not np.isclose(dist.sum(), 1.0, atol=1e-8):
            raise ValueError("initial distribution must be a probability vector")
        for _ in range(steps):
            dist = dist @ self._matrix
        return dist

    def tv_distance_to_stationarity(
        self, initial: Sequence[float] | np.ndarray, steps: int
    ) -> float:
        """Total-variation distance to ``pi`` after ``steps`` steps from ``initial``."""
        return total_variation_distance(
            self.distribution_after(initial, steps), self.stationary_distribution()
        )

    # ------------------------------------------------------------------ #
    # simulation
    # ------------------------------------------------------------------ #
    def step(self, state: Hashable, rng: RNGLike = None) -> Hashable:
        """Sample the next state from ``state``."""
        generator = ensure_rng(rng)
        row = self._matrix[self.state_index(state)]
        next_index = generator.choice(self.num_states, p=row)
        return self._states[next_index]

    def step_index(self, state_index: int, rng: np.random.Generator) -> int:
        """Sample the next state *index* (fast path used by the simulators)."""
        row = self._matrix[state_index]
        return int(rng.choice(self.num_states, p=row))

    def sample_stationary(self, rng: RNGLike = None) -> Hashable:
        """Sample a state label from the stationary distribution."""
        generator = ensure_rng(rng)
        pi = self.stationary_distribution()
        return self._states[int(generator.choice(self.num_states, p=pi))]

    # ------------------------------------------------------------------ #
    # composition
    # ------------------------------------------------------------------ #
    def lazy(self, holding_probability: float = 0.5) -> "MarkovChain":
        """Return the lazy version ``(1-h) P + h I`` of the chain.

        Lazy chains are aperiodic by construction, which is convenient when
        the base chain (for example a walk on a bipartite graph) is periodic.
        """
        if not 0.0 <= holding_probability < 1.0:
            raise ValueError(
                f"holding probability must lie in [0, 1), got {holding_probability}"
            )
        matrix = (1.0 - holding_probability) * self._matrix + holding_probability * np.eye(
            self.num_states
        )
        return MarkovChain(matrix, states=self._states)

    def kron_product(self, other: "MarkovChain") -> "MarkovChain":
        """Product chain of two independent chains (states are label pairs)."""
        matrix = np.kron(self._matrix, other._matrix)
        states = tuple((a, b) for a in self._states for b in other._states)
        return MarkovChain(matrix, states=states)

    @classmethod
    def from_edge_weights(
        cls,
        weights: dict[tuple[Hashable, Hashable], float],
        states: Optional[Iterable[Hashable]] = None,
    ) -> "MarkovChain":
        """Build a chain from a dict of ``(source, target) -> weight`` entries.

        Weights of outgoing edges are normalised per source state.  States
        with no outgoing weight become absorbing.
        """
        if states is None:
            found: list[Hashable] = []
            for (src, dst) in weights:
                if src not in found:
                    found.append(src)
                if dst not in found:
                    found.append(dst)
            state_list = found
        else:
            state_list = list(states)
        index = {s: i for i, s in enumerate(state_list)}
        k = len(state_list)
        matrix = np.zeros((k, k))
        for (src, dst), weight in weights.items():
            if weight < 0:
                raise ValueError(f"negative weight for edge {(src, dst)!r}")
            matrix[index[src], index[dst]] += weight
        row_sums = matrix.sum(axis=1)
        for i in range(k):
            if row_sums[i] <= 0:
                matrix[i, i] = 1.0
            else:
                matrix[i] /= row_sums[i]
        return cls(matrix, states=state_list)
