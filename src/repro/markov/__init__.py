"""Finite Markov-chain substrate.

Every model in the paper — edge-MEGs, node-MEGs, mobility models — is driven
by a finite Markov chain whose mixing time enters the flooding-time bounds.
This sub-package provides:

* :class:`repro.markov.chain.MarkovChain` — a finite chain with stationary
  distribution, reversibility checks and stepping;
* :mod:`repro.markov.mixing` — exact total-variation mixing times and
  spectral-gap estimates;
* :mod:`repro.markov.sampling` — trajectory sampling utilities;
* :mod:`repro.markov.builders` — constructors for the chains used throughout
  the paper (two-state edge chains, lazy random walks on graphs, cycles,
  grids, product chains).
"""

from repro.markov.builders import (
    birth_death_chain,
    complete_graph_walk,
    cycle_walk,
    four_state_edge_chain,
    lazy_random_walk,
    random_walk_on_graph,
    two_state_chain,
    uniform_chain,
)
from repro.markov.chain import MarkovChain
from repro.markov.mixing import (
    mixing_time,
    relaxation_time,
    spectral_gap,
    tv_distance_from_stationarity,
)
from repro.markov.sampling import sample_path, sample_stationary_state, sample_states

__all__ = [
    "MarkovChain",
    "birth_death_chain",
    "complete_graph_walk",
    "cycle_walk",
    "four_state_edge_chain",
    "lazy_random_walk",
    "mixing_time",
    "random_walk_on_graph",
    "relaxation_time",
    "sample_path",
    "sample_states",
    "sample_stationary_state",
    "spectral_gap",
    "tv_distance_from_stationarity",
    "two_state_chain",
    "uniform_chain",
]
