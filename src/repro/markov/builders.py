"""Constructors for the Markov chains used throughout the paper.

These cover the concrete chains that appear in the models we reproduce:

* the two-state (birth/death) chain driving every edge of the classic
  edge-MEG of [10] (Appendix A of the paper);
* random walks (plain and lazy) on arbitrary mobility graphs — the driver of
  the random-walk mobility model and of Corollary 6;
* walks on standard topologies (cycle, complete graph) used in tests and in
  the generalised edge-MEG experiments;
* uniform/birth-death chains used as simple hidden chains.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import networkx as nx
import numpy as np

from repro.markov.chain import MarkovChain
from repro.util.validation import require_probability


def two_state_chain(p: float, q: float) -> MarkovChain:
    """The edge chain of the classic edge-MEG: states ``'off'`` and ``'on'``.

    ``p`` is the birth rate (off -> on) and ``q`` the death rate (on -> off).
    Its stationary distribution is ``(q/(p+q), p/(p+q))`` and its mixing time
    is ``Theta(1/(p+q))`` — exactly the quantities the Appendix-A bound uses.
    """
    require_probability(p, "p")
    require_probability(q, "q")
    if p == 0.0 and q == 0.0:
        raise ValueError("p and q cannot both be zero (the chain would be frozen)")
    matrix = np.array([[1.0 - p, p], [q, 1.0 - q]])
    return MarkovChain(matrix, states=("off", "on"))


def uniform_chain(num_states: int, states: Sequence[Hashable] | None = None) -> MarkovChain:
    """A chain that jumps to a uniformly random state at every step.

    Mixing time 1; used as the simplest possible hidden chain (it makes a
    node-MEG or general edge-MEG behave like an i.i.d. sequence of graphs).
    """
    if num_states < 1:
        raise ValueError(f"num_states must be >= 1, got {num_states}")
    matrix = np.full((num_states, num_states), 1.0 / num_states)
    return MarkovChain(matrix, states=states)


def birth_death_chain(probabilities_up: Sequence[float], probabilities_down: Sequence[float]) -> MarkovChain:
    """A birth–death chain on ``0..k-1`` with given up/down probabilities.

    ``probabilities_up[i]`` is the probability of moving ``i -> i+1`` (must be
    0 for the last state) and ``probabilities_down[i]`` of moving ``i -> i-1``
    (must be 0 for state 0); the remainder is the holding probability.  Used
    as an example of a non-trivial hidden edge chain in the generalised
    edge-MEG experiments.
    """
    up = [require_probability(x, "probabilities_up") for x in probabilities_up]
    down = [require_probability(x, "probabilities_down") for x in probabilities_down]
    if len(up) != len(down):
        raise ValueError("up and down probability lists must have equal length")
    k = len(up)
    if k < 1:
        raise ValueError("the chain needs at least one state")
    if up[-1] != 0.0:
        raise ValueError("the last state cannot move up")
    if down[0] != 0.0:
        raise ValueError("state 0 cannot move down")
    matrix = np.zeros((k, k))
    for i in range(k):
        stay = 1.0 - up[i] - down[i]
        if stay < -1e-12:
            raise ValueError(f"up and down probabilities at state {i} exceed 1")
        matrix[i, i] = max(stay, 0.0)
        if i + 1 < k:
            matrix[i, i + 1] = up[i]
        if i - 1 >= 0:
            matrix[i, i - 1] = down[i]
    return MarkovChain(matrix)


def four_state_edge_chain(
    p_up: float,
    p_down: float,
    p_stabilize: float,
    p_destabilize: float,
) -> MarkovChain:
    """The four-state per-edge chain of the refined edge-MEG of [5].

    The paper notes that a four-state refinement of the classic on/off edge
    chain was introduced in [5] to capture *heterogeneous* link behaviour:
    links that have recently changed state are volatile, links that have kept
    their state for a while become stable (heavy-tailed inter-contact times).
    The states are::

        'off-stable'   -- down, unlikely to come up soon
        'off-volatile' -- down, likely to come up
        'on-volatile'  -- up, likely to go down
        'on-stable'    -- up, likely to stay up

    Parameters
    ----------
    p_up:
        Probability that a volatile down link comes up at a step.
    p_down:
        Probability that a volatile up link goes down at a step.
    p_stabilize:
        Probability that a volatile link (up or down) becomes stable.
    p_destabilize:
        Probability that a stable link (up or down) becomes volatile.

    The returned chain pairs with ``chi = (0, 0, 1, 1)`` in
    :class:`repro.meg.edge_meg.GeneralEdgeMEG`.
    """
    for name, value in (
        ("p_up", p_up),
        ("p_down", p_down),
        ("p_stabilize", p_stabilize),
        ("p_destabilize", p_destabilize),
    ):
        require_probability(value, name)
    if p_up + p_stabilize > 1.0 or p_down + p_stabilize > 1.0:
        raise ValueError("p_up/p_down plus p_stabilize must not exceed 1")
    if p_up == 0.0 or p_down == 0.0 or p_destabilize == 0.0:
        raise ValueError(
            "p_up, p_down and p_destabilize must be positive for the chain to have "
            "a unique stationary distribution"
        )
    states = ("off-stable", "off-volatile", "on-volatile", "on-stable")
    matrix = np.array(
        [
            # off-stable: wake up into the volatile down state or stay.
            [1.0 - p_destabilize, p_destabilize, 0.0, 0.0],
            # off-volatile: come up, calm down into off-stable, or stay.
            [p_stabilize, 1.0 - p_up - p_stabilize, p_up, 0.0],
            # on-volatile: go down, calm down into on-stable, or stay.
            [0.0, p_down, 1.0 - p_down - p_stabilize, p_stabilize],
            # on-stable: become volatile again or stay.
            [0.0, 0.0, p_destabilize, 1.0 - p_destabilize],
        ]
    )
    return MarkovChain(matrix, states=states)


def random_walk_on_graph(graph: nx.Graph) -> MarkovChain:
    """Simple random walk on ``graph``: move to a uniformly random neighbour.

    Isolated vertices become absorbing (self-loop with probability 1).  The
    states of the chain are the graph's node labels.
    """
    nodes = list(graph.nodes())
    if not nodes:
        raise ValueError("graph must have at least one node")
    index = {node: i for i, node in enumerate(nodes)}
    k = len(nodes)
    matrix = np.zeros((k, k))
    for node in nodes:
        neighbors = list(graph.neighbors(node))
        i = index[node]
        if not neighbors:
            matrix[i, i] = 1.0
            continue
        share = 1.0 / len(neighbors)
        for neighbor in neighbors:
            matrix[i, index[neighbor]] += share
    return MarkovChain(matrix, states=nodes)


def lazy_random_walk(graph: nx.Graph, holding_probability: float = 0.5) -> MarkovChain:
    """Lazy random walk on ``graph`` (stays put with ``holding_probability``).

    Lazy walks are aperiodic even on bipartite graphs such as grids, so their
    mixing time is always finite; this is the walk used by the random-walk
    mobility model in the experiments.
    """
    return random_walk_on_graph(graph).lazy(holding_probability)


def cycle_walk(length: int, lazy: bool = True) -> MarkovChain:
    """Random walk on a cycle of ``length`` vertices (lazy by default)."""
    if length < 3:
        raise ValueError(f"a cycle needs at least 3 vertices, got {length}")
    graph = nx.cycle_graph(length)
    walk = random_walk_on_graph(graph)
    return walk.lazy() if lazy else walk


def complete_graph_walk(num_vertices: int) -> MarkovChain:
    """Random walk on the complete graph ``K_n`` (jump to a uniform other vertex)."""
    if num_vertices < 2:
        raise ValueError(f"the complete graph needs at least 2 vertices, got {num_vertices}")
    graph = nx.complete_graph(num_vertices)
    return random_walk_on_graph(graph)


def grid_walk(side: int, lazy: bool = True, torus: bool = False) -> MarkovChain:
    """Random walk on a ``side x side`` grid (or torus), lazy by default.

    This is the positional chain of the random-walk mobility model on the
    ``m x m`` grid described in the paper's introduction.
    """
    if side < 2:
        raise ValueError(f"grid side must be >= 2, got {side}")
    if torus:
        graph = nx.grid_2d_graph(side, side, periodic=True)
    else:
        graph = nx.grid_2d_graph(side, side)
    walk = random_walk_on_graph(graph)
    return walk.lazy() if lazy else walk
