"""Mixing-time computations for finite Markov chains.

Theorem 1 consumes an epoch length ``M`` that is at least the mixing time of
the dynamic-graph process, and Theorem 3 consumes the mixing time of the
per-node chain.  For the explicit finite chains built by this library the
mixing time can be computed exactly (worst-case total-variation distance over
deterministic starting states), and bounded via the spectral gap for
reversible chains.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.markov.chain import MarkovChain
from repro.util.mathutils import total_variation_distance

DEFAULT_EPSILON = 0.25


def tv_distance_from_stationarity(chain: MarkovChain, steps: int) -> float:
    """Worst-case total-variation distance to stationarity after ``steps`` steps.

    The maximum is taken over deterministic (point-mass) initial states, which
    by convexity is the maximum over all initial distributions.
    """
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    pi = chain.stationary_distribution()
    power = np.linalg.matrix_power(chain.transition_matrix, steps)
    distances = 0.5 * np.abs(power - pi[None, :]).sum(axis=1)
    return float(distances.max())


def mixing_time(
    chain: MarkovChain,
    epsilon: float = DEFAULT_EPSILON,
    max_steps: Optional[int] = None,
) -> int:
    """Exact ``epsilon``-mixing time ``min{t : d(t) <= epsilon}``.

    ``d(t)`` is the worst-case total-variation distance after ``t`` steps.
    Doubling search keeps the number of matrix powers logarithmic in the
    answer.

    Raises
    ------
    ValueError
        If ``epsilon`` is not in ``(0, 1)`` or the chain fails to mix within
        ``max_steps`` steps (default ``16 * num_states**2 + 64``, a safe cap
        for the chains used in this library).
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    if max_steps is None:
        max_steps = 16 * chain.num_states**2 + 64

    if tv_distance_from_stationarity(chain, 0) <= epsilon:
        return 0

    # Doubling phase: find an upper bound on the mixing time.
    upper = 1
    while tv_distance_from_stationarity(chain, upper) > epsilon:
        upper *= 2
        if upper > max_steps:
            raise ValueError(
                f"chain did not mix to epsilon={epsilon} within {max_steps} steps"
            )
    # Binary-search phase on [upper // 2 + 1, upper].
    low, high = upper // 2, upper
    while high - low > 1:
        mid = (low + high) // 2
        if tv_distance_from_stationarity(chain, mid) <= epsilon:
            high = mid
        else:
            low = mid
    return high


def spectral_gap(chain: MarkovChain) -> float:
    """Absolute spectral gap ``1 - max(|lambda_2|, |lambda_k|)``.

    Meaningful primarily for reversible chains, where it controls the
    relaxation time; for non-reversible chains the value is still returned
    (based on eigenvalue magnitudes) but should be interpreted with care.
    """
    eigvals = np.linalg.eigvals(chain.transition_matrix)
    magnitudes = np.sort(np.abs(eigvals))[::-1]
    if magnitudes.size == 1:
        return 1.0
    second = float(magnitudes[1])
    return max(0.0, 1.0 - second)


def relaxation_time(chain: MarkovChain) -> float:
    """Relaxation time ``1 / spectral_gap`` (``inf`` when the gap vanishes)."""
    gap = spectral_gap(chain)
    if gap <= 0.0:
        return math.inf
    return 1.0 / gap


def mixing_time_upper_bound_from_gap(
    chain: MarkovChain, epsilon: float = DEFAULT_EPSILON
) -> float:
    """Classical reversible-chain bound ``t_mix <= t_rel * log(1/(eps*pi_min))``."""
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    pi = chain.stationary_distribution()
    pi_min = float(pi.min())
    if pi_min <= 0:
        return math.inf
    t_rel = relaxation_time(chain)
    if math.isinf(t_rel):
        return math.inf
    return t_rel * math.log(1.0 / (epsilon * pi_min))


def epoch_length_for_accuracy(
    chain: MarkovChain, accuracy: float, max_steps: Optional[int] = None
) -> int:
    """Smallest ``t`` with worst-case TV distance at most ``accuracy``.

    Theorem 3's proof uses epochs of length
    ``T_mix * log(2n / P_NM^2)`` so that each node's state is within
    ``P_NM^2 / (2n)`` of stationarity at every epoch boundary.  This helper
    computes that epoch length exactly for explicit chains.
    """
    if not 0.0 < accuracy < 1.0:
        raise ValueError(f"accuracy must lie in (0, 1), got {accuracy}")
    return mixing_time(chain, epsilon=accuracy, max_steps=max_steps)


def empirical_mixing_time(
    chain: MarkovChain,
    epsilon: float = DEFAULT_EPSILON,
    initial_state: Optional[int] = None,
    max_steps: Optional[int] = None,
) -> int:
    """Mixing time from one specific starting state instead of the worst case."""
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    if max_steps is None:
        max_steps = 16 * chain.num_states**2 + 64
    k = chain.num_states
    if initial_state is None:
        initial_state = 0
    if not 0 <= initial_state < k:
        raise ValueError(f"initial_state must be in [0, {k}), got {initial_state}")
    dist = np.zeros(k)
    dist[initial_state] = 1.0
    pi = chain.stationary_distribution()
    matrix = chain.transition_matrix
    for t in range(max_steps + 1):
        if total_variation_distance(dist, pi) <= epsilon:
            return t
        dist = dist @ matrix
    raise ValueError(
        f"chain did not mix from state {initial_state} within {max_steps} steps"
    )
