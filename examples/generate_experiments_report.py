#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: run every registered experiment and record the tables.

This is the script that produced the EXPERIMENTS.md checked into the
repository.  It runs the full registry (E1–E10) at the chosen scale, renders
each report as a markdown table, and prepends the per-experiment
"paper claim vs. what we measure" commentary.

Run with::

    python examples/generate_experiments_report.py            # small scale, ~1 minute
    python examples/generate_experiments_report.py --scale full --output EXPERIMENTS.md
    python examples/generate_experiments_report.py --results-dir .repro-results --workers 4

Every experiment executes through the engine pipeline, so ``--workers`` fans
trials over a process pool and ``--results-dir`` attaches a persistent result
store: an interrupted generation resumes from the records already stored, and
re-generating against a warm store replays without simulating.
"""

from __future__ import annotations

import argparse
import os

from repro.engine import Engine, ResultStore
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import format_markdown

# What the paper claims for each experiment and what the reproduction checks.
PAPER_CLAIMS: dict[str, str] = {
    "E1": (
        "**Paper claim (Theorem 1).** Any (M, α, β)-stationary dynamic graph floods in "
        "O(M (1/(nα) + β)² log² n) w.h.p.  **Measured.** On a sparse stationary edge-MEG "
        "(α ≈ 1/n, β = 1) the bound dominates every measured point and grows at least as "
        "fast as the measurement in n; the measured growth is close to logarithmic, i.e. "
        "the bound's shape is respected with room to spare (its constant is set to 1)."
    ),
    "E2": (
        "**Paper claim (Theorem 3).** A node-MEG with P_NM ≥ 1/poly(n) and P_NM2 ≤ η P_NM² "
        "floods in O(T_mix (1/(n P_NM) + η)² log³ n).  **Measured.** For the co-location "
        "node-MEG the exact η is ≈ 1, the bound dominates the measurement at every n, and "
        "flooding gets faster as the population grows at fixed meeting-space size."
    ),
    "E3": (
        "**Paper claim (Corollary 4 / Section 4.1).** First flooding bound for the random "
        "waypoint: O((L/v_max)(L²/(n r²) + 1)² log³ n); in the sparse regime L ~ √n, r = Θ(1) "
        "this is Õ(√n / v_max), almost matching the Ω(√n / v_max) lower bound.  **Measured.** "
        "The log-log slope of flooding time vs n is ≈ 0.5 and the measured time stays within a "
        "small constant factor of the trivial lower bound — the bound is tight in shape."
    ),
    "E4": (
        "**Paper claim (Introduction).** The random-walk model is the well-understood baseline "
        "(prior work gives almost tight Õ(√n) bounds via ad-hoc arguments).  **Measured.** Our "
        "simulator reproduces the expected behaviour (flooding time grows with the grid side and "
        "respects the geometric lower bound), validating the harness used for the other models."
    ),
    "E5": (
        "**Paper claim (Corollary 5).** Simple, reversible, δ-regular random-path models flood in "
        "O(T_mix (|V|/n + δ³)² log³ n); with unique shortest paths on a grid this is O(D polylog n). "
        "**Measured.** The all-pairs shortest-path family on grids has small δ, the measured "
        "flooding time grows roughly linearly with the diameter and stays below the bound."
    ),
    "E6": (
        "**Paper claim (Corollary 6).** For random walks on δ-regular graphs the bound is driven by "
        "the single-walk mixing time, improving on the meeting-time bound of [15] on k-augmented "
        "grids (mixing time falls ~1/k² while the meeting time stays ~Θ(s log s)).  **Measured.** "
        "The mixing time drops by a much larger factor than the Monte-Carlo meeting time as k grows, "
        "and the measured flooding time falls with k — the who-wins comparison goes to the paper."
    ),
    "E7": (
        "**Paper claim (Appendix A).** Generalised edge-MEGs flood in O(T_mix (1/(nα) + 1)² log² n); "
        "for the classic (p, q) model this is almost tight versus the O(log n / log(1+np)) bound of "
        "[10] whenever q ≳ np.  **Measured.** Both bounds dominate the measurement, the measured time "
        "decreases in p, and inside the q ≥ np region the two bounds agree up to a polylog factor."
    ),
    "E8": (
        "**Paper claim (Section 5).** Randomised protocols that transmit to a random subset of "
        "neighbours reduce to flooding on a virtual dynamic graph with a subset of the edges.  "
        "**Measured.** Dropping each contact independently with probability 1/2 (push gossip / SI "
        "epidemic) slows completion by only a small constant factor, as the reduction predicts."
    ),
    "E9": (
        "**Paper claim (Lemmas 9–11).** The per-epoch expansion quantities deg_{i,A}, deg_{A,B} and "
        "spread_A^T concentrate around their means (Paley–Zygmund / Chernoff machinery).  "
        "**Measured.** The empirical means track the independent-edge predictions and the lower "
        "quantiles do not collapse, which is exactly the concentration the proof needs."
    ),
    "E10": (
        "**Paper claim (Fact 2, Lemma 15, Corollary 4).** The abstract density/independence "
        "conditions reduce to checkable properties: P_NM/P_NM2 for node-MEGs and the positional "
        "density conditions (a)/(b) for geometric models; the waypoint density satisfies them with "
        "absolute constants.  **Measured.** The analytic and empirical waypoint densities give "
        "δ ≈ 2.25 and a constant λ; Monte-Carlo estimates of α and of the pairwise-correlation ratio "
        "agree with the exact values and sit far below the conservative 17η constant."
    ),
}

HEADER = """# EXPERIMENTS — paper vs. measured

The paper (PODC 2012) is a theory paper: its evaluation consists of the
flooding-time bounds of Theorem 1, Theorem 3, Corollaries 4–6 and Appendix A,
together with explicit comparisons against prior bounds ([10] for edge-MEGs,
[15] for random-walk mobility).  Each experiment below regenerates one of
those results as a finite-size simulation; the tables were produced by
`python examples/generate_experiments_report.py` (scale = "{scale}", seed = {seed})
and the same sweeps run as assertions in `benchmarks/`.

Absolute numbers are not expected to match the paper (which reports none);
what is reproduced is the *shape* of every claim: which bound dominates,
how measured flooding times scale, and where the crossovers fall.  Bound
formulas are evaluated with their implicit constants set to 1.

"""


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "full"), default="small")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "EXPERIMENTS.md"),
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the trial engine (1 = in-process)",
    )
    parser.add_argument(
        "--results-dir", default=None,
        help="persistent result store: resume interrupted generations and "
             "replay warm re-runs without simulating",
    )
    args = parser.parse_args()

    store = ResultStore(args.results_dir) if args.results_dir else None
    engine = Engine(workers=args.workers, store=store)
    sections = [HEADER.format(scale=args.scale, seed=args.seed)]
    for experiment_id in sorted(EXPERIMENTS, key=lambda e: int(e[1:])):
        print(f"running {experiment_id} ...", flush=True)
        report = run_experiment(
            experiment_id, scale=args.scale, seed=args.seed, engine=engine
        )
        sections.append(PAPER_CLAIMS[experiment_id])
        sections.append("")
        sections.append(format_markdown(report))
        sections.append("")
    content = "\n".join(sections)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(content)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
