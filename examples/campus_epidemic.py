#!/usr/bin/env python3
"""Epidemic spreading among agents walking a campus graph (graph mobility models).

Graph mobility models (Section 4.1, Corollaries 5 and 6): agents move over a
fixed mobility graph — here an 8x8 grid of campus walkway intersections — and
an infection (or a rumour) is transmitted whenever an infected and a
susceptible agent meet at the same intersection.

The script compares three settings the paper analyses:

* the random-path model where agents commute along shortest paths between
  random destinations (the waypoint-on-a-graph of Corollary 5);
* the plain random walk on the same grid (the rho = 1 model of Corollary 6);
* the k-augmented grid (shortcut corridors), where the paper's mixing-time
  driven bound improves on the meeting-time bound of prior work [15].

Run with::

    python examples/campus_epidemic.py
"""

from __future__ import annotations

import numpy as np

from repro import RandomPathModel, corollary5_bound, corollary6_bound
from repro.baselines.meeting_time import expected_meeting_time, meeting_time_bound
from repro.core.flooding import flooding_time_samples
from repro.core.spreading import si_epidemic
from repro.graphs.grid import augmented_grid_graph, grid_graph
from repro.graphs.paths import shortest_path_family
from repro.graphs.properties import degree_regularity, diameter, path_family_regularity
from repro.markov.mixing import mixing_time
from repro.mobility.random_path import GraphRandomWalkMobility


def commuting_students(num_agents: int) -> None:
    print("--- random paths: students commuting along shortest walkway routes ---")
    campus = grid_graph(6)
    routes = shortest_path_family(campus)
    model = RandomPathModel(num_agents, routes, holding_probability=0.25)
    d = diameter(campus)
    delta = path_family_regularity(routes)
    samples = flooding_time_samples(model, 5, rng=0)
    bound = corollary5_bound(
        num_agents, mixing_time=d, num_points=campus.number_of_nodes(), delta=delta
    )
    print(f"campus: 6x6 grid, diameter {d}, route-family regularity delta = {delta:.2f}")
    print(f"measured full-infection time: mean {np.mean(samples):.1f} steps")
    print(f"Corollary 5 bound (constant = 1): {bound:.0f}")
    print(f"trivial lower bound (diameter): {d}\n")


def wandering_visitors(num_agents: int) -> None:
    print("--- random walks and shortcut corridors (k-augmented grids) ---")
    print(f"{'k':>3}  {'T_mix':>6}  {'meeting time':>13}  {'measured':>9}  {'Cor. 6 bound':>13}  {'[15] bound':>11}")
    for k in (1, 2, 3):
        campus = augmented_grid_graph(6, k)
        model = GraphRandomWalkMobility(num_agents, campus, holding_probability=0.5)
        t_mix = mixing_time(model.to_markov_chain())
        meeting = expected_meeting_time(campus, num_trials=80, rng=k)
        samples = flooding_time_samples(model, 5, rng=10 + k)
        bound = corollary6_bound(
            num_agents, t_mix, campus.number_of_nodes(), degree_regularity(campus)
        )
        print(
            f"{k:>3}  {t_mix:>6}  {meeting:>13.1f}  {np.mean(samples):>9.1f}  "
            f"{bound:>13.3e}  {meeting_time_bound(meeting, num_agents):>11.1f}"
        )
    print(
        "shortcut corridors cut the walk's mixing time (and the measured spreading\n"
        "time) sharply, while the meeting time — and hence the prior bound of [15] —\n"
        "barely moves: this is the paper's improvement on k-augmented grids\n"
    )


def imperfect_transmission(num_agents: int) -> None:
    print("--- SI epidemic with per-contact infection probability 0.4 ---")
    campus = grid_graph(6)
    model = GraphRandomWalkMobility(num_agents, campus, holding_probability=0.5)
    flood_times = flooding_time_samples(model, 5, rng=20)
    epidemic_times = []
    for seed in range(5):
        result = si_epidemic(model, infection_probability=0.4, rng=30 + seed)
        epidemic_times.append(result.completion_time)
    print(f"deterministic transmission: mean {np.mean(flood_times):.1f} steps")
    print(f"per-contact probability 0.4: mean {np.mean(epidemic_times):.1f} steps")
    print("imperfect transmission costs only a constant factor (Section 5 reduction)")


def main() -> None:
    num_agents = 72
    commuting_students(num_agents)
    wandering_visitors(num_agents)
    imperfect_transmission(num_agents)


if __name__ == "__main__":
    main()
