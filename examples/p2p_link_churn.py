#!/usr/bin/env python3
"""Peer-to-peer overlay with link churn: file dissemination on edge-MEGs.

Edge-Markovian evolving graphs model overlays whose links fail and recover
independently of node mobility (Appendix A of the paper).  The script models
a P2P swarm whose links churn at different rates and measures how fast a new
file (or gossip update) reaches every peer:

* the classic two-state edge-MEG (link up / link down) across churn rates,
  compared against the paper's general bound and the prior bound of [10];
* a generalised edge-MEG whose links follow a three-state hidden chain
  (down -> degraded -> up), something the earlier analyses could not handle
  but the paper's Theorem 1 covers out of the box.

Run with::

    python examples/p2p_link_churn.py
"""

from __future__ import annotations

from repro import EdgeMEG, GeneralEdgeMEG, edge_meg_general_bound
from repro.baselines.edge_meg_bound import classic_edge_meg_prior_bound
from repro.core.bounds import classic_edge_meg_bound
from repro.core.metrics import flooding_time_statistics
from repro.markov.builders import birth_death_chain
from repro.markov.mixing import mixing_time


def classic_churn_sweep(n: int) -> None:
    print(f"--- classic edge-MEG churn sweep (n={n} peers) ---")
    header = f"{'p (birth)':>10}  {'q (death)':>10}  {'measured':>9}  {'general bound':>14}  {'prior bound [10]':>17}"
    print(header)
    for p_mult, q in ((0.5, 0.5), (2.0, 0.5), (2.0, 0.05), (8.0, 0.5)):
        p = p_mult / n
        model = EdgeMEG(n, p=p, q=q)
        summary = flooding_time_statistics(model, num_trials=8, rng=0)
        print(
            f"{p:>10.4f}  {q:>10.2f}  {summary.mean:>9.1f}  "
            f"{classic_edge_meg_bound(n, p, q):>14.1f}  "
            f"{classic_edge_meg_prior_bound(n, p):>17.1f}"
        )
    print(
        "sticky links (small q) slow dissemination down even at the same density —\n"
        "the mixing-time factor of the general bound captures exactly that\n"
    )


def degraded_link_overlay(n: int) -> None:
    print(f"--- generalised edge-MEG: down/degraded/up links (n={n} peers) ---")
    # Hidden chain: state 0 = down, 1 = degraded, 2 = up; only 'up' carries data.
    chain = birth_death_chain(
        probabilities_up=[0.2, 0.3, 0.0], probabilities_down=[0.0, 0.1, 0.2]
    )
    model = GeneralEdgeMEG(n, chain, chi=[0, 0, 1])
    alpha = model.stationary_edge_probability()
    t_mix = mixing_time(chain)
    summary = flooding_time_statistics(model, num_trials=8, rng=1)
    bound = edge_meg_general_bound(n, t_mix, alpha)
    print(f"stationary probability a link is usable: {alpha:.3f}")
    print(f"hidden-chain mixing time: {t_mix}")
    print(f"measured dissemination time: mean {summary.mean:.1f}, max {summary.maximum:.0f}")
    print(f"Appendix-A bound (constant = 1): {bound:.1f}")
    print("the three-state churn model is outside the scope of [10] but the")
    print("paper's independence argument (beta = 1) still applies unchanged")


def main() -> None:
    classic_churn_sweep(n=150)
    print()
    degraded_link_overlay(n=80)


if __name__ == "__main__":
    main()
