#!/usr/bin/env python3
"""Delay-tolerant MANET scenario: epidemic dissemination under the random waypoint.

The paper's headline application (Section 4.1): a sparse, highly disconnected
mobile ad-hoc network where devices carried by people/vehicles move according
to the random waypoint model, and a message spreads opportunistically
whenever two devices come within radio range.  In this regime (constant
transmission radius and speed, area growing linearly with the number of
devices) the paper gives the first flooding-time bound for the waypoint:
``Õ(sqrt(n) / v_max)``, almost matching the trivial lower bound.

The script sweeps the device speed and the radio range, reporting measured
dissemination times next to the bound and the lower bound, and also runs the
probabilistic forwarding variant (Section 5) in which a device forwards a
message over each contact only with probability 1/2 to save energy.

Run with::

    python examples/manet_delay_tolerant.py
"""

from __future__ import annotations

import math

from repro import RandomWaypoint, waypoint_flooding_bound
from repro.baselines.lower_bounds import geometric_lower_bound
from repro.core.metrics import flooding_time_statistics
from repro.core.spreading import gossip_spread


def sweep_speed(n: int, side: float, radius: float) -> None:
    print(f"--- speed sweep (n={n}, L={side:.1f}, r={radius}) ---")
    print(f"{'speed':>6}  {'measured mean':>14}  {'upper bound':>12}  {'lower bound':>12}")
    for speed in (0.5, 1.0, 2.0, 4.0):
        model = RandomWaypoint(n, side=side, radius=radius, v_min=speed)
        summary = flooding_time_statistics(model, num_trials=5, rng=1)
        upper = waypoint_flooding_bound(n, side, radius, speed)
        lower = geometric_lower_bound(side, radius, speed)
        print(
            f"{speed:>6.1f}  {summary.mean:>14.1f}  {upper:>12.1f}  {lower:>12.1f}"
        )
    print("faster devices deliver proportionally faster (the 1/v scaling of the bound)\n")


def sweep_radius(n: int, side: float, speed: float) -> None:
    print(f"--- radio-range sweep (n={n}, L={side:.1f}, v={speed}) ---")
    print(f"{'radius':>6}  {'measured mean':>14}  {'upper bound':>12}")
    for radius in (0.5, 1.0, 2.0):
        model = RandomWaypoint(n, side=side, radius=radius, v_min=speed)
        summary = flooding_time_statistics(model, num_trials=5, rng=2)
        upper = waypoint_flooding_bound(n, side, radius, speed)
        print(f"{radius:>6.1f}  {summary.mean:>14.1f}  {upper:>12.1f}")
    print("a larger radio range matters most while the network is sparse\n")


def probabilistic_forwarding(n: int, side: float) -> None:
    print(f"--- probabilistic forwarding (n={n}, L={side:.1f}) ---")
    model = RandomWaypoint(n, side=side, radius=1.0, v_min=1.0)
    flooding = flooding_time_statistics(model, num_trials=5, rng=3)
    print(f"flood every contact:     mean delivery {flooding.mean:.1f} steps")
    halves = []
    for seed in range(5):
        result = gossip_spread(model, transmission_probability=0.5, rng=100 + seed)
        halves.append(result.completion_time)
    print(
        "forward with prob. 1/2:  mean delivery "
        f"{sum(halves) / len(halves):.1f} steps "
        "(the virtual dynamic graph is still (M, alpha/2, beta)-stationary)"
    )


def main() -> None:
    n = 100
    side = math.sqrt(n)  # sparse regime: L ~ sqrt(n)
    sweep_speed(n, side, radius=1.0)
    sweep_radius(n, side, speed=1.0)
    probabilistic_forwarding(n, side)


if __name__ == "__main__":
    main()
