#!/usr/bin/env python3
"""Quickstart: flooding over a Markovian evolving graph in a dozen lines.

Builds the classic edge-MEG (every potential link flips on/off according to
an independent two-state Markov chain), runs the flooding protocol from a
single source, and compares the measured flooding time with the paper's
Theorem-1 bound evaluated from the model's exact (alpha, beta) parameters.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import EdgeMEG, flood, theorem1_bound
from repro.core.metrics import flooding_time_statistics
from repro.core.stationarity import exact_parameters
from repro.markov.mixing import mixing_time
from repro.meg.snapshots import snapshot_statistics


def main() -> None:
    n = 200
    # Sparse regime: each link is up with stationary probability ~ 1/n, so a
    # typical snapshot has average degree ~1 and many isolated nodes.
    model = EdgeMEG(num_nodes=n, p=1.0 / (2 * n), q=0.5)

    print("=== model ===")
    stats = snapshot_statistics(model, num_snapshots=50, rng=0)
    print(f"nodes: {n}")
    print(f"mean snapshot degree: {stats.mean_degree:.2f}")
    print(f"mean isolated-node fraction: {stats.mean_isolated_fraction:.2f}")
    print(f"fraction of connected snapshots: {stats.connected_fraction:.2f}")

    print("\n=== one flooding run ===")
    result = flood(model, source=0, rng=42)
    print(f"flooding time: {result.flooding_time} steps")
    print(f"time to reach half the nodes: {result.time_to_fraction(0.5)} steps")
    print(f"informed-count trajectory: {result.informed_history}")

    print("\n=== measurement vs Theorem 1 ===")
    alpha, beta = exact_parameters(model)
    epoch = mixing_time(model.edge_chain())
    summary = flooding_time_statistics(model, num_trials=20, rng=7)
    bound = theorem1_bound(n, epoch, alpha, beta)
    print(f"alpha (stationary edge probability): {alpha:.5f}")
    print(f"beta (edge independence): {beta:.1f}")
    print(f"epoch length (mixing time of the edge chain): {epoch}")
    print(f"measured flooding time: mean {summary.mean:.1f}, max {summary.maximum:.0f}")
    print(f"Theorem 1 bound (constant = 1): {bound:.1f}")
    print(f"slack factor: {bound / summary.mean:.1f}x")


if __name__ == "__main__":
    main()
