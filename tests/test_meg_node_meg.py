"""Tests for repro.meg.node_meg.NodeMEG."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.builders import complete_graph_walk, two_state_chain, uniform_chain
from repro.meg.node_meg import NodeMEG


@pytest.fixture
def colocation_meg():
    """Agents on the complete graph of 8 meeting points, linked when co-located."""
    chain = complete_graph_walk(8)
    return NodeMEG(20, chain, np.eye(8, dtype=bool))


class TestConstruction:
    def test_connection_callable(self):
        chain = uniform_chain(4)
        model = NodeMEG(6, chain, lambda a, b: a == b)
        assert model.connection_matrix().trace() == 4

    def test_connection_matrix_must_be_symmetric(self):
        chain = uniform_chain(3)
        matrix = np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]], dtype=bool)
        with pytest.raises(ValueError, match="symmetric"):
            NodeMEG(5, chain, matrix)

    def test_connection_matrix_wrong_shape(self):
        chain = uniform_chain(3)
        with pytest.raises(ValueError, match="shape"):
            NodeMEG(5, chain, np.eye(4, dtype=bool))

    def test_all_zero_connection_rejected(self):
        chain = uniform_chain(3)
        with pytest.raises(ValueError, match="identically 0"):
            NodeMEG(5, chain, np.zeros((3, 3), dtype=bool))

    def test_invalid_initial_distribution(self):
        chain = uniform_chain(3)
        with pytest.raises(ValueError):
            NodeMEG(5, chain, np.eye(3, dtype=bool), initial_distribution=[1.0, 1.0, 1.0])

    def test_callable_symmetrised(self):
        chain = uniform_chain(3)
        # An asymmetric callable is evaluated only on ordered pairs (i <= j)
        # and mirrored, so the resulting matrix is symmetric by construction.
        model = NodeMEG(4, chain, lambda a, b: a <= b)
        matrix = model.connection_matrix()
        assert np.array_equal(matrix, matrix.T)


class TestStationaryQuantities:
    def test_colocation_edge_probability(self, colocation_meg):
        # P_NM = sum_x pi(x)^2 = 1/8 for the uniform stationary distribution.
        assert colocation_meg.edge_probability() == pytest.approx(1 / 8)

    def test_colocation_shared_neighbor_probability(self, colocation_meg):
        # P_NM2 = sum_x pi(x)^3 = 1/64.
        assert colocation_meg.shared_neighbor_probability() == pytest.approx(1 / 64)

    def test_eta_for_colocation(self, colocation_meg):
        # eta = P_NM2 / P_NM^2 = (1/64) / (1/64) = 1.
        assert colocation_meg.eta() == pytest.approx(1.0)

    def test_eta_at_least_one(self):
        # For any node-MEG, Jensen gives P_NM2 >= P_NM^2, so eta >= 1.
        chain = two_state_chain(0.1, 0.4)
        model = NodeMEG(6, chain, np.array([[True, False], [False, True]]))
        assert model.eta() >= 1.0 - 1e-9

    def test_complete_connection_gives_probability_one(self):
        chain = uniform_chain(3)
        model = NodeMEG(5, chain, np.ones((3, 3), dtype=bool))
        assert model.edge_probability() == pytest.approx(1.0)
        assert model.eta() == pytest.approx(1.0)

    def test_state_connection_probability(self, colocation_meg):
        q = colocation_meg.state_connection_probability()
        assert q == pytest.approx(np.full(8, 1 / 8))

    def test_fact2_invariance_under_node_choice(self, colocation_meg):
        # Fact 2: the quantities do not depend on which nodes are considered —
        # they are functions of the chain and C only, so two models differing
        # only in n give the same P_NM and P_NM2.
        chain = complete_graph_walk(8)
        other = NodeMEG(50, chain, np.eye(8, dtype=bool))
        assert other.edge_probability() == pytest.approx(colocation_meg.edge_probability())
        assert other.shared_neighbor_probability() == pytest.approx(
            colocation_meg.shared_neighbor_probability()
        )


class TestDynamics:
    def test_reset_reproducible(self, colocation_meg):
        colocation_meg.reset(3)
        first = set(colocation_meg.current_edges())
        states_first = colocation_meg.node_states()
        colocation_meg.reset(3)
        assert set(colocation_meg.current_edges()) == first
        assert np.array_equal(colocation_meg.node_states(), states_first)

    def test_step_before_reset_raises(self, colocation_meg):
        with pytest.raises(RuntimeError):
            colocation_meg.step()
        with pytest.raises(RuntimeError):
            colocation_meg.node_states()

    def test_edges_match_connection_of_states(self, colocation_meg):
        colocation_meg.reset(5)
        states = colocation_meg.node_states()
        expected = {
            (i, j)
            for i in range(20)
            for j in range(i + 1, 20)
            if states[i] == states[j]
        }
        assert set(colocation_meg.current_edges()) == expected

    def test_no_self_loops(self, colocation_meg):
        colocation_meg.reset(1)
        assert all(i != j for i, j in colocation_meg.current_edges())

    def test_step_changes_states(self, colocation_meg):
        colocation_meg.reset(2)
        before = colocation_meg.node_states()
        colocation_meg.step()
        after = colocation_meg.node_states()
        assert not np.array_equal(before, after)
        assert colocation_meg.time == 1

    def test_node_state_labels(self):
        chain = two_state_chain(0.5, 0.5)
        model = NodeMEG(4, chain, np.ones((2, 2), dtype=bool))
        model.reset(0)
        labels = model.node_state_labels()
        assert len(labels) == 4
        assert set(labels) <= {"off", "on"}

    def test_neighbors_of_set_matches_edges(self, colocation_meg):
        colocation_meg.reset(8)
        informed = {0, 5, 12}
        fast = colocation_meg.neighbors_of_set(informed)
        slow = set()
        for i, j in colocation_meg.current_edges():
            if i in informed:
                slow.add(j)
            if j in informed:
                slow.add(i)
        assert fast == slow

    def test_edge_count_consistency(self, colocation_meg):
        colocation_meg.reset(4)
        assert colocation_meg.edge_count() == len(list(colocation_meg.current_edges()))

    def test_empirical_edge_probability_matches_p_nm(self):
        chain = complete_graph_walk(6)
        model = NodeMEG(10, chain, np.eye(6, dtype=bool))
        p_nm = model.edge_probability()
        model.reset(13)
        hits = 0
        trials = 600
        for _ in range(trials):
            if model.has_edge(0, 1):
                hits += 1
            model.step()
        assert hits / trials == pytest.approx(p_nm, abs=0.04)
