"""Fast-path tests: every model family through every flooding kernel.

The engine's contract is that the kernel choice never changes results: the
set-based loop, the dense vectorized kernel and the sparse CSR kernel must
return bit-identical flooding outcomes on shared seeds for *every* model
family, because the informed-set update is deterministic given the snapshot
and the models consume their random streams identically under all kernels.
These tests pin that property across edge-MEGs, node-MEGs, the grid mobility
models and the geometric mobility models, together with the fast snapshot
interfaces (adjacency overrides, cached k-d trees, vectorized stepping) that
make the fast kernels the default path.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
import scipy.sparse

from repro.core.flooding import (
    batch_source_flooding_times,
    batched_flooding_time_samples,
    flood,
    flood_sources_set,
)
from repro.engine import (
    Engine,
    TrialSpec,
    estimated_snapshot_density,
    flood_sources_batch,
    flood_sparse,
    flood_vectorized,
    has_fast_adjacency,
    has_fast_sparse_adjacency,
    resolve_backend,
)
from repro.graphs.grid import augmented_grid_graph, grid_graph, hop_ball_matrix
from repro.markov.builders import random_walk_on_graph
from repro.meg.base import DynamicGraph, StaticGraphProcess
from repro.meg.edge_meg import EdgeMEG
from repro.meg.node_meg import NodeMEG
from repro.mobility.random_path import GraphRandomWalkMobility, random_walk_path_model
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypoint


def _node_meg(num_nodes: int = 30) -> NodeMEG:
    chain = random_walk_on_graph(grid_graph(3)).lazy(0.2)
    return NodeMEG(
        num_nodes,
        chain,
        lambda a, b: abs(a[0] - b[0]) + abs(a[1] - b[1]) <= 1,
    )


def _family_models() -> dict[str, DynamicGraph]:
    return {
        "edge-meg": EdgeMEG(30, p=0.1, q=0.3),
        "node-meg": _node_meg(30),
        "grid": GraphRandomWalkMobility(24, augmented_grid_graph(4, 2), radius_hops=1),
        "mobility": RandomWaypoint(24, side=4.0, radius=1.2, v_min=1.0),
    }


class TestCrossFamilyKernelAgreement:
    """Satellite: set-based, dense and sparse kernels agree on every family."""

    @pytest.mark.parametrize("family", ["edge-meg", "node-meg", "grid", "mobility"])
    def test_single_source_kernels_identical(self, family):
        model = _family_models()[family]
        for seed in range(4):
            via_set = flood(model, rng=seed)
            via_dense = flood_vectorized(model, rng=seed)
            via_sparse = flood_sparse(model, rng=seed)
            assert via_set == via_dense == via_sparse

    @pytest.mark.parametrize("family", ["edge-meg", "node-meg", "grid", "mobility"])
    def test_source_batch_kernels_identical(self, family):
        model = _family_models()[family]
        sources = [0, 5, model.num_nodes - 1]
        for seed in range(3):
            via_set = flood_sources_set(model, sources, rng=seed)
            via_dense = flood_sources_batch(model, sources, rng=seed, backend="dense")
            via_sparse = flood_sources_batch(model, sources, rng=seed, backend="sparse")
            assert via_set == via_dense == via_sparse

    @pytest.mark.parametrize("family", ["edge-meg", "node-meg", "grid", "mobility"])
    def test_engine_backends_identical(self, family):
        samples = {}
        for backend in ("set", "vectorized", "sparse"):
            spec = TrialSpec.from_model(
                _family_models()[family], num_trials=4, seed=17
            )
            samples[backend] = Engine(backend=backend).run(spec).flooding_times
        assert samples["set"] == samples["vectorized"] == samples["sparse"]


class TestFastSnapshotInterfaces:
    @pytest.mark.parametrize("family", ["edge-meg", "node-meg", "grid", "mobility"])
    def test_adjacency_override_matches_generic(self, family):
        model = _family_models()[family]
        assert has_fast_adjacency(model)
        model.reset(3)
        fast = model.adjacency_matrix()
        generic = DynamicGraph.adjacency_matrix(model)
        assert np.array_equal(fast, generic)
        assert np.array_equal(fast, fast.T)
        assert not fast.diagonal().any()

    @pytest.mark.parametrize("family", ["edge-meg", "node-meg", "grid", "mobility"])
    def test_sparse_adjacency_matches_dense(self, family):
        model = _family_models()[family]
        model.reset(5)
        sparse = model.sparse_adjacency()
        assert scipy.sparse.issparse(sparse)
        assert np.array_equal(
            (sparse.toarray() != 0), model.adjacency_matrix()
        )

    def test_fast_sparse_predicate(self):
        assert has_fast_sparse_adjacency(RandomWaypoint(5, side=3.0, radius=1.0, v_min=1.0))
        assert not has_fast_sparse_adjacency(StaticGraphProcess(nx.path_graph(4)))

    def test_generic_sparse_adjacency_from_edges(self):
        process = StaticGraphProcess(nx.path_graph(6))
        process.reset()
        dense = DynamicGraph.adjacency_matrix(process)
        assert np.array_equal(process.sparse_adjacency().toarray() != 0, dense)

    def test_mobility_tree_cached_within_step(self):
        model = RandomWaypoint(20, side=4.0, radius=1.0, v_min=1.0)
        model.reset(0)
        tree = model.snapshot_tree()
        assert model.snapshot_tree() is tree
        model.step()
        assert model.snapshot_tree() is not tree

    def test_hop_ball_matrix_matches_nodes_within_hops(self):
        graph = augmented_grid_graph(4, 2)
        matrix = hop_ball_matrix(graph, 1, list(graph.nodes()))
        nodes = list(graph.nodes())
        for i, point in enumerate(nodes):
            ball = {point} | set(graph.neighbors(point))
            expected = np.array([other in ball for other in nodes])
            assert np.array_equal(matrix[i], expected)
        assert np.array_equal(matrix, matrix.T)

    def test_hop_ball_matrix_radius_zero_is_identity(self):
        graph = grid_graph(3)
        assert np.array_equal(hop_ball_matrix(graph, 0), np.eye(9, dtype=bool))


class TestVectorizedSteppingBitIdentity:
    """The vectorized whole-population steps replay the historical loops."""

    def test_random_walk_mobility_matches_scalar_loop(self):
        model = RandomWalkMobility(40, grid_side=6, radius=1.0)
        model.reset(11)
        reference = RandomWalkMobility(40, grid_side=6, radius=1.0)
        reference.reset(11)
        moves = np.array([[1, 0], [-1, 0], [0, 1], [0, -1]])
        coords = reference.grid_coordinates()
        rng = reference._rng
        for _ in range(25):
            model.step()
            for node in range(coords.shape[0]):
                candidates = coords[node] + moves
                valid = candidates[
                    (candidates[:, 0] >= 0)
                    & (candidates[:, 0] < 6)
                    & (candidates[:, 1] >= 0)
                    & (candidates[:, 1] < 6)
                ]
                coords[node] = valid[rng.integers(valid.shape[0])]
            assert np.array_equal(model.grid_coordinates(), coords)

    def test_graph_walk_matches_scalar_loop(self):
        graph = augmented_grid_graph(5, 2)
        model = GraphRandomWalkMobility(30, graph, radius_hops=1)
        reference = GraphRandomWalkMobility(30, graph, radius_hops=1)
        model.reset(7)
        reference.reset(7)
        for _ in range(30):
            model.step()
            for agent in range(reference._num_nodes):
                neighbors = reference._neighbors[reference._agent_points[agent]]
                reference._agent_points[agent] = neighbors[
                    reference._rng.integers(len(neighbors))
                ]
            assert np.array_equal(
                np.asarray(model._agent_points), np.asarray(reference._agent_points)
            )

    def test_random_path_matches_scalar_loop(self):
        graph = grid_graph(4)
        model = random_walk_path_model(20, graph, radius_hops=1)
        reference = random_walk_path_model(20, graph, radius_hops=1)
        model.reset(3)
        reference.reset(3)
        for _ in range(30):
            model.step()
            for agent in range(reference._num_nodes):
                reference._step_one_agent(agent)
            assert np.array_equal(
                np.asarray(model._agent_states), np.asarray(reference._agent_states)
            )

    def test_lazy_walk_keeps_scalar_stream(self):
        # The lazy variants interleave hold and move draws; two identically
        # seeded instances must still agree (the loop path is untouched).
        a = RandomWalkMobility(25, grid_side=5, radius=1.0, holding_probability=0.4)
        b = RandomWalkMobility(25, grid_side=5, radius=1.0, holding_probability=0.4)
        a.reset(2)
        b.reset(2)
        a.run(20)
        b.run(20)
        assert np.array_equal(a.grid_coordinates(), b.grid_coordinates())


class TestBackendResolution:
    def test_auto_stays_dense_on_small_models(self):
        model = RandomWaypoint(64, side=8.0, radius=1.0, v_min=1.0)
        assert resolve_backend("auto", model) == "vectorized"

    def test_auto_upgrades_to_sparse_on_large_sparse_models(self):
        model = RandomWaypoint(2048, side=45.0, radius=1.0, v_min=1.0)
        assert resolve_backend("auto", model) == "sparse"

    def test_auto_keeps_set_without_fast_adjacency(self):
        assert resolve_backend("auto", StaticGraphProcess(nx.path_graph(4))) == "set"

    def test_explicit_sparse_passthrough(self):
        model = EdgeMEG(10, p=0.1, q=0.3)
        assert resolve_backend("sparse", model) == "sparse"

    def test_estimated_density_uses_model_quantities(self):
        meg = EdgeMEG(10, p=0.1, q=0.3)
        assert estimated_snapshot_density(meg) == pytest.approx(0.1 / 0.4)
        waypoint = RandomWaypoint(50, side=10.0, radius=1.0, v_min=1.0)
        assert estimated_snapshot_density(waypoint) == pytest.approx(
            waypoint.expected_degree_estimate() / 49
        )
        assert estimated_snapshot_density(StaticGraphProcess(nx.path_graph(4))) is None

    def test_engine_accepts_sparse_backend(self):
        spec = TrialSpec.from_model(EdgeMEG(20, p=0.1, q=0.3), num_trials=3, seed=0)
        assert Engine(backend="sparse").run(spec).backend == "sparse"


class TestBatchedSourceEstimators:
    def test_all_sources_on_path_graph_is_worst_case(self):
        # On a static path the flooding time from source s is its
        # eccentricity; the worst case over all sources is n - 1.
        process = StaticGraphProcess(nx.path_graph(7))
        spec = TrialSpec.from_model(process, num_trials=2, sources="all", seed=0)
        result = Engine().run(spec)
        assert result.flooding_times == (6, 6)

    def test_all_sources_times_match_per_source_floods(self):
        model = _node_meg(16)
        times = batch_source_flooding_times(model, "all", rng=4)
        assert len(times) == 16
        reference = flood_sources_set(model, range(16), rng=4)
        assert times == reference

    def test_sampled_sources_reproducible_and_worker_invariant(self):
        model = EdgeMEG(30, p=0.1, q=0.3)
        serial = batched_flooding_time_samples(model, 6, sources=5, rng=9, workers=1)
        parallel = batched_flooding_time_samples(model, 6, sources=5, rng=9, workers=3)
        assert serial == parallel
        assert len(serial) == 6

    def test_batched_backends_agree(self):
        model = _family_models()["mobility"]
        samples = {
            backend: batched_flooding_time_samples(
                model, 3, sources=4, rng=1, backend=backend
            )
            for backend in ("set", "vectorized", "sparse")
        }
        assert samples["set"] == samples["vectorized"] == samples["sparse"]

    def test_spec_validation(self):
        model = EdgeMEG(10, p=0.1, q=0.3)
        with pytest.raises(ValueError):
            TrialSpec.from_model(model, num_trials=1, sources=(0,), num_sources=2)
        with pytest.raises(ValueError):
            TrialSpec.from_model(model, num_trials=1, sources=())
        with pytest.raises(ValueError):
            TrialSpec.from_model(model, num_trials=1, sources=(-1,))
        with pytest.raises(ValueError):
            TrialSpec.from_model(model, num_trials=1, num_sources=0)
        with pytest.raises(ValueError):
            TrialSpec.from_model(model, num_trials=1, sources="everything")

    def test_numpy_array_sources_accepted(self):
        model = EdgeMEG(20, p=0.1, q=0.3)
        from_array = batch_source_flooding_times(model, np.array([0, 1, 2]), rng=0)
        from_list = batch_source_flooding_times(model, [0, 1, 2], rng=0)
        assert from_array == from_list
        samples = batched_flooding_time_samples(
            model, 2, sources=np.array([0, 1, 2]), rng=0
        )
        assert len(samples) == 2

    def test_oversized_source_sample_rejected(self):
        model = EdgeMEG(20, p=0.1, q=0.3)
        spec = TrialSpec.from_model(model, num_trials=1, num_sources=100, seed=0)
        with pytest.raises(ValueError):
            Engine().run(spec)
        with pytest.raises(ValueError):
            batch_source_flooding_times(model, 100, rng=0)

    def test_single_source_cache_token_unchanged_by_new_fields(self):
        # Pre-batching stored results must keep their addresses: a spec
        # without a source batch must not leak the new keys into its token.
        model = EdgeMEG(10, p=0.1, q=0.3)
        token = TrialSpec.from_model(model, num_trials=2).cache_token()
        assert "sources" not in token and "num_sources" not in token
        batched = TrialSpec.from_model(model, num_trials=2, sources="all")
        assert batched.cache_token()["sources"] == "all"
        sampled = TrialSpec.from_model(model, num_trials=2, num_sources=3)
        assert sampled.cache_token()["num_sources"] == 3

    def test_sweep_runner_supports_source_batches(self):
        from repro.experiments.runner import measure_flooding_sweep

        measurements = measure_flooding_sweep(
            lambda n: EdgeMEG(n, p=0.15, q=0.3),
            [10, 14],
            num_trials=3,
            num_sources=3,
            rng=5,
        )
        assert [m.num_nodes for m in measurements] == [10, 14]
        # Worst-over-3-sources dominates the single-source estimate in law;
        # just check the samples are well-formed positive integers.
        assert all(t >= 1 for m in measurements for t in m.samples)

    def test_flood_sources_set_validation(self):
        model = EdgeMEG(10, p=0.1, q=0.3)
        with pytest.raises(ValueError):
            flood_sources_set(model, [])
        with pytest.raises(ValueError):
            flood_sources_set(model, [10])
        with pytest.raises(ValueError):
            batch_source_flooding_times(model, 0)

    def test_incomplete_batch_raises(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        process = StaticGraphProcess(graph)
        spec = TrialSpec.from_model(process, num_trials=1, sources=(0,), max_steps=5)
        with pytest.raises(RuntimeError):
            Engine().run(spec)
