"""Tests for repro.util.mathutils."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.util.mathutils import (
    clamp,
    euclidean_distance,
    geometric_mean,
    harmonic_number,
    log2_safe,
    loglog_slope,
    logn_factor,
    total_variation_distance,
)


class TestLog2Safe:
    def test_clamps_below_one(self):
        assert log2_safe(0.5) == 0.0
        assert log2_safe(1.0) == 0.0

    def test_matches_log2_above_one(self):
        assert log2_safe(8.0) == pytest.approx(3.0)


class TestLognFactor:
    def test_floor_of_one(self):
        assert logn_factor(1) == 1.0
        assert logn_factor(2) == 1.0

    def test_power(self):
        assert logn_factor(16, 2) == pytest.approx(16.0)

    def test_monotone_in_n(self):
        values = [logn_factor(n, 3) for n in (4, 16, 64, 256)]
        assert values == sorted(values)


class TestLoglogSlope:
    def test_linear_relationship(self):
        xs = [10, 100, 1000]
        ys = [2 * x for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(1.0)

    def test_square_root_relationship(self):
        xs = [16, 64, 256, 1024]
        ys = [math.sqrt(x) for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(0.5)

    def test_constant_relationship(self):
        assert loglog_slope([1, 10, 100], [5, 5, 5]) == pytest.approx(0.0)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            loglog_slope([1, 2], [0, 1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            loglog_slope([1, 2, 3], [1, 2])


class TestGeometricMean:
    def test_equal_values(self):
        assert geometric_mean([4, 4, 4]) == pytest.approx(4.0)

    def test_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestHarmonicNumber:
    def test_small_values(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(2) == pytest.approx(1.5)

    def test_approximates_log(self):
        n = 1000
        assert harmonic_number(n) == pytest.approx(math.log(n) + 0.5772, abs=0.01)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            harmonic_number(-1)


class TestTotalVariationDistance:
    def test_identical_distributions(self):
        p = np.array([0.5, 0.5])
        assert total_variation_distance(p, p) == 0.0

    def test_disjoint_distributions(self):
        assert total_variation_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    def test_symmetry(self):
        p = np.array([0.7, 0.2, 0.1])
        q = np.array([0.2, 0.3, 0.5])
        assert total_variation_distance(p, q) == pytest.approx(
            total_variation_distance(q, p)
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.array([1.0]), np.array([0.5, 0.5]))


class TestEuclideanDistance:
    def test_pythagoras(self):
        assert euclidean_distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_zero_distance(self):
        assert euclidean_distance((1, 1), (1, 1)) == 0.0

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            euclidean_distance((0, 0), (1, 2, 3))


class TestClamp:
    def test_inside_interval(self):
        assert clamp(0.5, 0, 1) == 0.5

    def test_below(self):
        assert clamp(-3, 0, 1) == 0

    def test_above(self):
        assert clamp(7, 0, 1) == 1

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1, 0)
