"""Tests for repro.markov.chain.MarkovChain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.chain import MarkovChain


@pytest.fixture
def two_state():
    return MarkovChain([[0.9, 0.1], [0.4, 0.6]], states=("off", "on"))


@pytest.fixture
def cycle3():
    return MarkovChain([[0, 1, 0], [0, 0, 1], [1, 0, 0]])


class TestConstruction:
    def test_valid_matrix(self, two_state):
        assert two_state.num_states == 2
        assert two_state.states == ("off", "on")

    def test_default_integer_states(self):
        chain = MarkovChain(np.eye(3))
        assert chain.states == (0, 1, 2)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            MarkovChain([[0.5, 0.5]])

    def test_rejects_bad_row_sum(self):
        with pytest.raises(ValueError, match="sums to"):
            MarkovChain([[0.5, 0.4], [0.5, 0.5]])

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError, match="non-negative"):
            MarkovChain([[1.2, -0.2], [0.5, 0.5]])

    def test_rejects_empty_matrix(self):
        with pytest.raises(ValueError):
            MarkovChain(np.zeros((0, 0)))

    def test_rejects_wrong_label_count(self):
        with pytest.raises(ValueError, match="state labels"):
            MarkovChain(np.eye(2), states=("a",))

    def test_rejects_duplicate_labels(self):
        with pytest.raises(ValueError, match="unique"):
            MarkovChain(np.eye(2), states=("a", "a"))

    def test_transition_matrix_is_copy(self, two_state):
        matrix = two_state.transition_matrix
        matrix[0, 0] = 0.0
        assert two_state.transition_matrix[0, 0] == pytest.approx(0.9)


class TestAccessors:
    def test_state_index(self, two_state):
        assert two_state.state_index("off") == 0
        assert two_state.state_index("on") == 1

    def test_unknown_state_raises(self, two_state):
        with pytest.raises(KeyError):
            two_state.state_index("missing")

    def test_transition_probability(self, two_state):
        assert two_state.transition_probability("off", "on") == pytest.approx(0.1)
        assert two_state.transition_probability("on", "off") == pytest.approx(0.4)


class TestStructure:
    def test_two_state_ergodic(self, two_state):
        assert two_state.is_irreducible()
        assert two_state.is_aperiodic()
        assert two_state.is_ergodic()

    def test_cycle_periodic(self, cycle3):
        assert cycle3.is_irreducible()
        assert not cycle3.is_aperiodic()
        assert not cycle3.is_ergodic()

    def test_identity_not_irreducible(self):
        chain = MarkovChain(np.eye(2))
        assert not chain.is_irreducible()

    def test_two_state_reversible(self, two_state):
        assert two_state.is_reversible()

    def test_non_reversible_chain(self):
        # A biased cycle on three states is irreducible but not reversible.
        chain = MarkovChain(
            [[0.0, 0.9, 0.1], [0.1, 0.0, 0.9], [0.9, 0.1, 0.0]]
        )
        assert chain.is_irreducible()
        assert not chain.is_reversible()


class TestStationaryDistribution:
    def test_two_state_closed_form(self, two_state):
        pi = two_state.stationary_distribution()
        # p = 0.1, q = 0.4 -> pi = (0.8, 0.2)
        assert pi == pytest.approx([0.8, 0.2])

    def test_sums_to_one(self, two_state):
        assert two_state.stationary_distribution().sum() == pytest.approx(1.0)

    def test_invariance(self, two_state):
        pi = two_state.stationary_distribution()
        assert pi @ two_state.transition_matrix == pytest.approx(pi)

    def test_reducible_chain_raises(self):
        chain = MarkovChain(np.eye(3))
        with pytest.raises(ValueError, match="unique stationary"):
            chain.stationary_distribution()

    def test_stationary_probability_by_label(self, two_state):
        assert two_state.stationary_probability("off") == pytest.approx(0.8)

    def test_uniform_for_doubly_stochastic(self, cycle3):
        assert cycle3.stationary_distribution() == pytest.approx([1 / 3] * 3)


class TestDistributionEvolution:
    def test_zero_steps_identity(self, two_state):
        initial = np.array([1.0, 0.0])
        assert two_state.distribution_after(initial, 0) == pytest.approx(initial)

    def test_one_step(self, two_state):
        dist = two_state.distribution_after(np.array([1.0, 0.0]), 1)
        assert dist == pytest.approx([0.9, 0.1])

    def test_converges_to_stationary(self, two_state):
        dist = two_state.distribution_after(np.array([0.0, 1.0]), 200)
        assert dist == pytest.approx(two_state.stationary_distribution(), abs=1e-9)

    def test_rejects_bad_distribution(self, two_state):
        with pytest.raises(ValueError):
            two_state.distribution_after(np.array([0.6, 0.6]), 1)

    def test_rejects_negative_steps(self, two_state):
        with pytest.raises(ValueError):
            two_state.distribution_after(np.array([1.0, 0.0]), -1)

    def test_tv_distance_decreases(self, two_state):
        initial = np.array([0.0, 1.0])
        d1 = two_state.tv_distance_to_stationarity(initial, 1)
        d5 = two_state.tv_distance_to_stationarity(initial, 5)
        assert d5 <= d1


class TestSimulation:
    def test_step_returns_valid_state(self, two_state):
        assert two_state.step("off", rng=0) in ("off", "on")

    def test_step_deterministic_chain(self, cycle3):
        assert cycle3.step(0, rng=0) == 1
        assert cycle3.step(1, rng=0) == 2
        assert cycle3.step(2, rng=0) == 0

    def test_step_index_fast_path(self, cycle3):
        rng = np.random.default_rng(0)
        assert cycle3.step_index(0, rng) == 1

    def test_sample_stationary_frequency(self, two_state):
        rng = np.random.default_rng(7)
        samples = [two_state.sample_stationary(rng) for _ in range(2000)]
        fraction_off = samples.count("off") / len(samples)
        assert fraction_off == pytest.approx(0.8, abs=0.05)


class TestComposition:
    def test_lazy_preserves_stationary(self, two_state):
        lazy = two_state.lazy(0.5)
        assert lazy.stationary_distribution() == pytest.approx(
            two_state.stationary_distribution()
        )

    def test_lazy_adds_self_loops(self, cycle3):
        lazy = cycle3.lazy(0.5)
        assert lazy.transition_probability(0, 0) == pytest.approx(0.5)
        assert lazy.is_aperiodic()

    def test_lazy_invalid_holding(self, two_state):
        with pytest.raises(ValueError):
            two_state.lazy(1.0)

    def test_kron_product_states(self, two_state):
        product = two_state.kron_product(two_state)
        assert product.num_states == 4
        assert ("off", "on") in product.states

    def test_kron_product_stationary_is_product(self, two_state):
        product = two_state.kron_product(two_state)
        pi = two_state.stationary_distribution()
        expected = np.kron(pi, pi)
        assert product.stationary_distribution() == pytest.approx(expected)

    def test_from_edge_weights(self):
        chain = MarkovChain.from_edge_weights({("a", "b"): 1.0, ("b", "a"): 2.0, ("b", "b"): 2.0})
        assert chain.transition_probability("a", "b") == pytest.approx(1.0)
        assert chain.transition_probability("b", "a") == pytest.approx(0.5)

    def test_from_edge_weights_absorbing_state(self):
        chain = MarkovChain.from_edge_weights({("a", "b"): 1.0}, states=["a", "b"])
        assert chain.transition_probability("b", "b") == pytest.approx(1.0)

    def test_from_edge_weights_negative_raises(self):
        with pytest.raises(ValueError):
            MarkovChain.from_edge_weights({("a", "b"): -1.0})
