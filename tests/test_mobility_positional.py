"""Tests for repro.mobility.positional."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility.geometry import SquareRegion
from repro.mobility.positional import (
    UniformityParameters,
    density_total_variation,
    empirical_positional_distribution,
    uniformity_parameters,
    waypoint_density,
    waypoint_density_peak,
)
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypoint


class TestWaypointDensity:
    def test_integrates_to_one(self):
        side = 5.0
        resolution = 200
        region = SquareRegion(side)
        points = region.grid_points(resolution)
        values = waypoint_density(points[:, 0], points[:, 1], side)
        cell_area = (side / resolution) ** 2
        assert float(values.sum() * cell_area) == pytest.approx(1.0, abs=0.01)

    def test_peak_at_centre(self):
        side = 4.0
        assert waypoint_density_peak(side) == pytest.approx(2.25 / side**2)
        assert waypoint_density(2.0, 2.0, side) >= waypoint_density(1.0, 1.0, side)

    def test_zero_on_border(self):
        assert waypoint_density(0.0, 2.0, 4.0) == 0.0
        assert waypoint_density(4.0, 2.0, 4.0) == 0.0

    def test_zero_outside(self):
        assert waypoint_density(-1.0, 2.0, 4.0) == 0.0
        assert waypoint_density(5.0, 2.0, 4.0) == 0.0

    def test_symmetric(self):
        side = 6.0
        assert waypoint_density(1.0, 2.0, side) == pytest.approx(
            waypoint_density(5.0, 4.0, side)
        )

    def test_vectorised(self):
        values = waypoint_density(np.array([1.0, 2.0]), np.array([1.0, 2.0]), 4.0)
        assert values.shape == (2,)

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            waypoint_density(1.0, 1.0, 0.0)


class TestUniformityParameters:
    def test_uniform_density_gives_delta_one(self):
        region = SquareRegion(10.0)
        params = uniformity_parameters(
            lambda x, y: np.full_like(np.asarray(x, dtype=float), 1.0 / 100.0),
            region,
            radius=1.0,
        )
        assert params.delta == pytest.approx(1.0)
        assert params.lam == pytest.approx(region.eroded_fraction(1.0), abs=0.1)

    def test_waypoint_density_constants(self):
        side = 10.0
        region = SquareRegion(side)
        params = uniformity_parameters(
            lambda x, y: waypoint_density(x, y, side), region, radius=1.0, resolution=50
        )
        # Condition (a): the peak is 2.25x the uniform density.
        assert params.delta == pytest.approx(2.25, abs=0.1)
        # Condition (b): a constant fraction of the square is high-density.
        assert params.lam > 0.1

    def test_eta_formula(self):
        params = UniformityParameters(delta=2.0, lam=0.5)
        assert params.eta() == pytest.approx(2.0**6 / 0.25)

    def test_eta_infinite_when_lambda_zero(self):
        assert UniformityParameters(delta=2.0, lam=0.0).eta() == float("inf")

    def test_precomputed_array_accepted(self):
        region = SquareRegion(4.0)
        density = np.full((10, 10), 1.0 / 16.0)
        params = uniformity_parameters(density, region, radius=0.5, resolution=10)
        assert params.delta == pytest.approx(1.0)

    def test_wrong_array_shape_rejected(self):
        region = SquareRegion(4.0)
        with pytest.raises(ValueError):
            uniformity_parameters(np.zeros((5, 4)), region, radius=0.5, resolution=5)

    def test_zero_density_rejected(self):
        region = SquareRegion(4.0)
        with pytest.raises(ValueError):
            uniformity_parameters(np.zeros((5, 5)), region, radius=0.5, resolution=5)

    def test_negative_density_rejected(self):
        region = SquareRegion(4.0)
        with pytest.raises(ValueError):
            uniformity_parameters(-np.ones((5, 5)), region, radius=0.5, resolution=5)

    def test_invalid_resolution(self):
        region = SquareRegion(4.0)
        with pytest.raises(ValueError):
            uniformity_parameters(lambda x, y: x, region, radius=0.5, resolution=1)


class TestEmpiricalPositionalDistribution:
    def test_density_normalised(self):
        side = 6.0
        model = RandomWaypoint(30, side=side, radius=1.0, v_min=1.0, warmup_steps=10)
        region = SquareRegion(side)
        density = empirical_positional_distribution(
            model, region, resolution=6, num_snapshots=40, rng=0
        )
        cell_area = (side / 6) ** 2
        assert density.sum() * cell_area == pytest.approx(1.0)

    def test_waypoint_empirical_close_to_analytic(self):
        side = 6.0
        model = RandomWaypoint(60, side=side, radius=1.0, v_min=1.0, warmup_steps=20)
        region = SquareRegion(side)
        empirical = empirical_positional_distribution(
            model, region, resolution=6, num_snapshots=250, spacing=3, rng=1
        )
        points = region.grid_points(6)
        analytic = waypoint_density(points[:, 0], points[:, 1], side).reshape(6, 6)
        # Coarse agreement: total variation below 0.25.
        assert density_total_variation(empirical, analytic, region) < 0.25

    def test_non_geometric_model_rejected(self):
        from repro.meg.edge_meg import EdgeMEG

        region = SquareRegion(4.0)
        with pytest.raises(TypeError):
            empirical_positional_distribution(EdgeMEG(5, 0.1, 0.1), region)

    def test_invalid_arguments(self):
        side = 4.0
        model = RandomWalkMobility(10, grid_side=4, radius=1.0)
        region = SquareRegion(side)
        with pytest.raises(ValueError):
            empirical_positional_distribution(model, region, num_snapshots=0)
        with pytest.raises(ValueError):
            empirical_positional_distribution(model, region, spacing=0)

    def test_random_walk_density_roughly_uniform(self):
        # The random-walk positional distribution is essentially uniform
        # (proportional to degree), in contrast with the waypoint's bias.
        side = 5.0
        model = RandomWalkMobility(80, grid_side=6, radius=1.0, spacing=1.0)
        region = SquareRegion(side)
        density = empirical_positional_distribution(
            model, region, resolution=3, num_snapshots=150, spacing=2, rng=2
        )
        uniform = np.full((3, 3), 1.0 / region.volume())
        assert density_total_variation(density, uniform, region) < 0.25


class TestDensityTotalVariation:
    def test_identical_densities(self):
        region = SquareRegion(2.0)
        density = np.full((4, 4), 0.25)
        assert density_total_variation(density, density, region) == 0.0

    def test_shape_mismatch(self):
        region = SquareRegion(2.0)
        with pytest.raises(ValueError):
            density_total_variation(np.zeros((2, 2)), np.zeros((3, 3)), region)
