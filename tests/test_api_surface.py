"""API-surface tests: public exports, interface compliance, reusability.

These guard the packaging-level promises a downstream user relies on:
everything listed in ``__all__`` really is importable, every dynamic-graph
model honours the common interface (including ``rng=None`` and re-use across
runs), and the package version is consistent with the project metadata.
"""

from __future__ import annotations

import importlib

import numpy as np
import pytest

import repro


PACKAGES = [
    "repro",
    "repro.util",
    "repro.markov",
    "repro.graphs",
    "repro.meg",
    "repro.mobility",
    "repro.core",
    "repro.baselines",
    "repro.experiments",
    "repro.fleet",
    "repro.telemetry",
]


class TestPublicExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_are_importable(self, package_name):
        module = importlib.import_module(package_name)
        assert hasattr(module, "__all__"), f"{package_name} has no __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package_name}.{name} listed but missing"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_is_sorted_and_unique(self, package_name):
        module = importlib.import_module(package_name)
        names = list(module.__all__)
        assert len(names) == len(set(names))

    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_top_level_docstring_mentions_paper(self):
        assert "Information Spreading in Dynamic Graphs" in repro.__doc__

    def test_cli_entry_point_importable(self):
        from repro.cli import main

        assert callable(main)


def _model_zoo():
    """One small instance of every dynamic-graph model in the library."""
    from repro.graphs.grid import grid_graph
    from repro.graphs.paths import shortest_path_family
    from repro.markov.builders import complete_graph_walk
    from repro.meg.adversarial import RotatingSpanningTreeGraph
    from repro.meg.edge_meg import EdgeMEG, four_state_edge_meg
    from repro.meg.erdos_renyi import ErdosRenyiSequence
    from repro.meg.node_meg import NodeMEG
    from repro.mobility.manhattan import ManhattanWaypoint
    from repro.mobility.random_direction import RandomDirection
    from repro.mobility.random_path import GraphRandomWalkMobility, RandomPathModel
    from repro.mobility.random_walk import RandomWalkMobility
    from repro.mobility.random_waypoint import RandomWaypoint

    grid = grid_graph(3)
    return [
        EdgeMEG(12, p=0.2, q=0.3),
        four_state_edge_meg(10, p_up=0.3, p_down=0.3, p_stabilize=0.2, p_destabilize=0.1),
        ErdosRenyiSequence(12, p=0.3),
        NodeMEG(10, complete_graph_walk(5), np.eye(5, dtype=bool)),
        RotatingSpanningTreeGraph(8),
        RandomWalkMobility(10, grid_side=4, radius=1.0),
        RandomWaypoint(10, side=4.0, radius=1.0, v_min=1.0, warmup_steps=2),
        RandomDirection(10, side=4.0, radius=1.0, speed=1.0, warmup_steps=2),
        ManhattanWaypoint(10, side=4.0, radius=1.0, speed=1.0, warmup_steps=2),
        RandomPathModel(10, shortest_path_family(grid), holding_probability=0.2),
        GraphRandomWalkMobility(10, grid, holding_probability=0.5),
    ]


class TestDynamicGraphInterfaceCompliance:
    @pytest.mark.parametrize("model", _model_zoo(), ids=lambda m: type(m).__name__)
    def test_reset_step_edges_cycle(self, model):
        model.reset(0)
        assert model.time == 0
        edges_before = list(model.current_edges())
        for i, j in edges_before:
            assert 0 <= i < model.num_nodes
            assert 0 <= j < model.num_nodes
            assert i != j
        model.step()
        assert model.time == 1
        # The snapshot is queryable after stepping, and neighbour queries agree
        # with the edge list.
        informed = {0}
        via_edges = set()
        for i, j in model.current_edges():
            if i in informed:
                via_edges.add(j)
            if j in informed:
                via_edges.add(i)
        assert model.neighbors_of_set(informed) >= via_edges

    @pytest.mark.parametrize("model", _model_zoo(), ids=lambda m: type(m).__name__)
    def test_reset_accepts_none_rng(self, model):
        model.reset(None)
        model.step()
        assert model.time == 1

    @pytest.mark.parametrize("model", _model_zoo(), ids=lambda m: type(m).__name__)
    def test_model_reusable_across_flooding_runs(self, model):
        from repro.core.flooding import flood

        first = flood(model, rng=1, max_steps=2000)
        second = flood(model, rng=2, max_steps=2000)
        assert first.informed_history[0] == 1
        assert second.informed_history[0] == 1

    @pytest.mark.parametrize("model", _model_zoo(), ids=lambda m: type(m).__name__)
    def test_snapshot_graph_shape(self, model):
        model.reset(3)
        snapshot = model.snapshot()
        assert snapshot.number_of_nodes() == model.num_nodes
        assert snapshot.number_of_edges() == model.edge_count()
