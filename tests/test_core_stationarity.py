"""Tests for repro.core.stationarity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stationarity import (
    StationarityEstimate,
    estimate_beta,
    estimate_edge_probability,
    estimate_stationarity,
    exact_parameters,
)
from repro.markov.builders import complete_graph_walk, uniform_chain
from repro.meg.edge_meg import EdgeMEG, GeneralEdgeMEG
from repro.meg.erdos_renyi import ErdosRenyiSequence
from repro.meg.node_meg import NodeMEG


class TestExactParameters:
    def test_classic_edge_meg(self):
        alpha, beta = exact_parameters(EdgeMEG(20, p=0.1, q=0.3))
        assert alpha == pytest.approx(0.25)
        assert beta == 1.0

    def test_general_edge_meg(self):
        model = GeneralEdgeMEG(10, uniform_chain(4), chi=[1, 0, 0, 0])
        alpha, beta = exact_parameters(model)
        assert alpha == pytest.approx(0.25)
        assert beta == 1.0

    def test_node_meg_uses_lemma15_constant(self):
        chain = complete_graph_walk(8)
        model = NodeMEG(12, chain, np.eye(8, dtype=bool))
        alpha, beta = exact_parameters(model)
        assert alpha == pytest.approx(model.edge_probability())
        assert beta == pytest.approx(17.0 * model.eta())

    def test_unknown_model_returns_none(self):
        assert exact_parameters(ErdosRenyiSequence(10, p=0.5)) is None


class TestEstimateEdgeProbability:
    def test_matches_stationary_value(self):
        model = EdgeMEG(20, p=0.2, q=0.2)  # alpha = 0.5
        estimate = estimate_edge_probability(model, epoch_length=8, num_samples=300, rng=0)
        assert estimate == pytest.approx(0.5, abs=0.1)

    def test_iid_process(self):
        model = ErdosRenyiSequence(15, p=0.3)
        estimate = estimate_edge_probability(model, epoch_length=1, num_samples=300, rng=1)
        assert estimate == pytest.approx(0.3, abs=0.1)

    def test_custom_edges(self):
        model = ErdosRenyiSequence(10, p=0.4)
        estimate = estimate_edge_probability(
            model, epoch_length=1, num_samples=200, edges=[(2, 7)], rng=2
        )
        assert estimate == pytest.approx(0.4, abs=0.12)

    def test_invalid_arguments(self):
        model = ErdosRenyiSequence(10, p=0.5)
        with pytest.raises(ValueError):
            estimate_edge_probability(model, epoch_length=0, num_samples=10)
        with pytest.raises(ValueError):
            estimate_edge_probability(model, epoch_length=1, num_samples=0)
        with pytest.raises(ValueError):
            estimate_edge_probability(ErdosRenyiSequence(1, p=0.5), 1, 10)


class TestEstimateBeta:
    def test_independent_edges_give_beta_near_one(self):
        model = ErdosRenyiSequence(30, p=0.1)
        beta = estimate_beta(model, epoch_length=1, num_samples=800, rng=3)
        assert beta == pytest.approx(1.0, abs=0.35)

    def test_colocation_node_meg_not_too_correlated(self):
        chain = complete_graph_walk(6)
        model = NodeMEG(20, chain, np.eye(6, dtype=bool))
        beta = estimate_beta(model, epoch_length=2, num_samples=500, rng=4)
        # Lemma 15 guarantees an upper bound of 17 * eta; the measured value
        # should be far smaller (and at least some positive correlation-free value).
        assert 0.0 < beta < 17.0 * model.eta()

    def test_zero_marginal_returns_inf(self):
        # An (almost) always-empty graph: the target set is never reached.
        model = ErdosRenyiSequence(10, p=0.0)
        beta = estimate_beta(model, epoch_length=1, num_samples=20, rng=5)
        assert beta == float("inf")

    def test_invalid_arguments(self):
        model = ErdosRenyiSequence(10, p=0.5)
        with pytest.raises(ValueError):
            estimate_beta(model, epoch_length=1, num_samples=5, node_pair=(0, 0))
        with pytest.raises(ValueError):
            estimate_beta(model, epoch_length=1, num_samples=5, set_size=100)
        with pytest.raises(ValueError):
            estimate_beta(ErdosRenyiSequence(3, p=0.5), 1, 5)


class TestEstimateStationarity:
    def test_exact_shortcut_for_edge_meg(self):
        model = EdgeMEG(20, p=0.1, q=0.3)
        estimate = estimate_stationarity(model, epoch_length=5, num_samples=10)
        assert estimate.alpha == pytest.approx(0.25)
        assert estimate.beta == 1.0
        assert estimate.num_samples == 0  # no Monte-Carlo needed

    def test_monte_carlo_path_for_unknown_model(self):
        model = ErdosRenyiSequence(20, p=0.3)
        estimate = estimate_stationarity(model, epoch_length=1, num_samples=200, rng=0)
        assert estimate.num_samples == 200
        assert estimate.alpha == pytest.approx(0.3, abs=0.12)

    def test_as_dict(self):
        estimate = StationarityEstimate(epoch_length=4, alpha=0.2, beta=1.5, num_samples=10)
        d = estimate.as_dict()
        assert d == {"epoch_length": 4, "alpha": 0.2, "beta": 1.5, "num_samples": 10}
