"""Tests for repro.experiments (report, runner, registry)."""

from __future__ import annotations

import pytest

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.report import (
    ExperimentReport,
    combine_reports,
    format_markdown,
    format_table,
)
from repro.experiments.runner import measure_flooding_sweep, ratio_spread
from repro.meg.edge_meg import EdgeMEG


class TestExperimentReport:
    def _report(self):
        report = ExperimentReport(
            experiment_id="X1",
            title="demo",
            paper_reference="Theorem 0",
            columns=["n", "value", "ok"],
        )
        report.add_row(n=10, value=3.14159, ok=True)
        report.add_row(n=20, value=1e-6, ok=False)
        report.add_note("a remark")
        return report

    def test_add_row_and_column_values(self):
        report = self._report()
        assert report.column_values("n") == [10, 20]
        assert len(report.rows) == 2

    def test_format_table_contains_everything(self):
        text = format_table(self._report())
        assert "X1: demo" in text
        assert "Theorem 0" in text
        assert "3.142" in text
        assert "yes" in text and "no" in text
        assert "note: a remark" in text

    def test_format_table_scientific_notation_for_small_values(self):
        text = format_table(self._report())
        assert "1.000e-06" in text

    def test_format_markdown_structure(self):
        text = format_markdown(self._report())
        assert text.startswith("### X1: demo")
        assert "| n | value | ok |" in text
        assert "| --- | --- | --- |" in text
        assert "- a remark" in text

    def test_missing_column_rendered_blank(self):
        report = ExperimentReport("X2", "demo", "ref", columns=["a", "b"])
        report.add_row(a=1)
        assert "1" in format_table(report)

    def test_combine_reports(self):
        combined = combine_reports([self._report(), self._report()])
        assert combined.count("X1: demo") == 2
        combined_md = combine_reports([self._report()], markdown=True)
        assert combined_md.startswith("###")


class TestMeasureFloodingSweep:
    def test_sweep_over_sizes(self):
        measurements = measure_flooding_sweep(
            lambda n: EdgeMEG(n, p=4.0 / n, q=0.5),
            parameter_values=[20, 40],
            num_trials=4,
            rng=0,
        )
        assert len(measurements) == 2
        assert measurements[0].num_nodes == 20
        assert measurements[1].num_nodes == 40
        assert measurements[0].mean >= 1
        assert measurements[0].whp_value >= measurements[0].median

    def test_reproducible(self):
        def factory(n):
            return EdgeMEG(n, p=0.2, q=0.2)

        a = measure_flooding_sweep(factory, [15], num_trials=3, rng=7)
        b = measure_flooding_sweep(factory, [15], num_trials=3, rng=7)
        assert a[0].summary == b[0].summary

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            measure_flooding_sweep(lambda n: EdgeMEG(n, 0.1, 0.1), [], num_trials=3)
        with pytest.raises(ValueError):
            measure_flooding_sweep(lambda n: EdgeMEG(n, 0.1, 0.1), [10], num_trials=0)

    def test_ratio_spread(self):
        assert ratio_spread([1.0, 2.0], [10.0, 20.0]) == pytest.approx(1.0)
        assert ratio_spread([1.0, 4.0], [10.0, 20.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            ratio_spread([1.0], [0.0])
        with pytest.raises(ValueError):
            ratio_spread([], [])


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 11)}

    def test_get_experiment(self):
        experiment = get_experiment("E1")
        assert experiment.experiment_id == "E1"
        assert callable(experiment.runner)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("E99")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("E1", scale="huge")

    @pytest.mark.parametrize("experiment_id", ["E1", "E2", "E7"])
    def test_small_scale_experiments_produce_rows(self, experiment_id):
        report = run_experiment(experiment_id, scale="small", seed=0)
        assert report.experiment_id == experiment_id
        assert len(report.rows) >= 3
        assert all(report.columns)

    def test_e1_bound_dominates_measurement(self):
        report = run_experiment("E1", scale="small", seed=1)
        for row in report.rows:
            assert row["measured_mean"] <= row["theorem1_bound"]

    def test_e7_has_tightness_column(self):
        report = run_experiment("E7", scale="small", seed=2)
        values = report.column_values("tight_region(q>=np)")
        assert True in values or False in values
