"""Concurrency tests for the result store: parallel appends and compaction.

The store's contract under concurrency: appends from any number of processes
never interleave partial lines, and ``compact()`` never drops a record
another process appended — even when this instance's lazy in-memory index
was built before that append happened.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.engine import ResultStore


def _context() -> multiprocessing.context.BaseContext:
    """Fork where possible (cheap child start); spawn otherwise."""
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    return multiprocessing.get_context(method)


def _write_records(directory: str, writer: int, count: int) -> None:
    store = ResultStore(directory)
    for i in range(count):
        # A payload long enough that a torn write would be detectable.
        store.put(
            f"writer{writer}-key{i}",
            {"writer": writer, "index": i, "payload": list(range(200))},
        )


class TestConcurrentWriters:
    @pytest.mark.parametrize("writers,records", [(4, 25)])
    def test_parallel_appends_lose_nothing(self, tmp_path, writers, records):
        context = _context()
        processes = [
            context.Process(target=_write_records, args=(str(tmp_path), w, records))
            for w in range(writers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
            assert process.exitcode == 0

        # Every line parses (no interleaved partial writes) ...
        store = ResultStore(tmp_path)
        with open(store.path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == writers * records
        for line in lines:
            entry = json.loads(line)
            assert set(entry) == {"key", "record"}
        # ... and every record is present.
        assert len(store) == writers * records
        for w in range(writers):
            for i in range(records):
                assert store.get(f"writer{w}-key{i}")["index"] == i

    def test_compact_during_concurrent_appends(self, tmp_path):
        context = _context()
        processes = [
            context.Process(target=_write_records, args=(str(tmp_path), w, 30))
            for w in range(2)
        ]
        for process in processes:
            process.start()
        compactor = ResultStore(tmp_path)
        # Interleave compactions with the writers' appends.
        for _ in range(5):
            compactor.compact()
        for process in processes:
            process.join()
            assert process.exitcode == 0
        final = ResultStore(tmp_path)
        assert len(final) == 2 * 30
        assert final.compact() >= 0
        assert len(ResultStore(tmp_path)) == 2 * 30


class TestLazyIndexRace:
    def test_compact_keeps_records_appended_by_another_instance(self, tmp_path):
        first = ResultStore(tmp_path)
        first.put("k1", {"value": 1})
        assert first.get("k1")  # builds the lazy index now

        # A second process (simulated by a second instance) appends.
        second = ResultStore(tmp_path)
        second.put("k2", {"value": 2})

        # The first instance's index predates k2; compact must not drop it.
        first.compact()
        fresh = ResultStore(tmp_path)
        assert fresh.get("k1") == {"value": 1}
        assert fresh.get("k2") == {"value": 2}

    def test_refresh_picks_up_foreign_appends(self, tmp_path):
        first = ResultStore(tmp_path)
        first.put("k1", {"value": 1})
        second = ResultStore(tmp_path)
        second.put("k2", {"value": 2})
        assert first.get("k2") is None  # stale lazy index: miss, not corruption
        first.refresh()
        assert first.get("k2") == {"value": 2}

    def test_compact_is_atomic_replace(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(10):
            store.put(f"k{i}", {"value": i})
        store.compact()
        # No leftover temporary file, and the data survived.
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert "results.jsonl.compact" not in leftovers
        assert len(ResultStore(tmp_path)) == 10
