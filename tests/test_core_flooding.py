"""Tests for repro.core.flooding."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.flooding import (
    FloodingResult,
    flood,
    flooding_time,
    flooding_time_samples,
    informed_fraction_curve,
    worst_case_flooding_time,
)
from repro.meg.adversarial import ExplicitScheduleGraph, RotatingSpanningTreeGraph
from repro.meg.base import StaticGraphProcess
from repro.meg.edge_meg import EdgeMEG
from repro.meg.erdos_renyi import ErdosRenyiSequence


class TestFloodOnStaticGraphs:
    def test_path_graph_flooding_time_is_eccentricity(self):
        process = StaticGraphProcess(nx.path_graph(6))
        assert flooding_time(process, source=0) == 5
        assert flooding_time(process, source=2) == 3

    def test_complete_graph_one_step(self):
        process = StaticGraphProcess(nx.complete_graph(8))
        assert flooding_time(process, source=3) == 1

    def test_star_graph(self):
        process = StaticGraphProcess(nx.star_graph(5))
        assert flooding_time(process, source=0) == 1
        assert flooding_time(process, source=1) == 2

    def test_single_node_graph(self):
        graph = nx.Graph()
        graph.add_node(0)
        process = StaticGraphProcess(graph)
        result = flood(process)
        assert result.flooding_time == 0
        assert result.completed

    def test_disconnected_graph_never_completes(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        process = StaticGraphProcess(graph)
        result = flood(process, source=0, max_steps=50)
        assert not result.completed
        assert result.final_informed == 2

    def test_flooding_time_raises_when_incomplete(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        process = StaticGraphProcess(graph)
        with pytest.raises(RuntimeError, match="did not complete"):
            flooding_time(process, source=0, max_steps=10)


class TestFloodingResult:
    def test_history_monotone(self):
        process = EdgeMEG(30, p=0.1, q=0.3)
        result = flood(process, rng=0)
        history = result.informed_history
        assert history[0] == 1
        assert all(a <= b for a, b in zip(history, history[1:]))
        assert history[-1] == 30

    def test_informed_at_clamps(self):
        result = FloodingResult(0, 4, (1, 2, 4), 2)
        assert result.informed_at(0) == 1
        assert result.informed_at(10) == 4
        with pytest.raises(ValueError):
            result.informed_at(-1)

    def test_time_to_fraction(self):
        result = FloodingResult(0, 10, (1, 3, 6, 10), 3)
        assert result.time_to_fraction(0.5) == 2
        assert result.time_to_fraction(1.0) == 3
        assert result.time_to_fraction(0.05) == 0

    def test_time_to_fraction_invalid(self):
        result = FloodingResult(0, 10, (1, 10), 1)
        with pytest.raises(ValueError):
            result.time_to_fraction(0.0)

    def test_time_to_fraction_unreached(self):
        result = FloodingResult(0, 10, (1, 2), None)
        assert result.time_to_fraction(0.9) is None


class TestFloodArguments:
    def test_invalid_source(self):
        process = EdgeMEG(10, p=0.3, q=0.3)
        with pytest.raises(ValueError):
            flood(process, source=10)

    def test_invalid_max_steps(self):
        process = EdgeMEG(10, p=0.3, q=0.3)
        with pytest.raises(ValueError):
            flood(process, max_steps=-1)

    def test_reproducible_with_seed(self):
        process = EdgeMEG(40, p=0.05, q=0.4)
        assert flooding_time(process, rng=11) == flooding_time(process, rng=11)

    def test_no_reset_continues_process(self):
        process = EdgeMEG(20, p=0.3, q=0.3)
        process.reset(3)
        process.run(5)
        time_before = process.time
        result = flood(process, reset=False)
        assert result.completed
        assert process.time > time_before

    def test_flood_uses_current_snapshot_first(self):
        # The schedule has a complete graph at time 0 and empty graphs after:
        # flooding must finish in one step because I_1 is built from E_0.
        complete = nx.complete_graph(5)
        empty = nx.Graph()
        empty.add_nodes_from(range(5))
        process = ExplicitScheduleGraph([complete, empty], cycle=False)
        assert flooding_time(process, source=0) == 1


class TestRepeatedTrials:
    def test_sample_count(self, small_edge_meg):
        samples = flooding_time_samples(small_edge_meg, 6, rng=0)
        assert len(samples) == 6
        assert all(s >= 1 for s in samples)

    def test_samples_reproducible(self, small_edge_meg):
        assert flooding_time_samples(small_edge_meg, 4, rng=5) == flooding_time_samples(
            small_edge_meg, 4, rng=5
        )

    def test_samples_vary_across_trials(self, small_edge_meg):
        samples = flooding_time_samples(small_edge_meg, 12, rng=1)
        assert len(set(samples)) > 1

    def test_invalid_num_trials(self, small_edge_meg):
        with pytest.raises(ValueError):
            flooding_time_samples(small_edge_meg, 0)

    def test_worst_case_at_least_single_source(self):
        process = StaticGraphProcess(nx.path_graph(5))
        worst = worst_case_flooding_time(process)
        assert worst == 4  # from an endpoint

    def test_worst_case_with_subset_of_sources(self, small_edge_meg):
        value = worst_case_flooding_time(small_edge_meg, sources=[0, 1], rng=0)
        assert value >= 1

    def test_worst_case_empty_sources_rejected(self, small_edge_meg):
        with pytest.raises(ValueError):
            worst_case_flooding_time(small_edge_meg, sources=[])


class TestInformedFractionCurve:
    def test_curve_shape(self, small_edge_meg):
        curve = informed_fraction_curve(small_edge_meg, num_trials=5, rng=0)
        assert curve[0] == pytest.approx(1 / 40)
        assert curve[-1] == pytest.approx(1.0)
        assert all(a <= b + 1e-12 for a, b in zip(curve, curve[1:]))

    def test_invalid_trials(self, small_edge_meg):
        with pytest.raises(ValueError):
            informed_fraction_curve(small_edge_meg, num_trials=0)


class TestFloodingOnDynamicBaselines:
    def test_rotating_star_flooding_time_is_deterministic(self):
        # One new node (the current star centre) is informed per step until the
        # centre index reaches the source, at which point everyone is informed:
        # the flooding time from source s is exactly s + 1.
        process = RotatingSpanningTreeGraph(12)
        assert flooding_time(process, source=5) == 6
        assert flooding_time(process, source=0) == 1
        # For the last node, all other nodes have already been informed one per
        # step before the centre ever reaches the source: min(s + 1, n - 1).
        assert flooding_time(process, source=11) == 11

    def test_iid_erdos_renyi_faster_than_sparse_edge_meg(self):
        # Same stationary density, but the i.i.d. process mixes in one step and
        # floods (weakly) faster on average than the sticky edge-MEG.
        n = 60
        density = 2.0 / n
        iid = ErdosRenyiSequence(n, p=density)
        sticky = EdgeMEG(n, p=density / 10, q=(1 - density) / 10)
        iid_mean = np.mean(flooding_time_samples(iid, 10, rng=3))
        sticky_mean = np.mean(flooding_time_samples(sticky, 10, rng=3))
        assert iid_mean <= sticky_mean

    def test_denser_graphs_flood_faster(self):
        n = 50
        sparse = EdgeMEG(n, p=1.0 / n, q=0.5)
        dense = EdgeMEG(n, p=10.0 / n, q=0.5)
        sparse_mean = np.mean(flooding_time_samples(sparse, 10, rng=4))
        dense_mean = np.mean(flooding_time_samples(dense, 10, rng=4))
        assert dense_mean < sparse_mean
