"""Integration tests crossing module boundaries.

These exercise the same pipelines the experiments and examples use:
model construction -> stationarity parameters -> flooding measurement ->
bound evaluation -> comparison, for each family of models in the paper.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.meeting_time import expected_meeting_time, meeting_time_bound
from repro.core.bounds import (
    classic_edge_meg_bound,
    corollary5_bound,
    theorem1_bound,
    theorem3_bound,
    waypoint_flooding_bound,
)
from repro.core.flooding import flooding_time_samples
from repro.core.metrics import flooding_time_statistics
from repro.core.stationarity import estimate_stationarity, exact_parameters
from repro.graphs.grid import augmented_grid_graph, grid_graph
from repro.graphs.paths import shortest_path_family
from repro.graphs.properties import diameter, path_family_regularity
from repro.markov.builders import complete_graph_walk
from repro.markov.mixing import mixing_time
from repro.meg.edge_meg import EdgeMEG, GeneralEdgeMEG
from repro.meg.node_meg import NodeMEG
from repro.mobility.random_path import GraphRandomWalkMobility, RandomPathModel
from repro.mobility.random_waypoint import RandomWaypoint


class TestEdgeMegPipeline:
    def test_theorem1_bound_dominates_measured_time(self):
        n = 80
        model = EdgeMEG(n, p=1.0 / n, q=0.5)
        alpha, beta = exact_parameters(model)
        epoch = mixing_time(model.edge_chain())
        measured = flooding_time_statistics(model, num_trials=8, rng=0)
        bound = theorem1_bound(n, max(epoch, 1), alpha, beta)
        assert measured.maximum <= bound

    def test_general_edge_meg_with_hidden_chain(self):
        # A 3-state hidden chain where only the last state switches the edge on.
        from repro.markov.builders import birth_death_chain

        chain = birth_death_chain([0.4, 0.4, 0.0], [0.0, 0.4, 0.4])
        n = 50
        model = GeneralEdgeMEG(n, chain, chi=[0, 0, 1])
        alpha = model.stationary_edge_probability()
        assert alpha == pytest.approx(1 / 3, abs=1e-6)
        measured = flooding_time_statistics(model, num_trials=5, rng=1)
        assert measured.mean < 10  # dense regime floods very fast

    def test_estimated_and_exact_alpha_agree(self):
        model = EdgeMEG(30, p=0.2, q=0.2)
        exact_alpha, _ = exact_parameters(model)
        estimate = estimate_stationarity(model, epoch_length=6, num_samples=50, rng=2)
        assert estimate.alpha == pytest.approx(exact_alpha)


class TestNodeMegPipeline:
    def test_theorem3_bound_dominates_measured_time(self):
        chain = complete_graph_walk(10)
        n = 50
        model = NodeMEG(n, chain, np.eye(10, dtype=bool))
        t_mix = mixing_time(chain)
        measured = flooding_time_statistics(model, num_trials=8, rng=3)
        bound = theorem3_bound(n, max(t_mix, 1), model.edge_probability(), max(model.eta(), 1.0))
        assert measured.maximum <= bound

    def test_more_meeting_points_slow_flooding(self):
        n = 40
        few_points = NodeMEG(n, complete_graph_walk(5), np.eye(5, dtype=bool))
        many_points = NodeMEG(n, complete_graph_walk(40), np.eye(40, dtype=bool))
        fast = np.mean(flooding_time_samples(few_points, 6, rng=4))
        slow = np.mean(flooding_time_samples(many_points, 6, rng=4))
        assert slow >= fast


class TestWaypointPipeline:
    def test_bound_dominates_and_lower_bound_holds(self):
        n = 60
        side = math.sqrt(n)
        model = RandomWaypoint(n, side=side, radius=1.0, v_min=1.0)
        measured = flooding_time_statistics(model, num_trials=4, rng=5)
        upper = waypoint_flooding_bound(n, side, 1.0, 1.0)
        assert measured.maximum <= upper
        # The trivial lower bound L/(r+v) is loose but must not exceed the
        # measured mean by more than a small factor.
        assert measured.mean >= side / 2.0 / 4.0

    def test_faster_nodes_flood_faster(self):
        n = 50
        side = math.sqrt(n)
        slow_model = RandomWaypoint(n, side=side, radius=1.0, v_min=0.5)
        fast_model = RandomWaypoint(n, side=side, radius=1.0, v_min=2.0)
        slow = np.mean(flooding_time_samples(slow_model, 4, rng=6))
        fast = np.mean(flooding_time_samples(fast_model, 4, rng=6))
        assert fast <= slow


class TestGraphMobilityPipeline:
    def test_corollary5_bound_dominates_random_path_flooding(self):
        graph = grid_graph(4)
        family = shortest_path_family(graph)
        n = 32
        model = RandomPathModel(n, family, holding_probability=0.25)
        measured = flooding_time_statistics(model, num_trials=4, rng=7)
        bound = corollary5_bound(
            n,
            mixing_time=max(diameter(graph), 1),
            num_points=graph.number_of_nodes(),
            delta=path_family_regularity(family),
        )
        assert measured.maximum <= bound

    def test_augmented_grid_floods_faster_than_plain(self):
        n = 60
        plain = GraphRandomWalkMobility(n, augmented_grid_graph(6, 1), holding_probability=0.5)
        augmented = GraphRandomWalkMobility(n, augmented_grid_graph(6, 3), holding_probability=0.5)
        plain_mean = np.mean(flooding_time_samples(plain, 5, rng=8))
        augmented_mean = np.mean(flooding_time_samples(augmented, 5, rng=8))
        assert augmented_mean <= plain_mean

    def test_meeting_time_bound_dominates_measured_flooding(self):
        # [15]: flooding is O(T* log n); with implicit constant 1 the product
        # should dominate the measured value on a small grid.
        graph = grid_graph(5)
        n = 40
        model = GraphRandomWalkMobility(n, graph, holding_probability=0.5)
        measured = flooding_time_statistics(model, num_trials=4, rng=9)
        meeting = expected_meeting_time(graph, num_trials=100, rng=9)
        assert measured.mean <= meeting_time_bound(meeting, n) * 3


class TestCrossModelComparisons:
    def test_edge_meg_bound_vs_prior_bound_shapes(self):
        # Both bounds decrease as p grows, and in the tight region (q >= n p)
        # the general bound stays within a polylog factor of the prior bound,
        # matching the Appendix-A discussion.
        from repro.baselines.edge_meg_bound import classic_edge_meg_prior_bound
        from repro.util.mathutils import logn_factor

        n, q = 100, 0.5
        general = [classic_edge_meg_bound(n, p, q) for p in (0.001, 0.01, 0.1)]
        prior = [classic_edge_meg_prior_bound(n, p) for p in (0.001, 0.01, 0.1)]
        assert general[0] > general[1] > general[2]
        assert prior[0] > prior[1] > prior[2]
        # Tight region: p = 0.001 gives n p = 0.1 <= q.
        assert general[0] / prior[0] <= 2 * logn_factor(n, 2)

    def test_flooding_monotone_in_radius_for_waypoint(self):
        n = 40
        side = 6.0
        small_r = RandomWaypoint(n, side=side, radius=0.7, v_min=1.0)
        large_r = RandomWaypoint(n, side=side, radius=2.0, v_min=1.0)
        slow = np.mean(flooding_time_samples(small_r, 4, rng=10))
        fast = np.mean(flooding_time_samples(large_r, 4, rng=10))
        assert fast <= slow
