"""Request-facade tests: round-trips, validation taxonomy, CLI equivalence.

:mod:`repro.api` is the single seam where work requests become engine plans;
these tests pin its three contracts:

* serialization round-trips exactly (``from_json(to_json(r)) == r``) and
  malformed payloads die in the :class:`~repro.api.RequestError` taxonomy;
* compilation produces the *same* specs and content-addressed store keys as
  the historical construction paths it replaced (sweep runner, experiment
  pipeline, library flood helpers);
* the CLI routed through the facade emits byte-identical results.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    FLOOD_FAMILY_DEFAULTS,
    SCHEMA_VERSION,
    InvalidParameterError,
    RequestError,
    SchemaError,
    UnknownExperimentError,
    UnknownFamilyError,
    WorkRequest,
    compile_request,
    estimator_description,
    experiment_plan,
    experiment_request,
    flood_request,
    sweep_request,
)
from repro.core.flooding import flooding_time_samples
from repro.engine import Engine, ResultStore, batch_store_key
from repro.experiments.pipeline import compile_experiment, plan_store_keys
from repro.experiments.runner import measure_flooding_sweep
from repro.sweeps import SWEEP_FAMILIES, SWEEP_FAMILY_DEFAULTS


class TestRoundTrips:
    @pytest.mark.parametrize(
        "request_",
        [
            sweep_request("edge-meg", [16, 32], 5, seed=7),
            sweep_request("waypoint", [10], 3, seed=1, params={"side": 4.0}),
            sweep_request("grid-walk", [9, 16], 2, sources="all"),
            sweep_request("edge-meg", [16], 4, num_sources=3),
            experiment_request("E1"),
            experiment_request("E7", scale="full", seed=9),
            flood_request("edge-meg", 5, seed=3, params={"nodes": 32}),
            flood_request("waypoint", 2, sources="all"),
            flood_request("grid-walk", 2, num_sources=2),
        ],
        ids=lambda r: f"{r.kind}-{r.family or r.experiment_id}",
    )
    def test_json_round_trip_is_identity(self, request_):
        assert WorkRequest.from_json(request_.to_json()) == request_

    def test_payload_is_schema_stamped_canonical_json(self):
        request = sweep_request("edge-meg", [16], 3, seed=2)
        payload = json.loads(request.to_json())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["kind"] == "sweep"
        assert payload["nodes"] == [16]
        # Omitted params were canonicalized in from the family defaults.
        assert payload["params"] == SWEEP_FAMILY_DEFAULTS["edge-meg"]

    def test_equal_meaning_requests_are_equal(self):
        """Defaults filled explicitly or implicitly canonicalize identically."""
        implicit = sweep_request("waypoint", [10], 3)
        explicit = sweep_request(
            "waypoint", (10,), 3, params=SWEEP_FAMILY_DEFAULTS["waypoint"]
        )
        assert implicit == explicit
        assert implicit.to_json() == explicit.to_json()

    def test_numeric_coercion_is_type_stable(self):
        """A float-typed integer coerces to the default's type, not its own."""
        request = flood_request("grid-walk", 2, params={"grid_side": 4.0, "nodes": 9})
        assert request.params["grid_side"] == 4
        assert isinstance(request.params["grid_side"], int)


class TestValidationTaxonomy:
    def test_unknown_schema_version(self):
        payload = json.loads(sweep_request("edge-meg", [16], 3).to_json())
        payload["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="unsupported request schema"):
            WorkRequest.from_dict(payload)

    def test_unknown_kind(self):
        with pytest.raises(SchemaError, match="request kind"):
            WorkRequest.from_dict({"kind": "tournament"})

    def test_unknown_field_rejected(self):
        payload = json.loads(flood_request("edge-meg", 3).to_json())
        payload["shards"] = 4  # execution hint, not request identity
        with pytest.raises(SchemaError, match="unknown flood request field"):
            WorkRequest.from_dict(payload)

    def test_non_object_body(self):
        with pytest.raises(SchemaError, match="JSON object"):
            WorkRequest.from_dict([1, 2, 3])

    def test_invalid_json_text(self):
        with pytest.raises(SchemaError, match="not valid JSON"):
            WorkRequest.from_json("{nope")

    def test_unknown_sweep_family(self):
        with pytest.raises(UnknownFamilyError, match="unknown sweep family"):
            sweep_request("moebius", [16], 3)

    def test_unknown_flood_family(self):
        with pytest.raises(UnknownFamilyError, match="unknown flood family"):
            flood_request("moebius", 3)

    def test_unknown_experiment(self):
        with pytest.raises(UnknownExperimentError, match="unknown experiment"):
            experiment_request("E99")

    def test_bad_scale(self):
        with pytest.raises(InvalidParameterError, match="scale"):
            experiment_request("E1", scale="gigantic")

    def test_unknown_parameter_name(self):
        with pytest.raises(InvalidParameterError, match="unknown edge-meg parameter"):
            sweep_request("edge-meg", [16], 3, params={"qq": 0.5})

    def test_non_numeric_parameter(self):
        with pytest.raises(InvalidParameterError, match="must be a number"):
            sweep_request("edge-meg", [16], 3, params={"q": "high"})

    def test_integer_parameter_rejects_fraction(self):
        with pytest.raises(InvalidParameterError, match="must be an integer"):
            flood_request("grid-walk", 2, params={"grid_side": 4.5})

    def test_trials_must_be_positive(self):
        with pytest.raises(InvalidParameterError, match="trials"):
            sweep_request("edge-meg", [16], 0)

    def test_nodes_must_be_non_empty(self):
        with pytest.raises(InvalidParameterError, match="nodes"):
            sweep_request("edge-meg", [], 3)

    def test_bad_sources_token(self):
        with pytest.raises(InvalidParameterError, match="sources"):
            sweep_request("edge-meg", [16], 3, sources="some")

    def test_sources_and_num_sources_exclusive(self):
        with pytest.raises(InvalidParameterError, match="mutually exclusive"):
            flood_request("edge-meg", 3, sources="all", num_sources=2)

    def test_cross_kind_fields_forbidden(self):
        with pytest.raises(SchemaError, match="does not apply"):
            WorkRequest(kind="experiment", experiment_id="E1", family="edge-meg")

    def test_taxonomy_is_all_value_errors(self):
        for exc in (
            SchemaError,
            UnknownFamilyError,
            UnknownExperimentError,
            InvalidParameterError,
        ):
            assert issubclass(exc, RequestError)
            assert issubclass(exc, ValueError)


class TestCompilationEquivalence:
    def test_sweep_plan_matches_historical_construction(self):
        """Facade store keys == sweep_trial_specs + batch_store_key keys."""
        from repro.experiments.runner import sweep_trial_specs

        request = sweep_request("edge-meg", [16, 24], 6, seed=7)
        plan = compile_request(request)
        legacy = sweep_trial_specs(
            SWEEP_FAMILIES["edge-meg"],
            [16, 24],
            6,
            rng=7,
            factory_kwargs={"q": 0.5, "avg_degree": 4.0},
        )
        assert plan.shard_mode == "trials"
        assert plan.store_keys == [batch_store_key(spec) for spec in legacy]
        assert [job.tag for job in plan.jobs] == ["n=16", "n=24"]

    def test_experiment_plan_matches_pipeline_compilation(self):
        request = experiment_request("E1", scale="small", seed=3)
        plan = compile_request(request)
        pipeline_plan = compile_experiment("E1", scale="small", seed=3)
        assert plan.shard_mode == "jobs"
        assert plan.store_keys == plan_store_keys(pipeline_plan)
        assert [job.tag for job in plan.jobs] == [job.tag for job in pipeline_plan.jobs]
        assert experiment_plan(request).experiment_id == "E1"

    def test_flood_key_matches_library_helper(self, tmp_path):
        """The facade's flood spec hits the cache the library path populated."""
        store = ResultStore(str(tmp_path / "store"))
        model_params = FLOOD_FAMILY_DEFAULTS["edge-meg"] | {"nodes": 24}
        from repro.meg.edge_meg import EdgeMEG

        model = EdgeMEG(24, p=model_params["p"], q=model_params["q"])
        samples = flooding_time_samples(
            model, num_trials=4, rng=5, engine=Engine(store=store)
        )
        plan = compile_request(flood_request("edge-meg", 4, seed=5, params={"nodes": 24}))
        assert len(plan.jobs) == 1
        record = store.get(plan.store_keys[0])
        assert record is not None
        assert [int(t) for t in record["flooding_times"]] == samples

    def test_assembly_from_records_matches_live_run(self, tmp_path):
        """Warm assembly (records only) == the payload of a live engine run."""
        store = ResultStore(str(tmp_path / "store"))
        request = sweep_request("edge-meg", [16, 24], 5, seed=11)
        plan = compile_request(request)
        engine = Engine(store=store)
        for job in plan.jobs:
            engine.run(job.spec)
        records = {job.tag: store.get(job.store_key()) for job in plan.jobs}
        payload = plan.assemble(records)
        assert payload["kind"] == "sweep"
        assert payload["estimator"] == estimator_description(None, None)
        live = measure_flooding_sweep(
            SWEEP_FAMILIES["edge-meg"],
            [16, 24],
            num_trials=5,
            rng=11,
            factory_kwargs={"q": 0.5, "avg_degree": 4.0},
        )
        assert [m["samples"] for m in payload["measurements"]] == [
            list(m.samples) for m in live
        ]

    def test_compile_requires_a_request(self):
        with pytest.raises(SchemaError, match="WorkRequest"):
            compile_request({"kind": "sweep"})


class TestCliEquivalence:
    def test_cli_sweep_json_matches_facade_assembly(self, tmp_path, capsys):
        """`repro sweep --json` samples == the facade's assembled payload."""
        from repro.cli import main

        store_dir = tmp_path / "store"
        json_path = tmp_path / "sweep.json"
        exit_code = main(
            [
                "sweep", "edge-meg", "--nodes", "16,24", "--trials", "4",
                "--seed", "7", "--results-dir", str(store_dir),
                "--json", str(json_path),
            ]
        )
        assert exit_code == 0
        capsys.readouterr()
        cli_payload = json.loads(json_path.read_text())

        plan = compile_request(sweep_request("edge-meg", [16, 24], 4, seed=7))
        store = ResultStore(str(store_dir))
        records = {job.tag: store.get(job.store_key()) for job in plan.jobs}
        assert all(record is not None for record in records.values())
        api_payload = plan.assemble(records)
        assert [m["samples"] for m in cli_payload["measurements"]] == [
            m["samples"] for m in api_payload["measurements"]
        ]
        assert cli_payload["estimator"] == api_payload["estimator"]

    def test_cli_flood_json_matches_facade_assembly(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = tmp_path / "store"
        json_path = tmp_path / "flood.json"
        exit_code = main(
            [
                "flood", "edge-meg", "--nodes", "24", "--trials", "3",
                "--seed", "2", "--results-dir", str(store_dir),
                "--json", str(json_path),
            ]
        )
        assert exit_code == 0
        capsys.readouterr()
        cli_payload = json.loads(json_path.read_text())

        plan = compile_request(flood_request("edge-meg", 3, seed=2, params={"nodes": 24}))
        store = ResultStore(str(store_dir))
        record = store.get(plan.store_keys[0])
        assert record is not None
        api_payload = plan.assemble({"flood": record})
        assert cli_payload["samples"] == api_payload["samples"]
        assert cli_payload["summary"] == api_payload["summary"]

    def test_cli_rejects_bad_family_parameter(self, capsys):
        from repro.cli import main

        exit_code = main(
            ["flood", "edge-meg", "--nodes", "0", "--trials", "2"]
        )
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err
