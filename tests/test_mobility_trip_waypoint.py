"""Tests for the geometric mobility models: random trip, waypoint, Manhattan."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility.geometry import SquareRegion
from repro.mobility.manhattan import ManhattanSampler, ManhattanWaypoint
from repro.mobility.random_trip import RandomTrip, TrajectorySampler, straight_leg
from repro.mobility.random_waypoint import RandomWaypoint, WaypointSampler


class TestStraightLeg:
    def test_reaches_destination(self):
        leg = straight_leg(np.array([0.0, 0.0]), np.array([3.0, 4.0]), speed=1.0)
        assert np.allclose(leg[-1], [3.0, 4.0])

    def test_number_of_steps(self):
        leg = straight_leg(np.array([0.0, 0.0]), np.array([3.0, 4.0]), speed=1.0)
        assert leg.shape[0] == 5  # distance 5 at speed 1

    def test_step_lengths_bounded_by_speed(self):
        leg = straight_leg(np.array([0.0, 0.0]), np.array([2.7, 1.3]), speed=0.6)
        previous = np.array([0.0, 0.0])
        for point in leg:
            assert np.linalg.norm(point - previous) <= 0.6 + 1e-9
            previous = point

    def test_zero_distance(self):
        leg = straight_leg(np.array([1.0, 1.0]), np.array([1.0, 1.0]), speed=1.0)
        assert leg.shape == (1, 2)
        assert np.allclose(leg[0], [1.0, 1.0])

    def test_fast_speed_single_step(self):
        leg = straight_leg(np.array([0.0, 0.0]), np.array([1.0, 0.0]), speed=10.0)
        assert leg.shape[0] == 1

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            straight_leg(np.zeros(2), np.ones(2), speed=0.0)


class TestWaypointSampler:
    def test_invalid_speed_range(self):
        with pytest.raises(ValueError):
            WaypointSampler(v_min=2.0, v_max=1.0)
        with pytest.raises(ValueError):
            WaypointSampler(v_min=0.0, v_max=1.0)

    def test_leg_stays_in_region(self):
        sampler = WaypointSampler(1.0, 2.0)
        region = SquareRegion(5.0)
        rng = np.random.default_rng(0)
        leg = sampler.sample_leg(np.array([2.5, 2.5]), region, rng)
        assert leg[:, 0].min() >= 0 and leg[:, 0].max() <= 5
        assert leg[:, 1].min() >= 0 and leg[:, 1].max() <= 5

    def test_pause_steps_appended(self):
        sampler = WaypointSampler(1.0, 1.0, pause_steps=3)
        region = SquareRegion(5.0)
        rng = np.random.default_rng(1)
        leg = sampler.sample_leg(np.array([0.0, 0.0]), region, rng)
        assert np.allclose(leg[-1], leg[-2])
        assert np.allclose(leg[-2], leg[-3])

    def test_negative_pause_rejected(self):
        with pytest.raises(ValueError):
            WaypointSampler(1.0, 1.0, pause_steps=-1)


class TestRandomWaypointModel:
    def test_positions_inside_region(self):
        model = RandomWaypoint(20, side=5.0, radius=1.0, v_min=1.0)
        model.reset(0)
        for _ in range(20):
            positions = model.positions()
            assert positions.min() >= -1e-9
            assert positions.max() <= 5.0 + 1e-9
            model.step()

    def test_positions_change_over_time(self):
        model = RandomWaypoint(10, side=5.0, radius=1.0, v_min=1.0)
        model.reset(1)
        before = model.positions()
        model.step()
        after = model.positions()
        assert not np.allclose(before, after)

    def test_step_displacement_bounded_by_speed(self):
        model = RandomWaypoint(10, side=8.0, radius=1.0, v_min=0.5, v_max=1.5)
        model.reset(2)
        before = model.positions()
        model.step()
        after = model.positions()
        displacement = np.linalg.norm(after - before, axis=1)
        assert displacement.max() <= 1.5 + 1e-9

    def test_reproducible(self):
        a = RandomWaypoint(10, side=4.0, radius=1.0, v_min=1.0)
        b = RandomWaypoint(10, side=4.0, radius=1.0, v_min=1.0)
        a.reset(7)
        b.reset(7)
        a.run(5)
        b.run(5)
        assert np.allclose(a.positions(), b.positions())

    def test_edges_respect_radius(self):
        model = RandomWaypoint(25, side=4.0, radius=1.0, v_min=1.0)
        model.reset(3)
        positions = model.positions()
        for i, j in model.current_edges():
            assert np.linalg.norm(positions[i] - positions[j]) <= 1.0 + 1e-9

    def test_default_speed_range(self):
        model = RandomWaypoint(5, side=4.0, radius=1.0, v_min=2.0)
        assert model.v_min == model.v_max == 2.0

    def test_mixing_time_estimate(self):
        model = RandomWaypoint(5, side=10.0, radius=1.0, v_min=2.0)
        assert model.mixing_time_estimate() == pytest.approx(5.0)

    def test_expected_degree_estimate_scales_with_radius(self):
        small = RandomWaypoint(50, side=10.0, radius=1.0, v_min=1.0)
        large = RandomWaypoint(50, side=10.0, radius=2.0, v_min=1.0)
        assert large.expected_degree_estimate() == pytest.approx(
            4 * small.expected_degree_estimate()
        )

    def test_step_before_reset_raises(self):
        model = RandomWaypoint(5, side=4.0, radius=1.0, v_min=1.0)
        with pytest.raises(RuntimeError):
            model.step()
        with pytest.raises(RuntimeError):
            model.positions()

    def test_positional_bias_towards_centre(self):
        # The waypoint stationary distribution is denser at the centre than at
        # the border (the key qualitative property quoted by the paper).
        model = RandomWaypoint(40, side=6.0, radius=1.0, v_min=1.0, warmup_steps=30)
        model.reset(5)
        centre_hits = 0
        border_hits = 0
        for _ in range(150):
            positions = model.positions()
            distance_to_centre = np.abs(positions - 3.0).max(axis=1)
            centre_hits += int((distance_to_centre < 1.5).sum())
            border_hits += int((distance_to_centre >= 1.5).sum())
            model.step()
        # The central 3x3 area is 1/4 of the square; with a uniform law it
        # would get ~25% of the mass, the waypoint gives it noticeably more.
        assert centre_hits / (centre_hits + border_hits) > 0.3


class TestCustomTrajectorySampler:
    class _HorizontalSampler(TrajectorySampler):
        """Always travels to the opposite horizontal border at speed 1."""

        def sample_leg(self, position, region, rng):
            target_x = 0.0 if position[0] > region.side / 2 else region.side
            return straight_leg(position, np.array([target_x, position[1]]), 1.0)

    def test_custom_sampler_used(self):
        model = RandomTrip(5, side=4.0, radius=1.0, sampler=self._HorizontalSampler())
        model.reset(0)
        before = model.positions()
        model.step()
        after = model.positions()
        # Only the x coordinate changes under the horizontal sampler.
        assert np.allclose(before[:, 1], after[:, 1])
        assert not np.allclose(before[:, 0], after[:, 0])

    def test_invalid_sampler_output_detected(self):
        class BadSampler(TrajectorySampler):
            def sample_leg(self, position, region, rng):
                return np.zeros((0, 2))

        model = RandomTrip(3, side=4.0, radius=1.0, sampler=BadSampler())
        with pytest.raises(ValueError):
            model.reset(0)
            model.step()

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            RandomTrip(3, side=4.0, radius=1.0, sampler=self._HorizontalSampler(), warmup_steps=-1)


class TestManhattanWaypoint:
    def test_leg_is_axis_aligned(self):
        sampler = ManhattanSampler(speed=1.0)
        region = SquareRegion(6.0)
        rng = np.random.default_rng(4)
        start = np.array([1.0, 1.0])
        leg = sampler.sample_leg(start, region, rng)
        previous = start
        for point in leg:
            step = point - previous
            # Each step moves along a single axis.
            assert min(abs(step[0]), abs(step[1])) < 1e-9
            previous = point

    def test_leg_reaches_square(self):
        model = ManhattanWaypoint(10, side=5.0, radius=1.0, speed=1.0)
        model.reset(1)
        for _ in range(10):
            model.step()
            positions = model.positions()
            assert positions.min() >= -1e-9 and positions.max() <= 5.0 + 1e-9

    def test_speed_property(self):
        model = ManhattanWaypoint(5, side=5.0, radius=1.0, speed=2.0)
        assert model.speed == 2.0

    def test_mixing_time_estimate(self):
        model = ManhattanWaypoint(5, side=5.0, radius=1.0, speed=1.0)
        assert model.mixing_time_estimate() == pytest.approx(10.0)

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            ManhattanSampler(speed=0.0)
