"""Tests for repro.util.validation."""

from __future__ import annotations

import pytest

from repro.util.validation import (
    require_in_range,
    require_node_count,
    require_positive,
    require_probability,
    require_type,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive(3.2, "x") == 3.2

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="x"):
            require_positive(0.0, "x")

    def test_accepts_zero_when_not_strict(self):
        assert require_positive(0.0, "x", strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive(-1.0, "x", strict=False)


class TestRequireProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert require_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 2.0])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValueError):
            require_probability(value, "p")

    def test_returns_float(self):
        assert isinstance(require_probability(1, "p"), float)


class TestRequireInRange:
    def test_inside(self):
        assert require_in_range(5, "x", low=0, high=10) == 5

    def test_below_low(self):
        with pytest.raises(ValueError):
            require_in_range(-1, "x", low=0)

    def test_above_high(self):
        with pytest.raises(ValueError):
            require_in_range(11, "x", high=10)

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            require_in_range(0, "x", low=0, low_inclusive=False)
        with pytest.raises(ValueError):
            require_in_range(10, "x", high=10, high_inclusive=False)

    def test_inclusive_boundaries_accepted(self):
        assert require_in_range(0, "x", low=0, high=0) == 0


class TestRequireType:
    def test_accepts_matching(self):
        assert require_type(3, "x", int) == 3

    def test_accepts_any_of_types(self):
        assert require_type("s", "x", int, str) == "s"

    def test_rejects_mismatch(self):
        with pytest.raises(TypeError, match="x must be of type"):
            require_type(3.0, "x", int)


class TestRequireNodeCount:
    def test_accepts_positive_int(self):
        assert require_node_count(5) == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            require_node_count(0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            require_node_count(True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            require_node_count(5.0)
