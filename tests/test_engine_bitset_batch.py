"""Bit-packed and realization-batched kernels: exactness on every family.

PR 7's kernels only exist for speed, so the entire test surface is equality:
the bitset kernel, the realization-batch kernel and the optional JIT CSR
expansion must return bit-identical flooding outcomes to the set-based loop
on shared seeds for every model family, and the cell-list neighbor search
must return exactly the k-d tree's edge set.  The file also pins the two RNG
stream identities the fast node-MEG runner is built on (block pre-drawing
and the inverse-CDF mirror of ``Generator.choice``), and the new
``backend="auto"`` resolution rules.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import networkx as nx
import numpy as np
import pytest
import scipy.sparse
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.spatial import cKDTree

import repro
from repro.core.flooding import flood, flood_sources_set
from repro.engine import (
    BACKENDS,
    BATCH_AUTO_MAX_NODES,
    BATCH_AUTO_MIN_TRIALS,
    BITSET_AUTO_MIN_NODES,
    Engine,
    NUMBA_AVAILABLE,
    TrialSpec,
    flood_bitset,
    flood_sources_batch,
    flood_sparse,
    flood_trials_batch,
    flood_vectorized,
    has_fast_packed_adjacency,
    has_fast_reach_mask_batch,
    has_fast_trial_batch,
    pack_bool_matrix,
    pack_bool_vector,
    packed_width,
    resolve_backend,
    unpack_bit_vector,
)
from repro.engine.batch import _GenericTrialBatch
from repro.engine.bitset import popcount
from repro.engine.jit import csr_reach, numba_requested
from repro.graphs.grid import augmented_grid_graph, grid_graph
from repro.markov.builders import random_walk_on_graph
from repro.meg.base import DynamicGraph, StaticGraphProcess
from repro.meg.edge_meg import EdgeMEG
from repro.meg.node_meg import NodeMEG
from repro.mobility.connection import (
    CONNECTION_METHODS,
    UnitDiskConnection,
    radius_pairs,
    radius_pairs_grid,
    resolve_connection_method,
)
from repro.mobility.random_path import GraphRandomWalkMobility, random_walk_path_model
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypoint
from repro.telemetry import core as telemetry


def _node_meg(num_nodes: int = 30) -> NodeMEG:
    chain = random_walk_on_graph(grid_graph(3)).lazy(0.2)
    return NodeMEG(
        num_nodes,
        chain,
        lambda a, b: abs(a[0] - b[0]) + abs(a[1] - b[1]) <= 1,
    )


def _family_factories():
    return {
        "edge-meg": lambda: EdgeMEG(30, p=0.1, q=0.3),
        "node-meg": lambda: _node_meg(30),
        "grid": lambda: GraphRandomWalkMobility(
            24, augmented_grid_graph(4, 2), radius_hops=1
        ),
        "mobility": lambda: RandomWaypoint(24, side=4.0, radius=1.2, v_min=1.0),
        "static": lambda: StaticGraphProcess(nx.random_regular_graph(3, 20, seed=1)),
    }


FAMILIES = sorted(_family_factories())


def _canonical(pairs: np.ndarray) -> np.ndarray:
    """Pairs in lexicographic order (the k-d tree's output order is arbitrary)."""
    pairs = np.asarray(pairs, dtype=np.intp).reshape(-1, 2)
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


class TestBitPacking:
    def test_packed_width(self):
        assert packed_width(0) == 0
        assert packed_width(1) == 1
        assert packed_width(64) == 1
        assert packed_width(65) == 2
        with pytest.raises(ValueError):
            packed_width(-1)

    @pytest.mark.parametrize("columns", [1, 7, 63, 64, 65, 130])
    def test_matrix_roundtrip(self, columns):
        rng = np.random.default_rng(columns)
        matrix = rng.random((5, columns)) < 0.4
        packed = pack_bool_matrix(matrix)
        assert packed.dtype == np.uint64
        assert packed.shape == (5, packed_width(columns))
        for row in range(5):
            assert np.array_equal(unpack_bit_vector(packed[row], columns), matrix[row])

    def test_padding_bits_are_zero(self):
        matrix = np.ones((3, 70), dtype=bool)
        packed = pack_bool_matrix(matrix)
        # Word 1 holds bits 64..127; only the first 6 may be set.
        assert np.all(packed[:, 1] == np.uint64((1 << 6) - 1))

    def test_vector_roundtrip_and_validation(self):
        vector = np.random.default_rng(0).random(100) < 0.5
        assert np.array_equal(unpack_bit_vector(pack_bool_vector(vector), 100), vector)
        with pytest.raises(ValueError):
            pack_bool_vector(np.zeros((2, 2), dtype=bool))
        with pytest.raises(ValueError):
            pack_bool_matrix(np.zeros(4, dtype=bool))

    def test_popcount_matches_unpacked_sum(self):
        rng = np.random.default_rng(3)
        words = rng.integers(0, 2**63, size=40, dtype=np.uint64)
        expected = [bin(int(word)).count("1") for word in words]
        assert popcount(words).tolist() == expected

    @given(
        bits=st.lists(st.booleans(), min_size=1, max_size=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, bits):
        vector = np.array(bits, dtype=bool)
        packed = pack_bool_vector(vector)
        assert packed.size == packed_width(vector.size)
        assert np.array_equal(unpack_bit_vector(packed, vector.size), vector)
        assert int(popcount(packed).sum()) == int(vector.sum())


class TestStreamIdentities:
    """The two RNG identities the fast trial-batch runner relies on."""

    def test_block_predraw_matches_sequential_draws(self):
        # Drawing a (K, m) block consumes the PCG64 stream exactly as K
        # sequential draws of m uniforms — the pre-draw window of the fast
        # runner therefore replays per-round draws bit-identically.
        for seed in range(20):
            block = np.random.default_rng(seed).random((8, 13))
            reference = np.random.default_rng(seed)
            for row in range(8):
                assert np.array_equal(block[row], reference.random(13))

    def test_choice_mirror_matches_generator_choice(self):
        # ``Generator.choice(k, size=n, p=dist)`` draws n uniforms and
        # inverts the normalised CDF; the mirror used by the batched reset
        # must reproduce it exactly, including the renormalisation step.
        for seed in range(50):
            dist_rng = np.random.default_rng(1000 + seed)
            dist = dist_rng.random(5)
            dist /= dist.sum()
            chosen = np.random.default_rng(seed).choice(5, size=17, p=dist)
            cdf = dist.cumsum()
            cdf /= cdf[-1]
            mirrored = cdf.searchsorted(
                np.random.default_rng(seed).random(17), side="right"
            )
            assert np.array_equal(chosen, mirrored)


class TestBitsetKernelIdentity:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_bitset_matches_set_and_dense(self, family):
        factory = _family_factories()[family]
        for seed in range(4):
            via_set = flood(factory(), rng=seed)
            via_dense = flood_vectorized(factory(), rng=seed)
            via_bitset = flood_bitset(factory(), rng=seed)
            assert via_set == via_dense == via_bitset

    def test_bitset_source_and_limits(self):
        model = EdgeMEG(20, p=0.1, q=0.3)
        assert flood_bitset(model, source=7, rng=3) == flood(model, source=7, rng=3)
        with pytest.raises(ValueError):
            flood_bitset(model, source=20)
        with pytest.raises(ValueError):
            flood_bitset(model, max_steps=-1)
        truncated = flood_bitset(EdgeMEG(20, p=0.01, q=0.9), rng=0, max_steps=1)
        assert truncated.flooding_time is None

    def test_default_packed_reach_mask_matches_row_union(self):
        model = EdgeMEG(25, p=0.15, q=0.3)
        model.reset(4)
        informed = np.zeros(25, dtype=bool)
        informed[[0, 3, 11]] = True
        packed = model.packed_reach_mask(informed)
        assert np.array_equal(
            unpack_bit_vector(packed, 25), model.reach_mask(informed)
        )

    def test_static_process_caches_packed_adjacency(self):
        process = StaticGraphProcess(nx.path_graph(10))
        process.reset()
        assert has_fast_packed_adjacency(process)
        first = process.packed_adjacency()
        assert process.packed_adjacency() is first
        assert np.array_equal(
            first, pack_bool_matrix(DynamicGraph.adjacency_matrix(process))
        )


class TestTrialBatchIdentity:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_batch_matches_per_trial(self, family):
        factory = _family_factories()[family]
        seeds = list(range(200, 206))
        batched = flood_trials_batch(factory(), seeds)
        singles = [
            flood_vectorized(factory(), rng=np.random.default_rng(seed))
            for seed in seeds
        ]
        assert batched == singles

    def test_fast_runner_matches_generic_runner(self):
        # The node-MEG fast runner and the pickled-copies fallback must agree
        # draw for draw; running both pins the mirrored reset/step math.
        seeds = list(range(40, 56))
        model = _node_meg(26)
        assert has_fast_trial_batch(model)
        fast = flood_trials_batch(model, seeds, source=3)
        generic_model = _node_meg(26)
        generic_runner = _GenericTrialBatch(generic_model, len(seeds))
        assert generic_model.trial_batch(len(seeds)) is not None
        # Force the generic path by floods on a model stripped of the hook.
        per_trial = [
            flood_vectorized(_node_meg(26), source=3, rng=np.random.default_rng(seed))
            for seed in seeds
        ]
        assert fast == per_trial
        rngs = [np.random.default_rng(seed) for seed in seeds]
        generic_runner.reset(rngs)
        informed = np.zeros((len(seeds), 26), dtype=bool)
        informed[:, 3] = True
        fast_runner = model.trial_batch(len(seeds))
        fast_runner.reset([np.random.default_rng(seed) for seed in seeds])
        sub = np.arange(len(seeds))
        assert np.array_equal(
            fast_runner.reach(informed, sub), generic_runner.reach(informed, sub)
        )

    def test_validation_and_edge_cases(self):
        model = EdgeMEG(10, p=0.1, q=0.3)
        assert flood_trials_batch(model, []) == []
        with pytest.raises(ValueError):
            flood_trials_batch(model, [0], source=10)
        with pytest.raises(ValueError):
            flood_trials_batch(model, [0], max_steps=-1)
        incomplete = flood_trials_batch(
            EdgeMEG(20, p=0.01, q=0.9), [0, 1], max_steps=1
        )
        assert all(result.flooding_time is None for result in incomplete)

    def test_single_node_batch(self):
        results = flood_trials_batch(EdgeMEG(1, p=0.5, q=0.5), [0, 1, 2])
        assert all(result.flooding_time == 0 for result in results)
        assert all(result.informed_history == (1,) for result in results)


class TestStateLevelSourceBatch:
    @pytest.mark.parametrize("family", ["node-meg", "grid"])
    def test_reach_mask_batch_matches_columnwise(self, family):
        model = _family_factories()[family]()
        assert has_fast_reach_mask_batch(model)
        model.reset(6)
        rng = np.random.default_rng(0)
        informed = rng.random((model.num_nodes, 5)) < 0.2
        informed[0, :] = True
        batched = model.reach_mask_batch(informed)
        columnwise = np.column_stack(
            [model.reach_mask(informed[:, b]) for b in range(5)]
        )
        assert np.array_equal(batched, columnwise)

    def test_random_path_reach_mask_batch(self):
        model = random_walk_path_model(20, grid_graph(4), radius_hops=1)
        assert has_fast_reach_mask_batch(model)
        model.reset(2)
        informed = np.eye(20, 4, dtype=bool)
        assert np.array_equal(
            model.reach_mask_batch(informed),
            np.column_stack([model.reach_mask(informed[:, b]) for b in range(4)]),
        )

    @pytest.mark.parametrize("family", ["node-meg", "grid"])
    def test_source_batch_dense_still_matches_set(self, family):
        # The dense source-batch kernel now routes these families through
        # reach_mask_batch; outcomes must stay identical to the set loop.
        factory = _family_factories()[family]
        sources = [0, 5, 11]
        for seed in range(3):
            via_set = flood_sources_set(factory(), sources, rng=seed)
            via_dense = flood_sources_batch(
                factory(), sources, rng=seed, backend="dense"
            )
            assert via_set == via_dense


class TestCellListParity:
    def _assert_matches_tree(self, points, radius):
        points = np.asarray(points, dtype=float)
        via_grid = radius_pairs_grid(points, radius)
        via_tree = cKDTree(points).query_pairs(r=radius, output_type="ndarray")
        assert np.array_equal(via_grid, _canonical(via_tree).reshape(-1, 2))

    def test_uniform_points(self):
        for seed, radius in [(0, 0.8), (1, 1.5), (2, 0.1), (3, 4.0)]:
            points = np.random.default_rng(seed).random((80, 2)) * 10.0
            self._assert_matches_tree(points, radius)

    @pytest.mark.parametrize("radius", [1.0, 1.5])
    def test_integer_grid_boundary_inclusive(self, radius):
        # Integer coordinates put many pairs exactly on the radius; both
        # searches must include them (distance <= r, not <).
        side = np.arange(6)
        points = np.array([[x, y] for x in side for y in side], dtype=float)
        self._assert_matches_tree(points, radius)

    def test_negative_and_coincident_points(self):
        points = np.array(
            [[-3.0, -4.0], [-3.0, -4.0], [-2.5, -4.0], [0.0, 0.0], [-3.0, -3.2]]
        )
        self._assert_matches_tree(points, 0.9)
        self._assert_matches_tree(points, 0.0)

    def test_degenerate_inputs(self):
        assert radius_pairs_grid(np.empty((0, 2)), 1.0).shape == (0, 2)
        assert radius_pairs_grid(np.array([[1.0, 2.0]]), 1.0).shape == (0, 2)
        with pytest.raises(ValueError):
            radius_pairs_grid(np.zeros(3), 1.0)

    @given(
        coords=st.lists(
            st.tuples(
                st.floats(min_value=-50, max_value=50),
                st.floats(min_value=-50, max_value=50),
            ),
            min_size=2,
            max_size=40,
        ),
        radius=st.floats(min_value=0.01, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_parity_property(self, coords, radius):
        self._assert_matches_tree(np.array(coords), radius)

    def test_method_resolution(self):
        assert resolve_connection_method("auto") == "kdtree"
        assert resolve_connection_method("grid") == "grid"
        with pytest.raises(ValueError):
            resolve_connection_method("quadtree")
        with pytest.raises(ValueError):
            UnitDiskConnection(1.0, method="quadtree")
        assert UnitDiskConnection(1.0).resolved_method() == "kdtree"
        assert UnitDiskConnection(1.0, method="grid").resolved_method() == "grid"
        assert CONNECTION_METHODS == ("auto", "kdtree", "grid")

    def test_radius_pairs_dispatches_methods(self):
        points = np.random.default_rng(5).random((30, 2)) * 4.0
        via_grid = radius_pairs(points, 1.0, method="grid")
        via_tree = radius_pairs(points, 1.0, method="kdtree")
        assert np.array_equal(via_grid, _canonical(via_tree))

    @pytest.mark.parametrize(
        "factory",
        [
            lambda method: RandomWalkMobility(25, 6, 1.5, neighbor_search=method),
            lambda method: RandomWaypoint(
                20, side=4.0, radius=1.2, v_min=1.0, neighbor_search=method
            ),
        ],
    )
    def test_models_identical_under_both_searches(self, factory):
        via_tree = factory("kdtree")
        via_grid = factory("grid")
        via_tree.reset(9)
        via_grid.reset(9)
        for _ in range(5):
            assert np.array_equal(
                _canonical(via_tree.edge_pairs()), _canonical(via_grid.edge_pairs())
            )
            assert via_tree.neighbors_of_set([0, 3]) == via_grid.neighbors_of_set(
                [0, 3]
            )
            via_tree.step()
            via_grid.step()
        assert flood(factory("kdtree"), rng=2) == flood(factory("grid"), rng=2)


class TestBackendResolutionNew:
    def test_backends_tuple(self):
        assert BACKENDS == ("auto", "set", "vectorized", "sparse", "bitset", "batch")

    def test_auto_picks_batch_for_wide_small_batches(self):
        model = _node_meg(30)
        assert has_fast_trial_batch(model)
        assert resolve_backend("auto", model, num_trials=BATCH_AUTO_MIN_TRIALS) == "batch"
        assert (
            resolve_backend("auto", model, num_trials=BATCH_AUTO_MIN_TRIALS - 1)
            == "vectorized"
        )
        assert (
            resolve_backend(
                "auto", model, num_trials=64, batched_sources=True
            )
            == "vectorized"
        )

    def test_auto_batch_requires_fast_runner_and_small_model(self):
        no_runner = EdgeMEG(30, p=0.1, q=0.3)
        assert not has_fast_trial_batch(no_runner)
        assert resolve_backend("auto", no_runner, num_trials=500) == "vectorized"
        big = _node_meg(BATCH_AUTO_MAX_NODES + 1)
        assert resolve_backend("auto", big, num_trials=500) == "vectorized"

    def test_auto_upgrades_static_processes_to_bitset(self):
        small = StaticGraphProcess(nx.path_graph(16))
        assert resolve_backend("auto", small) == "set"
        large = StaticGraphProcess(nx.path_graph(BITSET_AUTO_MIN_NODES))
        assert resolve_backend("auto", large) == "bitset"

    def test_auto_never_picks_bitset_without_cached_packing(self):
        # Dynamic families pack per round (cost ~ one dense reach), so auto
        # must keep them on their previous kernels at every size.
        assert resolve_backend("auto", EdgeMEG(2048, p=0.4, q=0.4)) == "vectorized"
        assert resolve_backend("auto", _node_meg(300)) == "vectorized"

    def test_explicit_backends_pass_through(self):
        model = EdgeMEG(10, p=0.1, q=0.3)
        assert resolve_backend("bitset", model) == "bitset"
        assert resolve_backend("batch", model) == "batch"
        assert resolve_backend("batch", model, batched_sources=True) == "vectorized"
        with pytest.raises(ValueError):
            resolve_backend("packed", model)

    def test_engine_accepts_new_backends(self):
        times = {}
        for backend in ("set", "bitset", "batch"):
            spec = TrialSpec.from_model(_node_meg(20), num_trials=5, seed=11)
            result = Engine(backend=backend).run(spec)
            assert result.backend == backend
            times[backend] = result.flooding_times
        assert times["set"] == times["bitset"] == times["batch"]

    def test_auto_batch_worker_invariant(self):
        spec = TrialSpec.from_model(
            _node_meg(24), num_trials=2 * BATCH_AUTO_MIN_TRIALS, seed=7
        )
        serial = Engine(workers=1).run(spec).flooding_times
        threaded = Engine(workers=3, executor="thread").run(
            TrialSpec.from_model(_node_meg(24), num_trials=2 * BATCH_AUTO_MIN_TRIALS, seed=7)
        ).flooding_times
        explicit = Engine(backend="set").run(
            TrialSpec.from_model(_node_meg(24), num_trials=2 * BATCH_AUTO_MIN_TRIALS, seed=7)
        ).flooding_times
        assert serial == threaded == explicit


class TestJitFallback:
    def test_csr_reach_matches_row_union(self):
        rng = np.random.default_rng(8)
        dense = rng.random((40, 40)) < 0.1
        dense |= dense.T
        np.fill_diagonal(dense, False)
        matrix = scipy.sparse.csr_matrix(dense.astype(np.int8))
        for _ in range(5):
            informed = rng.random(40) < 0.3
            out = np.empty(40, dtype=bool)
            expected = np.logical_or.reduce(dense[informed], axis=0) if informed.any() else np.zeros(40, bool)
            assert np.array_equal(csr_reach(matrix, informed, out), expected)
            assert csr_reach(matrix, informed, out) is out

    def test_sparse_kernel_exact_without_numba(self):
        # The local environment has no numba; the fallback path must keep the
        # sparse kernel bit-identical to the set loop.
        for seed in range(3):
            assert flood_sparse(EdgeMEG(30, p=0.1, q=0.3), rng=seed) == flood(
                EdgeMEG(30, p=0.1, q=0.3), rng=seed
            )

    def test_numba_requested_reads_escape_hatch(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISABLE_NUMBA", raising=False)
        assert numba_requested()
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        assert not numba_requested()

    def test_escape_hatch_disables_numba_at_import(self):
        # A fresh interpreter with the escape hatch set must come up with the
        # fallback even when numba is installed.
        env = dict(os.environ)
        env["REPRO_DISABLE_NUMBA"] = "1"
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parent.parent)
        script = (
            "import repro.engine.jit as jit\n"
            "assert not jit.NUMBA_AVAILABLE\n"
            "assert not jit.numba_requested()\n"
        )
        subprocess.run(
            [sys.executable, "-c", script], env=env, check=True, timeout=120
        )


class TestKernelTelemetry:
    def test_dispatch_counters_recorded(self):
        instance = telemetry.activate(telemetry.Telemetry(process="kernel-test"))
        try:
            flood_bitset(EdgeMEG(15, p=0.2, q=0.3), rng=0)
            flood_trials_batch(_node_meg(20), [0, 1, 2])
            flood_trials_batch(EdgeMEG(15, p=0.2, q=0.3), [0, 1])
            spec = TrialSpec.from_model(
                _node_meg(20), num_trials=BATCH_AUTO_MIN_TRIALS, seed=0
            )
            Engine().run(spec)
            counters = instance.metrics_snapshot()["counters"]
        finally:
            telemetry.deactivate(instance)
        assert counters["kernel.flood.bitset"] == 1
        # 3 direct trials plus the engine's auto-batched run of 32.
        assert counters["kernel.flood.batch_trials_fast"] == 3 + BATCH_AUTO_MIN_TRIALS
        assert counters["kernel.flood.batch_trials_generic"] == 2
        assert counters["engine.backend.batch"] == BATCH_AUTO_MIN_TRIALS
        if NUMBA_AVAILABLE:  # pragma: no cover - numba absent locally
            assert "kernel.jit.csr" not in counters
